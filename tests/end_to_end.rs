//! Workspace-level integration tests through the `crossing-guard` facade.
//!
//! These exercise the public API exactly as a downstream user would: build
//! systems from the facade re-exports, run them, inspect outcomes.

use crossing_guard::core::{OsPolicy, XgVariant};
use crossing_guard::harness::system::CoreSlot;
use crossing_guard::harness::tester::word_pool;
use crossing_guard::harness::{
    build_system, run_fuzz, run_stress, run_workload, AccelOrg, FuzzOpts, HostProtocol, Pattern,
    StressOpts, SystemConfig, TesterCfg, TesterCore, TesterShared,
};

fn guarded(host: HostProtocol, variant: XgVariant, two_level: bool, seed: u64) -> SystemConfig {
    SystemConfig {
        host,
        accel: AccelOrg::Xg { variant, two_level },
        accel_cores: if two_level { 2 } else { 1 },
        seed,
        ..SystemConfig::default()
    }
}

#[test]
fn facade_quickstart_compiles_and_runs() {
    let cfg = guarded(HostProtocol::Hammer, XgVariant::FullState, false, 42);
    let shared = TesterShared::new(3, 300);
    let pool = word_pool(0x4000, 4, 2);
    let mut system = build_system(&cfg, OsPolicy::ReportOnly, None, |slot, cache, index| {
        let name = match slot {
            CoreSlot::Cpu(i) => format!("cpu{i}"),
            CoreSlot::Accel(i) => format!("acc{i}"),
        };
        Box::new(TesterCore::new(
            name,
            cache,
            index,
            shared.clone(),
            pool.clone(),
            TesterCfg::default(),
        ))
    });
    system.start_cores();
    let outcome = system.sim.run_with_watchdog(10_000_000, 100_000);
    assert!(!outcome.stalled);
    assert_eq!(shared.lock().unwrap().data_errors(), 0);
    assert!(shared.lock().unwrap().done());
}

#[test]
fn every_guarded_configuration_survives_longer_stress() {
    // Longer-running stress over the eight guarded configurations with a
    // seed not used elsewhere.
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for variant in [XgVariant::FullState, XgVariant::Transactional] {
            for two_level in [false, true] {
                let cfg = guarded(host, variant, two_level, 0xBEEF);
                let out = run_stress(
                    &cfg,
                    &StressOpts {
                        ops: 2_000,
                        ..StressOpts::default()
                    },
                );
                assert!(!out.deadlocked, "{}", cfg.name());
                assert_eq!(out.data_errors, 0, "{}: {:?}", cfg.name(), out.error_log);
                assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
                assert_eq!(out.report.get("os.errors_total"), 0, "{}", cfg.name());
            }
        }
    }
}

#[test]
fn unsafe_and_safe_baselines_also_pass_stress() {
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for accel in [AccelOrg::AccelSide, AccelOrg::HostSide] {
            let cfg = SystemConfig {
                host,
                accel,
                seed: 0xCAFE,
                ..SystemConfig::default()
            };
            let out = run_stress(
                &cfg,
                &StressOpts {
                    ops: 1_500,
                    ..StressOpts::default()
                },
            );
            assert!(!out.deadlocked, "{}", cfg.name());
            assert_eq!(out.data_errors, 0, "{}: {:?}", cfg.name(), out.error_log);
        }
    }
}

#[test]
fn fuzzing_is_contained_with_disable_policy() {
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::Transactional,
        },
        seed: 0xF00D,
        ..SystemConfig::default()
    };
    let out = run_fuzz(
        &cfg,
        &FuzzOpts {
            messages: 600,
            ..FuzzOpts::default()
        },
        1_000,
    );
    assert!(!out.deadlocked);
    assert_eq!(out.host_violations, 0);
    assert_eq!(out.cpu_data_errors, 0);
    assert!(out.os_errors > 0);
}

#[test]
fn workloads_complete_across_patterns_and_hosts() {
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for pattern in [Pattern::Stencil, Pattern::Reduction] {
            let cfg = guarded(host, XgVariant::FullState, false, 0xABCD);
            let out = run_workload(&cfg, pattern, 2_000);
            assert!(!out.incomplete, "{} {}", cfg.name(), pattern.name());
            assert_eq!(out.report.get("os.errors_total"), 0);
        }
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let cfg = guarded(HostProtocol::Mesi, XgVariant::FullState, true, 777);
    let opts = StressOpts {
        ops: 800,
        ..StressOpts::default()
    };
    let a = run_stress(&cfg, &opts);
    let b = run_stress(&cfg, &opts);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.transitions, b.transitions);
    // Full report equality, scalar by scalar.
    let scalars_a: Vec<_> = a.report.scalars().map(|(k, v)| (k.to_owned(), v)).collect();
    let scalars_b: Vec<_> = b.report.scalars().map(|(k, v)| (k.to_owned(), v)).collect();
    assert_eq!(scalars_a, scalars_b);
}

#[test]
fn coverage_report_names_all_controller_families() {
    let cfg = guarded(HostProtocol::Mesi, XgVariant::FullState, true, 31);
    let out = run_stress(
        &cfg,
        &StressOpts {
            ops: 1_000,
            ..StressOpts::default()
        },
    );
    let families: Vec<String> = out
        .report
        .coverages()
        .map(|(name, _)| name.to_string())
        .collect();
    for expected in ["mesi_l1/", "mesi_l2/", "accel_l1/", "accel_l2/"] {
        assert!(
            families.iter().any(|f| f.starts_with(expected)),
            "missing coverage family {expected}: {families:?}"
        );
    }
}

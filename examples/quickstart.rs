//! Quickstart: assemble a guarded heterogeneous system and watch data flow
//! coherently between CPUs and an accelerator.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 2-CPU Hammer-protocol host, a Full State Crossing Guard, and a
//! Table 1 accelerator cache; runs the random coherence tester across all
//! three cores; prints the value-check verdict, the guard's counters, and
//! the Table 1 transition coverage the accelerator cache visited.

use crossing_guard::core::{OsPolicy, XgVariant};
use crossing_guard::harness::system::CoreSlot;
use crossing_guard::harness::tester::word_pool;
use crossing_guard::harness::{
    build_system, AccelOrg, HostProtocol, SystemConfig, TesterCfg, TesterCore, TesterShared,
};

fn main() {
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        },
        seed: 2024,
        ..SystemConfig::default()
    };
    println!("configuration: {}", cfg.name());

    // Three cores (two CPU, one accelerator) share a small pool of hot
    // words; every value is checked against the single-writer discipline.
    let shared = TesterShared::new(3, 5_000);
    let pool = word_pool(0x4000, 8, 2);
    let mut system = build_system(&cfg, OsPolicy::ReportOnly, None, |slot, cache, index| {
        let name = match slot {
            CoreSlot::Cpu(i) => format!("cpu{i}"),
            CoreSlot::Accel(i) => format!("accel{i}"),
        };
        Box::new(TesterCore::new(
            name,
            cache,
            index,
            shared.clone(),
            pool.clone(),
            TesterCfg::default(),
        ))
    });
    system.start_cores();
    let outcome = system.sim.run_with_watchdog(50_000_000, 200_000);

    let shared = shared.lock().unwrap();
    println!(
        "\nran {} operations in {} simulated cycles (deadlock: {})",
        shared.completed(),
        outcome.now,
        outcome.stalled
    );
    println!("value-check failures: {}", shared.data_errors());

    let report = system.sim.report();
    println!("\nCrossing Guard counters:");
    for key in [
        "xg.grants",
        "xg.wbacks",
        "xg.invs_forwarded",
        "xg.demands_answered_locally",
        "xg.puts_suppressed",
        "xg.host_sent",
        "xg.host_received",
        "xg.errors_total",
    ] {
        println!("  {key:32} {}", report.get(key));
    }

    println!("\nTable 1 coverage at the accelerator L1 (state, event):");
    if let Some(cov) = report.coverage("accel_l1/accel_l1") {
        let mut by_state: std::collections::BTreeMap<&str, Vec<&str>> = Default::default();
        for (state, event) in cov.iter() {
            by_state.entry(state).or_default().push(event);
        }
        for (state, events) in by_state {
            println!("  {state:2} : {}", events.join(", "));
        }
    }
    println!("\nThe accelerator cache used 4 stable states and one transient —");
    println!("every race, ack count, and host-protocol detail stayed behind the guard.");
}

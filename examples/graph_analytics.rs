//! Graph analytics on a two-level accelerator: data-dependent pointer
//! chasing over a host-built graph, with a live host-side edge update.
//!
//! ```text
//! cargo run --example graph_analytics
//! ```
//!
//! The CPU builds a successor table (a permutation ring) in shared memory;
//! two accelerator cores behind a shared accelerator L2 walk it
//! concurrently — every hop depends on the loaded value, the access
//! pattern the paper calls out as needing hardware coherence rather than
//! software-managed transfers. Midway, the CPU *rewires* one edge; the
//! walkers coherently observe the new route on their next pass.
//!
//! Host: inclusive MESI. Guard: Transactional (minimal storage; relies on
//! the §3.2.2 host modifications, which are on by default).

use crossing_guard::core::{OsPolicy, XgVariant};
use crossing_guard::harness::system::CoreSlot;
use crossing_guard::harness::{build_system, AccelOrg, HostProtocol, SystemConfig};
use crossing_guard::mem::Addr;
use crossing_guard::proto::{CoreKind, CoreMsg, Ctx, Message};
use crossing_guard::sim::{Component, NodeId};

const NODES: u64 = 64;
const TABLE: u64 = 0x40_0000;
const FLAG: u64 = 0x50_0000;

fn node_addr(n: u64) -> u64 {
    TABLE + n * 8
}

/// The CPU: builds the ring `n -> (n + 1) % NODES`, raises the flag, then
/// later rewires node 10 to jump straight to node 40, raising flag=2.
struct Builder {
    cache: NodeId,
    phase: usize,
    pending: Option<u64>,
    next_id: u64,
}

impl Builder {
    fn step(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending.is_some() {
            return;
        }
        let (addr, value) = if self.phase < NODES as usize {
            let n = self.phase as u64;
            (node_addr(n), (n + 1) % NODES)
        } else if self.phase == NODES as usize {
            (FLAG, 1)
        } else if self.phase == NODES as usize + 1 {
            // Give the walkers time to get going, then rewire mid-run.
            ctx.wake_in(5_000, 1);
            self.phase += 1;
            return;
        } else if self.phase == NODES as usize + 2 {
            (node_addr(10), 40)
        } else if self.phase == NODES as usize + 3 {
            (FLAG, 2)
        } else {
            return;
        };
        let id = self.next_id;
        self.next_id += 1;
        self.pending = Some(id);
        self.phase += 1;
        ctx.send(
            self.cache,
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Store { value },
            }
            .into(),
        );
    }
}

impl Component<Message> for Builder {
    fn name(&self) -> &str {
        "builder"
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        if let Message::Core(c) = msg {
            if Some(c.id) == self.pending {
                self.pending = None;
                ctx.note_progress();
                self.step(ctx);
            }
        }
    }
    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        self.step(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// An accelerator core: waits for the flag, then chases successors from a
/// starting node, recording every node visited.
struct Walker {
    name: String,
    cache: NodeId,
    node: u64,
    hops_left: u64,
    started: bool,
    visited: Vec<u64>,
    pending: Option<u64>,
    next_id: u64,
    polling_flag: bool,
}

impl Walker {
    fn issue_load(&mut self, addr: u64, ctx: &mut Ctx<'_>) {
        let id = self.next_id;
        self.next_id += 1;
        self.pending = Some(id);
        ctx.send(
            self.cache,
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Load,
            }
            .into(),
        );
    }
}

impl Component<Message> for Walker {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Core(c) = msg else { return };
        if Some(c.id) != self.pending {
            return;
        }
        self.pending = None;
        let CoreKind::LoadResp { value } = c.kind else {
            return;
        };
        ctx.note_progress();
        if self.polling_flag {
            if value >= 1 {
                self.polling_flag = false;
                self.started = true;
                let node = self.node;
                self.issue_load(node_addr(node), ctx);
            } else {
                ctx.wake_in(50, 0);
            }
            return;
        }
        // One hop completed: the loaded value names the next node.
        self.visited.push(value);
        self.node = value;
        self.hops_left -= 1;
        if self.hops_left > 0 {
            let node = self.node;
            self.issue_load(node_addr(node), ctx);
        }
    }
    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if !self.started {
            self.polling_flag = true;
            self.issue_load(FLAG, ctx);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn main() {
    let cfg = SystemConfig {
        host: HostProtocol::Mesi,
        cpu_cores: 1,
        accel: AccelOrg::Xg {
            variant: XgVariant::Transactional,
            two_level: true,
        },
        accel_cores: 2,
        seed: 13,
        ..SystemConfig::default()
    };
    println!(
        "configuration: {} (two accel cores, shared accel L2)",
        cfg.name()
    );

    let hops = 5_000u64;
    let mut system = build_system(
        &cfg,
        OsPolicy::ReportOnly,
        None,
        |slot, cache, _| match slot {
            CoreSlot::Cpu(_) => Box::new(Builder {
                cache,
                phase: 0,
                pending: None,
                next_id: 0,
            }),
            CoreSlot::Accel(i) => Box::new(Walker {
                name: format!("walker{i}"),
                cache,
                node: i as u64 * 17, // different start nodes
                hops_left: hops,
                started: false,
                visited: Vec::new(),
                pending: None,
                next_id: 0,
                polling_flag: false,
            }),
        },
    );
    system.start_cores();
    let out = system.sim.run_with_watchdog(100_000_000, 1_000_000);
    assert!(!out.stalled, "system deadlocked");

    let report = system.sim.report();
    let mut saw_shortcut = false;
    for (idx, &core) in system.accel_cores.iter().enumerate() {
        let walker = system.sim.get::<Walker>(core).unwrap();
        assert_eq!(walker.visited.len() as u64, hops, "walker{idx} unfinished");
        // Every hop is a valid successor under one of the two graph
        // versions (ring edge, or the rewired 10 -> 40 shortcut).
        let mut prev = idx as u64 * 17;
        for &next in &walker.visited {
            let ring = (prev + 1) % NODES;
            let ok = next == ring || (prev == 10 && next == 40);
            assert!(ok, "walker{idx}: illegal hop {prev} -> {next}");
            saw_shortcut |= prev == 10 && next == 40;
            prev = next;
        }
        println!(
            "walker{idx}: {} hops, finished at node {}",
            walker.visited.len(),
            prev
        );
    }
    println!(
        "rewired edge observed mid-run: {}",
        if saw_shortcut {
            "yes"
        } else {
            "no (timing-dependent)"
        }
    );
    println!(
        "\naccel L2 served {} L1 reads with only {} host fetches (sharing stayed on-accelerator)",
        report.get("accel_l2.l1_gets"),
        report.get("accel_l2.up_gets")
    );
    println!("guard errors: {}", report.get("xg.errors_total"));
    assert_eq!(report.get("xg.errors_total"), 0);
    assert_eq!(report.sum_suffix(".protocol_violation"), 0);
}

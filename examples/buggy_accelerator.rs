//! A pathologically buggy accelerator meets Crossing Guard.
//!
//! ```text
//! cargo run --example buggy_accelerator
//! ```
//!
//! A fuzzing "accelerator" bombards the interface with random coherence
//! messages — wrong kinds, wrong addresses, wrong payload sizes, wrong or
//! absent invalidation responses — while CPU cores keep doing real,
//! value-checked work. Crossing Guard absorbs it all: the host protocol
//! never sees an impossible event, CPU data stays intact, every violation
//! class is reported to the OS, and the OS eventually quarantines the
//! accelerator (the "disable" policy of paper §2.2).

use crossing_guard::core::{Os, OsPolicy, XgVariant};
use crossing_guard::harness::system::CoreSlot;
use crossing_guard::harness::tester::word_pool;
use crossing_guard::harness::{
    build_system, AccelOrg, FuzzOpts, HostProtocol, SystemConfig, TesterCfg, TesterCore,
    TesterShared,
};
use crossing_guard::proto::XgErrorKind;

fn main() {
    let cfg = SystemConfig {
        host: HostProtocol::Mesi,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        seed: 99,
        ..SystemConfig::default()
    };
    println!(
        "configuration: {} (OS policy: disable on first error)",
        cfg.name()
    );

    let fuzz = FuzzOpts {
        messages: 1_500,
        ..FuzzOpts::default()
    };
    // CPUs work on their own pages (the fuzzer has no permission there).
    let shared = TesterShared::new(cfg.cpu_cores, 4_000);
    let pool = word_pool(0x200_0000, 8, 2);
    let mut system = build_system(
        &cfg,
        OsPolicy::DisableAccelerator,
        Some(fuzz),
        |slot, cache, index| {
            let name = match slot {
                CoreSlot::Cpu(i) => format!("cpu{i}"),
                CoreSlot::Accel(i) => format!("acc{i}"),
            };
            Box::new(TesterCore::new(
                name,
                cache,
                index,
                shared.clone(),
                pool.clone(),
                TesterCfg::default(),
            ))
        },
    );
    system.start_cores();
    let out = system.sim.run_with_watchdog(100_000_000, 500_000);

    let report = system.sim.report();
    let shared = shared.lock().unwrap();
    println!("\nwhile being bombarded:");
    println!("  CPU operations completed : {}", shared.completed());
    println!("  CPU value-check failures : {}", shared.data_errors());
    println!(
        "  host protocol violations : {}",
        report.sum_suffix(".protocol_violation")
    );
    println!("  host deadlocked          : {}", out.stalled);

    let os = system.sim.get::<Os>(system.os).unwrap();
    println!("\nviolations the guard reported to the OS:");
    for kind in XgErrorKind::ALL {
        let n = os.count(kind);
        if n > 0 {
            println!("  {kind:18} {n}");
        }
    }
    println!(
        "\naccelerator quarantined by the OS: {} (requests dropped after disable: {})",
        !os.disabled_guards().is_empty(),
        report.get("xg.dropped_disabled")
    );

    assert_eq!(shared.data_errors(), 0, "CPU data must stay intact");
    assert_eq!(
        report.sum_suffix(".protocol_violation"),
        0,
        "host controllers must never see an impossible event"
    );
    assert!(!out.stalled, "the host must keep making progress");
    assert!(os.total() > 0, "violations must be reported");
    assert!(!os.disabled_guards().is_empty());
    println!("\nthe host never noticed. that is the point.");
}

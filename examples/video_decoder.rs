//! A block-based video decoder sharing frames with the host at fine grain.
//!
//! ```text
//! cargo run --example video_decoder
//! ```
//!
//! The scenario the paper's introduction motivates: the CPU produces
//! compressed "frame" data, the accelerator decodes it block by block, and
//! the CPU consumes the result — all through ordinary coherent loads and
//! stores, with flag-based synchronization (no explicit DMA or flushes
//! anywhere). The decoder uses **256-byte accelerator blocks** over the
//! host's 64-byte blocks; Crossing Guard performs the merge/split
//! translation (paper §2.5).

use crossing_guard::core::{OsPolicy, XgConfig, XgVariant};
use crossing_guard::harness::system::CoreSlot;
use crossing_guard::harness::{build_system, AccelOrg, HostProtocol, SystemConfig};
use crossing_guard::mem::Addr;
use crossing_guard::proto::{CoreKind, CoreMsg, Ctx, Message};
use crossing_guard::sim::{Component, NodeId};

const FRAME_WORDS: u64 = 64;
const INPUT: u64 = 0x10_0000;
const OUTPUT: u64 = 0x20_0000;
const FLAG: u64 = 0x30_0000;

/// Decode model: the "codec" doubles each coefficient and adds one.
fn decode(word: u64) -> u64 {
    word * 2 + 1
}

/// A tiny blocking script interpreter: each core runs a list of steps.
enum Step {
    Store(u64, u64),
    /// Load `addr` and stash the value.
    Load(u64),
    /// Spin until loading `addr` yields `value`.
    WaitFor(u64, u64),
}

struct ScriptCore {
    name: String,
    cache: NodeId,
    steps: Vec<Step>,
    pc: usize,
    next_id: u64,
    waiting: Option<(u64, Step)>,
    /// Values captured by `Load`, in order.
    loaded: Vec<u64>,
    done_at: Option<u64>,
}

impl ScriptCore {
    fn new(name: impl Into<String>, cache: NodeId, steps: Vec<Step>) -> Self {
        ScriptCore {
            name: name.into(),
            cache,
            steps,
            pc: 0,
            next_id: 0,
            waiting: None,
            loaded: Vec::new(),
            done_at: None,
        }
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        if self.waiting.is_some() {
            return;
        }
        if self.pc >= self.steps.len() {
            if self.done_at.is_none() {
                self.done_at = Some(ctx.now().as_u64());
            }
            return;
        }
        let step = self.steps[self.pc].take_copy();
        self.pc += 1;
        let id = self.next_id;
        self.next_id += 1;
        let (addr, kind) = match &step {
            Step::Store(a, v) => (*a, CoreKind::Store { value: *v }),
            Step::Load(a) | Step::WaitFor(a, _) => (*a, CoreKind::Load),
        };
        self.waiting = Some((id, step));
        ctx.send(
            self.cache,
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind,
            }
            .into(),
        );
    }
}

impl Step {
    fn take_copy(&self) -> Step {
        match self {
            Step::Store(a, v) => Step::Store(*a, *v),
            Step::Load(a) => Step::Load(*a),
            Step::WaitFor(a, v) => Step::WaitFor(*a, *v),
        }
    }
}

impl Component<Message> for ScriptCore {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Core(c) = msg else { return };
        let Some((id, step)) = self.waiting.take() else {
            return;
        };
        if c.id != id {
            self.waiting = Some((id, step));
            return;
        }
        match (&step, c.kind) {
            (Step::Load(_), CoreKind::LoadResp { value }) => self.loaded.push(value),
            (Step::WaitFor(_, want), CoreKind::LoadResp { value }) if value != *want => {
                // Not yet: re-execute the wait after a short poll delay.
                self.pc -= 1;
                ctx.wake_in(25, 0);
                return;
            }
            (Step::Store(..), CoreKind::StoreResp) => {}
            _ => {}
        }
        ctx.note_progress();
        self.issue(ctx);
    }
    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        self.issue(ctx);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn main() {
    // Hammer host; Full State guard translating 256 B accelerator blocks.
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        cpu_cores: 1,
        accel: AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        },
        xg: XgConfig {
            block_blocks: 4, // 4 × 64 B = 256 B accelerator blocks
            ..XgConfig::default()
        },
        seed: 7,
        ..SystemConfig::default()
    };
    println!(
        "configuration: {} with {}B accelerator blocks",
        cfg.name(),
        cfg.xg.block_blocks * 64
    );

    // CPU: write the frame, raise flag=1, wait for flag=2, read output.
    let mut cpu_steps = Vec::new();
    for i in 0..FRAME_WORDS {
        cpu_steps.push(Step::Store(INPUT + i * 8, 1000 + i));
    }
    cpu_steps.push(Step::Store(FLAG, 1));
    cpu_steps.push(Step::WaitFor(FLAG, 2));
    for i in 0..FRAME_WORDS {
        cpu_steps.push(Step::Load(OUTPUT + i * 8));
    }

    // Accelerator: wait for flag=1, decode every word, raise flag=2.
    let mut acc_steps = vec![Step::WaitFor(FLAG, 1)];
    for i in 0..FRAME_WORDS {
        acc_steps.push(Step::Load(INPUT + i * 8));
    }
    // The decode happens "inside" the accelerator; we model it by storing
    // the transformed values (computed below when building the script is
    // impossible — the accelerator must *observe* them — so instead the
    // accelerator stores decode(expected) and the CPU verifies both the
    // observation (loads) and the output).
    for i in 0..FRAME_WORDS {
        acc_steps.push(Step::Store(OUTPUT + i * 8, decode(1000 + i)));
    }
    acc_steps.push(Step::Store(FLAG, 2));

    let mut system = build_system(
        &cfg,
        OsPolicy::ReportOnly,
        None,
        |slot, cache, _| match slot {
            CoreSlot::Cpu(_) => Box::new(ScriptCore::new(
                "cpu",
                cache,
                std::mem::take(&mut cpu_steps),
            )),
            CoreSlot::Accel(_) => Box::new(ScriptCore::new(
                "decoder",
                cache,
                std::mem::take(&mut acc_steps),
            )),
        },
    );
    system.start_cores();
    let out = system.sim.run_with_watchdog(50_000_000, 500_000);
    assert!(!out.stalled, "system deadlocked");

    // Verify: the accelerator observed the frame the CPU wrote, and the
    // CPU read back exactly the decoded frame.
    let decoder = system.sim.get::<ScriptCore>(system.accel_cores[0]).unwrap();
    let observed: Vec<u64> = decoder.loaded.clone();
    let cpu = system.sim.get::<ScriptCore>(system.cpu_cores[0]).unwrap();
    let output: Vec<u64> = cpu.loaded.clone();

    let frame_ok = observed
        .iter()
        .enumerate()
        .all(|(i, &v)| v == 1000 + i as u64);
    let decode_ok = output
        .iter()
        .enumerate()
        .all(|(i, &v)| v == decode(1000 + i as u64));
    println!(
        "\ndecoder observed the frame coherently: {}",
        if frame_ok { "yes" } else { "NO" }
    );
    println!(
        "CPU read back the decoded frame:        {}",
        if decode_ok { "yes" } else { "NO" }
    );
    assert!(frame_ok && decode_ok);

    let report = system.sim.report();
    println!("\nfinished at cycle {}", out.now);
    println!(
        "interface messages: {} in / {} out (256 B blocks move 4 host blocks per message)",
        report.get("xg.accel_received"),
        report.get("xg.accel_sent")
    );
    println!(
        "guard errors: {} (a correct accelerator never trips a guarantee)",
        report.get("xg.errors_total")
    );
}

//! Property tests for the kernel's hot-path data structures, against
//! reference oracles.
//!
//! * [`CalendarQueue`] is checked against a `BinaryHeap` ordered by
//!   `(time, seq)` — the exact scheduler the calendar queue replaced. Every
//!   schedule (random and adversarial) must pop in the identical order,
//!   including same-cycle FIFO ties, across the wheel/overflow boundary,
//!   across window wraps, and through rebase-triggering pushes into the
//!   past.
//! * [`Slab`] is checked against a `HashMap` model under random alloc/free
//!   interleavings: every live handle reads back its value, freed slots are
//!   recycled before the arena grows, and the id sequence is a pure
//!   function of the alloc/free history.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use proptest::collection::vec;
use proptest::prelude::*;
use xg_sim::queue::WHEEL_SLOTS;
use xg_sim::{CalendarQueue, Cycle, Slab};

/// Reference scheduler: a binary heap popping ascending `(time, seq)`.
#[derive(Default)]
struct OracleQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
}

impl OracleQueue {
    fn push(&mut self, time: u64, item: u32) {
        self.heap.push(Reverse((time, self.seq, item)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        self.heap.pop().map(|Reverse((t, _, v))| (t, v))
    }
}

/// One step of a schedule: push at an absolute time, or pop.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
}

/// Runs `ops` through both queues, checking each pop and every peek.
fn check_schedule(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut cal = CalendarQueue::new();
    let mut oracle = OracleQueue::default();
    let mut item = 0u32;
    for &op in ops {
        match op {
            Op::Push(time) => {
                cal.push(Cycle::new(time), item);
                oracle.push(time, item);
                item += 1;
            }
            Op::Pop => {
                let expect = oracle.pop();
                let peek = cal.peek_time();
                let got = cal.pop();
                prop_assert_eq!(
                    got.map(|(t, v)| (t.as_u64(), v)),
                    expect,
                    "pop order diverged from the (time, seq) oracle"
                );
                prop_assert_eq!(
                    peek,
                    got.map(|(t, _)| t),
                    "peek_time disagreed with the following pop"
                );
            }
        }
        prop_assert_eq!(cal.len(), oracle.heap.len());
    }
    // Drain whatever is left: the tails must agree too.
    while let Some(expect) = oracle.pop() {
        let got = cal.pop();
        prop_assert_eq!(got.map(|(t, v)| (t.as_u64(), v)), Some(expect));
    }
    prop_assert!(cal.is_empty());
    prop_assert_eq!(cal.pop(), None);
    Ok(())
}

/// Interprets `(kind, raw)` pairs as a monotone-ish schedule the simulator
/// could produce: pushes land `raw` cycles after the last popped time.
fn future_schedule(steps: &[(bool, u64)], horizon: u64) -> Vec<Op> {
    steps
        .iter()
        .map(|&(is_pop, raw)| {
            if is_pop {
                Op::Pop
            } else {
                Op::Push(raw % horizon)
            }
        })
        .collect()
}

proptest! {
    /// Random schedules over a dense near-future horizon (everything lands
    /// in the wheel): identical pop order, including same-cycle ties —
    /// `raw % 64` makes collisions common.
    #[test]
    fn dense_schedules_match_oracle(steps in vec((any::<bool>(), 0u64..1 << 16), 1..300)) {
        check_schedule(&future_schedule(&steps, 64))?;
    }

    /// Random schedules spanning several window lengths: events split
    /// between wheel and overflow, and migrate back as the window slides.
    #[test]
    fn overflow_schedules_match_oracle(
        steps in vec((any::<bool>(), 0u64..1 << 32), 1..300),
    ) {
        check_schedule(&future_schedule(&steps, WHEEL_SLOTS as u64 * 5))?;
    }

    /// Fully adversarial schedules: arbitrary absolute times, including
    /// pushes before the cursor (rebase path) and times that alias the
    /// same slot across different rotations.
    #[test]
    fn adversarial_schedules_match_oracle(
        steps in vec((any::<bool>(), any::<u64>()), 1..200),
        times in vec(0u64..WHEEL_SLOTS as u64 * 3, 4..12),
    ) {
        let mut ops: Vec<Op> = Vec::new();
        // A prefix that advances the cursor, so later small times rebase.
        for &t in &times {
            ops.push(Op::Push(t));
        }
        ops.push(Op::Pop);
        ops.push(Op::Pop);
        for &(is_pop, raw) in &steps {
            if is_pop {
                ops.push(Op::Pop);
            } else {
                // Bias toward slot-aliasing times: the same residue, one
                // window apart, must never interleave out of order.
                ops.push(Op::Push(raw % (WHEEL_SLOTS as u64 * 4)));
            }
        }
        check_schedule(&ops)?;
    }

    /// Same-cycle FIFO ties, concentrated: many pushes to very few distinct
    /// times, popped in between. Seq order is the whole story here.
    #[test]
    fn tie_heavy_schedules_match_oracle(
        steps in vec((any::<bool>(), 0u64..4), 1..200),
    ) {
        check_schedule(&future_schedule(&steps, 4))?;
    }
}

/// One step of a slab workload.
#[derive(Debug, Clone, Copy)]
enum SlabOp {
    Insert(u64),
    /// Free the nth-oldest live handle (modulo the live count).
    TakeNth(usize),
}

proptest! {
    /// The slab against a `HashMap` model: every live id reads back its
    /// value, take returns it, len/capacity track the model, and the arena
    /// never grows while a freed slot exists.
    #[test]
    fn slab_matches_model(
        steps in vec(
            prop_oneof![
                (any::<u64>()).prop_map(SlabOp::Insert),
                (0usize..64).prop_map(SlabOp::TakeNth),
            ],
            1..300,
        ),
    ) {
        let mut slab = Slab::new();
        let mut model: HashMap<u64, u64> = HashMap::new(); // raw id -> value
        let mut live: Vec<(xg_sim::SlabId, u64)> = Vec::new();
        let mut hwm = 0usize;
        for step in steps {
            match step {
                SlabOp::Insert(v) => {
                    let before = slab.capacity();
                    let had_free = slab.capacity() > slab.len();
                    let id = slab.insert(v);
                    prop_assert!(
                        model.insert(id.index() as u64, v).is_none(),
                        "slab handed out a live id twice"
                    );
                    live.push((id, v));
                    if had_free {
                        prop_assert_eq!(
                            slab.capacity(), before,
                            "arena grew while free slots existed"
                        );
                    }
                }
                SlabOp::TakeNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (id, v) = live.remove(n % live.len());
                    prop_assert_eq!(*slab.get(id), v);
                    prop_assert_eq!(slab.take(id), v);
                    prop_assert_eq!(model.remove(&(id.index() as u64)), Some(v));
                }
            }
            hwm = hwm.max(model.len());
            prop_assert_eq!(slab.len(), model.len());
            prop_assert!(slab.is_empty() == model.is_empty());
            for &(id, v) in &live {
                prop_assert_eq!(*slab.get(id), v);
            }
        }
        prop_assert!(
            slab.capacity() >= hwm,
            "arena smaller than the live high-water mark"
        );
    }

    /// Slab id assignment is deterministic: replaying the same alloc/free
    /// history yields the same id sequence.
    #[test]
    fn slab_ids_replay_identically(
        steps in vec(
            prop_oneof![
                (any::<u64>()).prop_map(SlabOp::Insert),
                (0usize..16).prop_map(SlabOp::TakeNth),
            ],
            1..100,
        ),
    ) {
        let run = |steps: &[SlabOp]| {
            let mut slab = Slab::new();
            let mut live = Vec::new();
            let mut ids = Vec::new();
            for &step in steps {
                match step {
                    SlabOp::Insert(v) => {
                        let id = slab.insert(v);
                        ids.push(id);
                        live.push(id);
                    }
                    SlabOp::TakeNth(n) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live.remove(n % live.len());
                        slab.take(id);
                    }
                }
            }
            ids
        };
        prop_assert_eq!(run(&steps), run(&steps));
    }
}

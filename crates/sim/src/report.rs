//! Post-run statistics, coverage, and machine-readable reporting.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::hist::Histogram;
use crate::json::{JsonError, JsonValue};

/// A set of `(state, event)` pairs visited by a protocol controller.
///
/// This is the coverage metric of the paper's §4.1 stress test: the random
/// tester counts the state/event pairs visited at each cache controller and
/// compares against the set believed possible.
///
/// Pairs are stored keyed by state (`state → {events}`), so
/// [`contains`](CoverageSet::contains) is a pair of tree lookups rather than
/// a scan of every visited pair, and re-visiting an already-seen pair — the
/// steady state of a long stress run — allocates nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSet {
    by_state: BTreeMap<String, BTreeSet<String>>,
    len: usize,
}

impl CoverageSet {
    /// Creates an empty coverage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `event` was observed while in `state`.
    pub fn visit(&mut self, state: &str, event: &str) {
        match self.by_state.get_mut(state) {
            Some(events) => {
                if !events.contains(event) {
                    events.insert(event.to_owned());
                    self.len += 1;
                }
            }
            None => {
                self.by_state
                    .insert(state.to_owned(), BTreeSet::from([event.to_owned()]));
                self.len += 1;
            }
        }
    }

    /// Number of distinct `(state, event)` pairs visited.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been visited.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether a particular pair was visited.
    pub fn contains(&self, state: &str, event: &str) -> bool {
        self.by_state
            .get(state)
            .is_some_and(|events| events.contains(event))
    }

    /// Iterates over visited pairs in deterministic `(state, event)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.by_state
            .iter()
            .flat_map(|(s, evs)| evs.iter().map(move |e| (s.as_str(), e.as_str())))
    }

    /// Merges another coverage set into this one.
    pub fn merge(&mut self, other: &CoverageSet) {
        for (state, event) in other.iter() {
            self.visit(state, event);
        }
    }
}

/// Per-machine transition coverage against a *declared* row universe.
///
/// Where [`CoverageSet`] records whatever `(state, event)` pairs a
/// controller happened to visit, `TransitionCoverage` starts from the full
/// set of rows a transition table declares legal (see `xg-fsm`) and counts
/// how often each fired. Declared-but-never-fired rows survive with a count
/// of zero, which is exactly what makes the stress/fuzz sweeps a coverage
/// instrument: `fired_rows() / total_rows()` is the fraction of the
/// implemented protocol the sweep actually exercised, and
/// [`never_fired`](TransitionCoverage::never_fired) names the holes.
///
/// Merging sums per-row counts and unions row universes, so shard merges
/// are commutative and associative like every other [`Report`] section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionCoverage {
    /// state → event → times fired (0 = declared, never fired).
    rows: BTreeMap<String, BTreeMap<String, u64>>,
}

impl TransitionCoverage {
    /// Creates an empty coverage table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a row of the machine's table without firing it.
    pub fn declare(&mut self, state: &str, event: &str) {
        self.rows
            .entry(state.to_owned())
            .or_default()
            .entry(event.to_owned())
            .or_insert(0);
    }

    /// Records `count` firings of a row (declaring it if needed).
    pub fn fire(&mut self, state: &str, event: &str, count: u64) {
        *self
            .rows
            .entry(state.to_owned())
            .or_default()
            .entry(event.to_owned())
            .or_insert(0) += count;
    }

    /// Number of declared rows.
    pub fn total_rows(&self) -> usize {
        self.rows.values().map(BTreeMap::len).sum()
    }

    /// Number of declared rows that fired at least once.
    pub fn fired_rows(&self) -> usize {
        self.rows
            .values()
            .flat_map(BTreeMap::values)
            .filter(|&&n| n > 0)
            .count()
    }

    /// Times a particular row fired (0 if never or undeclared).
    pub fn count(&self, state: &str, event: &str) -> u64 {
        self.rows
            .get(state)
            .and_then(|evs| evs.get(event))
            .copied()
            .unwrap_or(0)
    }

    /// Whether a row is declared.
    pub fn is_declared(&self, state: &str, event: &str) -> bool {
        self.rows
            .get(state)
            .is_some_and(|evs| evs.contains_key(event))
    }

    /// Iterates `(state, event, fired)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> + '_ {
        self.rows
            .iter()
            .flat_map(|(s, evs)| evs.iter().map(move |(e, &n)| (s.as_str(), e.as_str(), n)))
    }

    /// Iterates the declared rows that never fired.
    pub fn never_fired(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.iter()
            .filter(|&(_, _, n)| n == 0)
            .map(|(s, e, _)| (s, e))
    }

    /// Merges another coverage table (sums counts, unions universes).
    pub fn merge(&mut self, other: &TransitionCoverage) {
        for (s, e, n) in other.iter() {
            self.fire(s, e, n);
        }
    }

    /// Rows fired in `self` that never fired in `other` — the coverage
    /// *frontier* a new run pushed past a baseline. The result contains only
    /// the newly-fired rows (with their fire counts from `self`); declared
    /// universes are not copied, so `diff(...).fired_rows()` is the number
    /// of new `(state, event)` pairs. An empty diff means the run
    /// discovered nothing, which is exactly the signal the coverage-guided
    /// fuzz campaign uses to discard uninteresting inputs.
    pub fn diff(&self, other: &TransitionCoverage) -> TransitionCoverage {
        let mut out = TransitionCoverage::new();
        for (s, e, n) in self.iter() {
            if n > 0 && other.count(s, e) == 0 {
                out.fire(s, e, n);
            }
        }
        out
    }
}

/// Aggregated statistics from a simulation run.
///
/// Components contribute to a `Report` via [`crate::Component::report`]:
/// scalar counters (message counts, hits, errors, ...), per-controller
/// coverage sets, and log₂-bucketed latency [`Histogram`]s. Keys are
/// free-form strings, conventionally `"<component>.<counter>"`.
///
/// A report serializes to JSON with [`to_json`](Report::to_json) and parses
/// back with [`from_json`](Report::from_json); the round trip is lossless.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    scalars: BTreeMap<String, u64>,
    coverage: BTreeMap<String, CoverageSet>,
    fsm: BTreeMap<String, TransitionCoverage>,
    hists: BTreeMap<String, Histogram>,
    /// Fuzz-campaign metrics (corpus size, frontier pairs, budgets). Kept
    /// separate from `scalars` so campaign tooling can enumerate them
    /// without namespace conventions.
    fuzz: BTreeMap<String, u64>,
    /// Per-guard-instance metrics (`guard label → counter → value`), the
    /// multi-accelerator attribution section: which guard instance the OS
    /// blamed for each error, per-instance tester results, and so on. Kept
    /// out of `scalars` so single-accelerator reports stay byte-identical
    /// to their pre-multi-accelerator form once this section is stripped.
    guards: BTreeMap<String, BTreeMap<String, u64>>,
    /// Kernel-profiling metrics (`xg-prof`): dispatch counters, host-time
    /// attribution, queue high-water marks, and the epoch time series. Kept
    /// out of `scalars` so profiling-off reports keep their exact
    /// serialized form, and merged with section-specific rules — keys
    /// ending in `.hwm` take the max across shards, everything else sums —
    /// so shard merges stay permutation-invariant.
    profile: BTreeMap<String, u64>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the scalar counter `key` (creating it at zero).
    pub fn add(&mut self, key: impl Into<String>, value: u64) {
        *self.scalars.entry(key.into()).or_insert(0) += value;
    }

    /// Sets the scalar counter `key`, replacing any prior value.
    pub fn set(&mut self, key: impl Into<String>, value: u64) {
        self.scalars.insert(key.into(), value);
    }

    /// Reads a scalar counter, returning 0 if absent.
    pub fn get(&self, key: &str) -> u64 {
        self.scalars.get(key).copied().unwrap_or(0)
    }

    /// Sums every scalar counter whose key ends with `suffix`.
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.scalars
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterates over `(key, value)` scalars in deterministic order.
    pub fn scalars(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.scalars.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records (merges) a coverage set under `controller`.
    pub fn record_coverage(&mut self, controller: impl Into<String>, set: &CoverageSet) {
        self.coverage
            .entry(controller.into())
            .or_default()
            .merge(set);
    }

    /// Looks up the coverage set for a controller.
    pub fn coverage(&self, controller: &str) -> Option<&CoverageSet> {
        self.coverage.get(controller)
    }

    /// Iterates over all `(controller, coverage)` entries.
    pub fn coverages(&self) -> impl Iterator<Item = (&str, &CoverageSet)> + '_ {
        self.coverage.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Records (merges) a machine's transition coverage under `machine`.
    ///
    /// Keyed by machine (table) name rather than component instance name so
    /// that sweeps over many instances of the same controller merge into
    /// one per-machine table.
    pub fn record_fsm(&mut self, machine: impl Into<String>, cov: &TransitionCoverage) {
        self.fsm.entry(machine.into()).or_default().merge(cov);
    }

    /// Looks up the transition coverage for a machine.
    pub fn fsm(&self, machine: &str) -> Option<&TransitionCoverage> {
        self.fsm.get(machine)
    }

    /// Iterates over all `(machine, transition coverage)` entries.
    pub fn fsms(&self) -> impl Iterator<Item = (&str, &TransitionCoverage)> + '_ {
        self.fsm.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Adds `value` to the fuzz-section counter `key` (creating it at zero).
    pub fn fuzz_add(&mut self, key: impl Into<String>, value: u64) {
        *self.fuzz.entry(key.into()).or_insert(0) += value;
    }

    /// Sets the fuzz-section counter `key`, replacing any prior value.
    pub fn fuzz_set(&mut self, key: impl Into<String>, value: u64) {
        self.fuzz.insert(key.into(), value);
    }

    /// Reads a fuzz-section counter, returning 0 if absent.
    pub fn fuzz_get(&self, key: &str) -> u64 {
        self.fuzz.get(key).copied().unwrap_or(0)
    }

    /// Iterates `(key, value)` fuzz-section entries in deterministic order.
    pub fn fuzz_entries(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.fuzz.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Adds `value` to counter `key` of guard instance `guard` (creating
    /// it at zero).
    pub fn guard_add(&mut self, guard: impl Into<String>, key: impl Into<String>, value: u64) {
        *self
            .guards
            .entry(guard.into())
            .or_default()
            .entry(key.into())
            .or_insert(0) += value;
    }

    /// Sets counter `key` of guard instance `guard`, replacing any prior
    /// value.
    pub fn guard_set(&mut self, guard: impl Into<String>, key: impl Into<String>, value: u64) {
        self.guards
            .entry(guard.into())
            .or_default()
            .insert(key.into(), value);
    }

    /// Reads a per-guard counter, returning 0 if the guard or key is absent.
    pub fn guard_get(&self, guard: &str, key: &str) -> u64 {
        self.guards
            .get(guard)
            .and_then(|m| m.get(key))
            .copied()
            .unwrap_or(0)
    }

    /// Iterates guard instance labels in deterministic order.
    pub fn guard_names(&self) -> impl Iterator<Item = &str> + '_ {
        self.guards.keys().map(String::as_str)
    }

    /// Iterates `(key, value)` counters of one guard in deterministic order.
    pub fn guard_entries(&self, guard: &str) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.guards
            .get(guard)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), *v)))
    }

    /// A copy of this report with the per-guard section removed — the
    /// single-accelerator differential shape (see the harness golden test).
    pub fn without_guards(&self) -> Report {
        let mut out = self.clone();
        out.guards.clear();
        out
    }

    /// Adds `value` to the profile-section counter `key` (creating it at
    /// zero). Note that merges treat `.hwm`-suffixed keys specially — use
    /// [`profile_max`](Report::profile_max) to combine high-water marks.
    pub fn profile_add(&mut self, key: impl Into<String>, value: u64) {
        *self.profile.entry(key.into()).or_insert(0) += value;
    }

    /// Raises the profile-section counter `key` to at least `value` — the
    /// combine rule for `.hwm` high-water-mark keys.
    pub fn profile_max(&mut self, key: impl Into<String>, value: u64) {
        let slot = self.profile.entry(key.into()).or_insert(0);
        if value > *slot {
            *slot = value;
        }
    }

    /// Sets the profile-section counter `key`, replacing any prior value.
    pub fn profile_set(&mut self, key: impl Into<String>, value: u64) {
        self.profile.insert(key.into(), value);
    }

    /// Reads a profile-section counter, returning 0 if absent.
    pub fn profile_get(&self, key: &str) -> u64 {
        self.profile.get(key).copied().unwrap_or(0)
    }

    /// Iterates `(key, value)` profile entries in deterministic order.
    pub fn profile_entries(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.profile.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// A copy of this report with the profile section removed — the shape
    /// determinism comparisons use, since host-time attribution is
    /// wall-clock data and legitimately differs between identical runs.
    pub fn without_profile(&self) -> Report {
        let mut out = self.clone();
        out.profile.clear();
        out
    }

    /// Records one observation into the histogram `key` (creating it empty).
    pub fn observe(&mut self, key: impl Into<String>, value: u64) {
        self.hists.entry(key.into()).or_default().record(value);
    }

    /// Merges a component-owned histogram into the histogram `key`.
    pub fn record_hist(&mut self, key: impl Into<String>, hist: &Histogram) {
        if hist.is_empty() {
            return;
        }
        self.hists.entry(key.into()).or_default().merge(hist);
    }

    /// Looks up a histogram.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// Iterates over all `(key, histogram)` entries in deterministic order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another report into this one (scalars are summed, coverage
    /// sets are unioned, histograms are merged).
    ///
    /// Every merge operation is commutative and associative — scalar sums,
    /// set unions, histogram bucket/min/max/count/sum merges — so merging a
    /// fixed set of reports yields the same result (and the same
    /// [`to_json`](Report::to_json) bytes) in *any* order. Parallel sweep
    /// shards can therefore be merged as they arrive or in canonical
    /// submission order with identical output; keys are `BTreeMap`-ordered,
    /// never insertion-ordered.
    pub fn merge(&mut self, other: &Report) {
        for (k, v) in other.scalars() {
            self.add(k, v);
        }
        for (k, v) in other.coverages() {
            self.record_coverage(k, v);
        }
        for (k, v) in other.fsms() {
            self.record_fsm(k, v);
        }
        for (k, v) in other.hists() {
            self.record_hist(k, v);
        }
        for (k, v) in other.fuzz_entries() {
            self.fuzz_add(k, v);
        }
        for (guard, counters) in &other.guards {
            for (k, &v) in counters {
                self.guard_add(guard.clone(), k.clone(), v);
            }
        }
        for (k, &v) in &other.profile {
            // High-water marks combine with max (the deepest any shard got),
            // counters and time estimates with sum. Both rules are
            // commutative and associative, preserving permutation-invariant
            // shard merging.
            if k.ends_with(".hwm") {
                self.profile_max(k.clone(), v);
            } else {
                self.profile_add(k.clone(), v);
            }
        }
    }

    /// Merges a sequence of per-shard reports into one.
    ///
    /// The conventional spelling for collapsing a parallel sweep's shard
    /// reports; by the commutativity of [`merge`](Report::merge) the shard
    /// order cannot affect the result, which `xg-harness`'s sweep property
    /// tests verify against random permutations.
    pub fn merge_shards<'a>(shards: impl IntoIterator<Item = &'a Report>) -> Report {
        let mut merged = Report::new();
        for shard in shards {
            merged.merge(shard);
        }
        merged
    }

    /// Serializes the report as a compact JSON object with `scalars`,
    /// `coverage`, `fsm`, `hists`, and `fuzz` sections.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert(
            "scalars".to_owned(),
            JsonValue::Obj(
                self.scalars
                    .iter()
                    .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                    .collect(),
            ),
        );
        root.insert(
            "coverage".to_owned(),
            JsonValue::Obj(
                self.coverage
                    .iter()
                    .map(|(ctrl, set)| {
                        let states = set
                            .by_state
                            .iter()
                            .map(|(state, events)| {
                                let evs = events
                                    .iter()
                                    .map(|e| JsonValue::Str(e.clone()))
                                    .collect::<Vec<_>>();
                                (state.clone(), JsonValue::Arr(evs))
                            })
                            .collect();
                        (ctrl.clone(), JsonValue::Obj(states))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "fsm".to_owned(),
            JsonValue::Obj(
                self.fsm
                    .iter()
                    .map(|(machine, cov)| {
                        let states = cov
                            .rows
                            .iter()
                            .map(|(state, events)| {
                                let evs = events
                                    .iter()
                                    .map(|(e, &n)| (e.clone(), JsonValue::Num(n)))
                                    .collect();
                                (state.clone(), JsonValue::Obj(evs))
                            })
                            .collect();
                        (machine.clone(), JsonValue::Obj(states))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "hists".to_owned(),
            JsonValue::Obj(
                self.hists
                    .iter()
                    .map(|(k, h)| {
                        let mut o = BTreeMap::new();
                        o.insert("count".to_owned(), JsonValue::Num(h.count()));
                        o.insert("sum".to_owned(), JsonValue::Num(h.sum()));
                        o.insert("min".to_owned(), JsonValue::Num(h.min()));
                        o.insert("max".to_owned(), JsonValue::Num(h.max()));
                        o.insert(
                            "buckets".to_owned(),
                            JsonValue::Obj(
                                h.buckets()
                                    .map(|(i, n)| (i.to_string(), JsonValue::Num(n)))
                                    .collect(),
                            ),
                        );
                        (k.clone(), JsonValue::Obj(o))
                    })
                    .collect(),
            ),
        );
        root.insert(
            "fuzz".to_owned(),
            JsonValue::Obj(
                self.fuzz
                    .iter()
                    .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                    .collect(),
            ),
        );
        // Only present when profiling recorded something, so profiling-off
        // runs keep their exact serialized form (the golden-fixture
        // byte-identity guarantee).
        if !self.profile.is_empty() {
            root.insert(
                "profile".to_owned(),
                JsonValue::Obj(
                    self.profile
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                        .collect(),
                ),
            );
        }
        // Only present when a guard instance reported something, so reports
        // from single-section-era runs keep their exact serialized form.
        if !self.guards.is_empty() {
            root.insert(
                "guards".to_owned(),
                JsonValue::Obj(
                    self.guards
                        .iter()
                        .map(|(guard, counters)| {
                            let m = counters
                                .iter()
                                .map(|(k, &v)| (k.clone(), JsonValue::Num(v)))
                                .collect();
                            (guard.clone(), JsonValue::Obj(m))
                        })
                        .collect(),
                ),
            );
        }
        JsonValue::Obj(root).to_string()
    }

    /// Parses a report serialized by [`to_json`](Report::to_json).
    pub fn from_json(input: &str) -> Result<Report, JsonError> {
        fn bad(message: &str) -> JsonError {
            JsonError {
                message: message.to_owned(),
                offset: 0,
            }
        }
        let root = JsonValue::parse(input)?;
        let root = root
            .as_obj()
            .ok_or_else(|| bad("report must be an object"))?;
        let mut report = Report::new();

        if let Some(scalars) = root.get("scalars") {
            let scalars = scalars
                .as_obj()
                .ok_or_else(|| bad("scalars must be an object"))?;
            for (k, v) in scalars {
                let v = v
                    .as_num()
                    .ok_or_else(|| bad("scalar values must be numbers"))?;
                report.set(k.clone(), v);
            }
        }
        if let Some(coverage) = root.get("coverage") {
            let coverage = coverage
                .as_obj()
                .ok_or_else(|| bad("coverage must be an object"))?;
            for (ctrl, states) in coverage {
                let states = states
                    .as_obj()
                    .ok_or_else(|| bad("coverage entries must be objects"))?;
                let set = report.coverage.entry(ctrl.clone()).or_default();
                for (state, events) in states {
                    let events = events
                        .as_arr()
                        .ok_or_else(|| bad("coverage events must be arrays"))?;
                    for ev in events {
                        let ev = ev
                            .as_str()
                            .ok_or_else(|| bad("coverage events must be strings"))?;
                        set.visit(state, ev);
                    }
                }
            }
        }
        if let Some(fsm) = root.get("fsm") {
            let fsm = fsm.as_obj().ok_or_else(|| bad("fsm must be an object"))?;
            for (machine, states) in fsm {
                let states = states
                    .as_obj()
                    .ok_or_else(|| bad("fsm entries must be objects"))?;
                let cov = report.fsm.entry(machine.clone()).or_default();
                for (state, events) in states {
                    let events = events
                        .as_obj()
                        .ok_or_else(|| bad("fsm events must be objects"))?;
                    for (ev, n) in events {
                        let n = n
                            .as_num()
                            .ok_or_else(|| bad("fsm row counts must be numbers"))?;
                        cov.fire(state, ev, n);
                    }
                }
            }
        }
        if let Some(fuzz) = root.get("fuzz") {
            let fuzz = fuzz.as_obj().ok_or_else(|| bad("fuzz must be an object"))?;
            for (k, v) in fuzz {
                let v = v
                    .as_num()
                    .ok_or_else(|| bad("fuzz values must be numbers"))?;
                report.fuzz_set(k.clone(), v);
            }
        }
        if let Some(profile) = root.get("profile") {
            let profile = profile
                .as_obj()
                .ok_or_else(|| bad("profile must be an object"))?;
            for (k, v) in profile {
                let v = v
                    .as_num()
                    .ok_or_else(|| bad("profile values must be numbers"))?;
                report.profile_set(k.clone(), v);
            }
        }
        if let Some(guards) = root.get("guards") {
            let guards = guards
                .as_obj()
                .ok_or_else(|| bad("guards must be an object"))?;
            for (guard, counters) in guards {
                let counters = counters
                    .as_obj()
                    .ok_or_else(|| bad("guard entries must be objects"))?;
                for (k, v) in counters {
                    let v = v
                        .as_num()
                        .ok_or_else(|| bad("guard counters must be numbers"))?;
                    report.guard_set(guard.clone(), k.clone(), v);
                }
            }
        }
        if let Some(hists) = root.get("hists") {
            let hists = hists
                .as_obj()
                .ok_or_else(|| bad("hists must be an object"))?;
            for (key, h) in hists {
                let h = h
                    .as_obj()
                    .ok_or_else(|| bad("hist entries must be objects"))?;
                let field = |name: &str| -> Result<u64, JsonError> {
                    h.get(name)
                        .and_then(JsonValue::as_num)
                        .ok_or_else(|| bad(&format!("hist missing numeric '{name}'")))
                };
                let buckets = h
                    .get("buckets")
                    .and_then(JsonValue::as_obj)
                    .ok_or_else(|| bad("hist missing 'buckets' object"))?;
                let mut parsed = BTreeMap::new();
                for (idx, n) in buckets {
                    let idx: u32 = idx.parse().map_err(|_| bad("bucket keys must be u32"))?;
                    if idx > 64 {
                        return Err(bad("bucket index out of range"));
                    }
                    let n = n
                        .as_num()
                        .ok_or_else(|| bad("bucket counts must be numbers"))?;
                    parsed.insert(idx, n);
                }
                let hist = Histogram::from_parts(
                    parsed,
                    field("count")?,
                    field("sum")?,
                    field("min")?,
                    field("max")?,
                )
                .map_err(bad)?;
                report.hists.insert(key.clone(), hist);
            }
        }
        Ok(report)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.scalars {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, v) in &self.coverage {
            writeln!(f, "{k}: {} state/event pairs", v.len())?;
        }
        for (k, v) in &self.fsm {
            writeln!(
                f,
                "{k}: {}/{} transition rows fired",
                v.fired_rows(),
                v.total_rows()
            )?;
        }
        for (k, h) in &self.hists {
            writeln!(f, "{k}: {h}")?;
        }
        for (k, v) in &self.fuzz {
            writeln!(f, "fuzz.{k} = {v}")?;
        }
        for (guard, counters) in &self.guards {
            for (k, v) in counters {
                writeln!(f, "guard.{guard}.{k} = {v}")?;
            }
        }
        for (k, v) in &self.profile {
            writeln!(f, "profile.{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_accumulate() {
        let mut r = Report::new();
        r.add("a.hits", 3);
        r.add("a.hits", 4);
        r.set("a.misses", 9);
        r.set("a.misses", 2);
        assert_eq!(r.get("a.hits"), 7);
        assert_eq!(r.get("a.misses"), 2);
        assert_eq!(r.get("absent"), 0);
    }

    #[test]
    fn suffix_sum() {
        let mut r = Report::new();
        r.add("l1_0.hits", 1);
        r.add("l1_1.hits", 2);
        r.add("l1_1.misses", 10);
        assert_eq!(r.sum_suffix(".hits"), 3);
    }

    #[test]
    fn coverage_merges() {
        let mut c = CoverageSet::new();
        c.visit("I", "Load");
        c.visit("I", "Load");
        c.visit("S", "Inv");
        assert_eq!(c.len(), 2);
        assert!(c.contains("S", "Inv"));
        assert!(!c.contains("M", "Inv"));

        let mut r = Report::new();
        r.record_coverage("l1", &c);
        let mut c2 = CoverageSet::new();
        c2.visit("M", "Store");
        r.record_coverage("l1", &c2);
        assert_eq!(r.coverage("l1").unwrap().len(), 3);
    }

    #[test]
    fn coverage_iterates_in_order() {
        let mut c = CoverageSet::new();
        c.visit("S", "Inv");
        c.visit("I", "Store");
        c.visit("I", "Load");
        let pairs: Vec<(&str, &str)> = c.iter().collect();
        assert_eq!(pairs, vec![("I", "Load"), ("I", "Store"), ("S", "Inv")]);
    }

    #[test]
    fn report_merge_and_display() {
        let mut a = Report::new();
        a.add("x", 1);
        let mut b = Report::new();
        b.add("x", 2);
        let mut cov = CoverageSet::new();
        cov.visit("I", "Load");
        b.record_coverage("ctrl", &cov);
        b.observe("lat", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.hist("lat").unwrap().count(), 1);
        let text = a.to_string();
        assert!(text.contains("x = 3"));
        assert!(text.contains("ctrl"));
        assert!(text.contains("lat"));
    }

    #[test]
    fn histograms_merge_across_reports() {
        let mut a = Report::new();
        a.observe("xg.lat.grant", 4);
        a.observe("xg.lat.grant", 1000);
        let mut b = Report::new();
        b.observe("xg.lat.grant", 9);
        a.merge(&b);
        let h = a.hist("xg.lat.grant").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 4);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn transition_coverage_counts_and_holes() {
        let mut t = TransitionCoverage::new();
        t.declare("I", "Load");
        t.declare("S", "Inv");
        t.fire("I", "Load", 3);
        t.fire("I", "Load", 2);
        assert_eq!(t.total_rows(), 2);
        assert_eq!(t.fired_rows(), 1);
        assert_eq!(t.count("I", "Load"), 5);
        assert_eq!(t.count("S", "Inv"), 0);
        assert!(t.is_declared("S", "Inv"));
        assert!(!t.is_declared("M", "Store"));
        let holes: Vec<_> = t.never_fired().collect();
        assert_eq!(holes, vec![("S", "Inv")]);
    }

    #[test]
    fn transition_coverage_merge_is_commutative() {
        let mut a = TransitionCoverage::new();
        a.declare("I", "Load");
        a.fire("S", "Inv", 2);
        let mut b = TransitionCoverage::new();
        b.fire("I", "Load", 1);
        b.declare("M", "Store");

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_rows(), 3);
        assert_eq!(ab.fired_rows(), 2);
        assert_eq!(ab.count("I", "Load"), 1);
    }

    #[test]
    fn report_fsm_round_trips_and_merges() {
        let mut t = TransitionCoverage::new();
        t.declare("NO", "Put");
        t.fire("O_mem", "GetS", 7);
        let mut r = Report::new();
        r.record_fsm("hammer_dir", &t);

        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let cov = back.fsm("hammer_dir").unwrap();
        assert_eq!(cov.count("O_mem", "GetS"), 7);
        assert!(cov.is_declared("NO", "Put"));
        assert_eq!(cov.fired_rows(), 1);

        let mut other = Report::new();
        other.record_fsm("hammer_dir", &t);
        r.merge(&other);
        assert_eq!(r.fsm("hammer_dir").unwrap().count("O_mem", "GetS"), 14);
        assert_eq!(r.fsm("hammer_dir").unwrap().total_rows(), 2);
    }

    #[test]
    fn transition_coverage_diff_finds_the_frontier() {
        let mut base = TransitionCoverage::new();
        base.fire("I", "Load", 5);
        base.declare("S", "Inv");
        let mut run = TransitionCoverage::new();
        run.fire("I", "Load", 2); // already known
        run.fire("S", "Inv", 1); // declared but never fired in base → new
        run.fire("M", "Store", 4); // entirely new
        run.declare("M", "Evict"); // declared-only rows never count

        let d = run.diff(&base);
        assert_eq!(d.fired_rows(), 2);
        assert_eq!(d.count("S", "Inv"), 1);
        assert_eq!(d.count("M", "Store"), 4);
        assert_eq!(d.count("I", "Load"), 0);
        assert!(base.diff(&base).fired_rows() == 0, "self-diff is empty");
        assert_eq!(
            TransitionCoverage::new().diff(&TransitionCoverage::new()),
            TransitionCoverage::new()
        );
    }

    #[test]
    fn fuzz_section_round_trips_and_merges() {
        let mut r = Report::new();
        r.fuzz_set("campaign.pairs", 42);
        r.fuzz_add("campaign.runs", 3);
        r.fuzz_add("campaign.runs", 2);
        assert_eq!(r.fuzz_get("campaign.runs"), 5);
        assert_eq!(r.fuzz_get("absent"), 0);

        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.fuzz_get("campaign.pairs"), 42);

        let mut other = Report::new();
        other.fuzz_add("campaign.runs", 10);
        r.merge(&other);
        assert_eq!(r.fuzz_get("campaign.runs"), 15);
        assert!(r.to_string().contains("fuzz.campaign.pairs = 42"));
    }

    #[test]
    fn guard_section_round_trips_merges_and_strips() {
        let mut r = Report::new();
        r.guard_set("xg", "os_errors", 7);
        r.guard_add("xg", "data_errors", 0);
        r.guard_add("a1_xg", "os_errors", 0);
        r.add("os.errors_total", 7);
        assert_eq!(r.guard_get("xg", "os_errors"), 7);
        assert_eq!(r.guard_get("a1_xg", "os_errors"), 0);
        assert_eq!(r.guard_get("absent", "os_errors"), 0);
        let names: Vec<&str> = r.guard_names().collect();
        assert_eq!(names, vec!["a1_xg", "xg"]);

        // JSON round trip is lossless and the section is present.
        let json = r.to_json();
        assert!(json.contains("\"guards\""));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);

        // Merge sums per-guard counters commutatively.
        let mut other = Report::new();
        other.guard_add("xg", "os_errors", 3);
        other.guard_add("a2_xg", "os_errors", 1);
        let mut ab = r.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(&r);
        assert_eq!(ab, ba);
        assert_eq!(ab.guard_get("xg", "os_errors"), 10);
        assert_eq!(ab.guard_get("a2_xg", "os_errors"), 1);

        // Stripping restores the single-accelerator shape byte-for-byte.
        let mut single = Report::new();
        single.add("os.errors_total", 7);
        assert_eq!(r.without_guards().to_json(), single.to_json());
        assert!(!r.without_guards().to_json().contains("guards"));
        assert!(r.to_string().contains("guard.xg.os_errors = 7"));
    }

    #[test]
    fn profile_section_round_trips_merges_and_strips() {
        let mut r = Report::new();
        r.profile_add("dispatch.guard.GetM", 5);
        r.profile_add("dispatch.guard.GetM", 2);
        r.profile_max("queue.hwm", 9);
        r.profile_set("events.total", 100);
        r.add("os.errors_total", 1);
        assert_eq!(r.profile_get("dispatch.guard.GetM"), 7);
        assert_eq!(r.profile_get("absent"), 0);

        // JSON round trip is lossless and the section is present.
        let json = r.to_json();
        assert!(json.contains("\"profile\""));
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);

        // Merge: counters sum, `.hwm` keys take the max, commutatively.
        let mut other = Report::new();
        other.profile_add("dispatch.guard.GetM", 3);
        other.profile_max("queue.hwm", 4);
        other.profile_set("events.total", 50);
        let mut ab = r.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(&r);
        assert_eq!(ab, ba);
        assert_eq!(ab.profile_get("dispatch.guard.GetM"), 10);
        assert_eq!(ab.profile_get("queue.hwm"), 9, "hwm merges with max");
        assert_eq!(ab.profile_get("events.total"), 150);

        // Stripping restores the profiling-off shape byte-for-byte.
        let mut plain = Report::new();
        plain.add("os.errors_total", 1);
        assert_eq!(r.without_profile().to_json(), plain.to_json());
        assert!(!r.without_profile().to_json().contains("profile"));
        assert!(r.to_string().contains("profile.queue.hwm = 9"));
    }

    #[test]
    fn profile_max_never_lowers() {
        let mut r = Report::new();
        r.profile_max("inflight.dir.hwm", 6);
        r.profile_max("inflight.dir.hwm", 2);
        assert_eq!(r.profile_get("inflight.dir.hwm"), 6);
    }

    #[test]
    fn empty_profile_section_is_not_serialized() {
        let r = Report::new();
        assert!(!r.to_json().contains("profile"));
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_guard_section_is_not_serialized() {
        let r = Report::new();
        assert!(!r.to_json().contains("guards"));
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut r = Report::new();
        r.add("guard.reqs", 42);
        r.set("big", u64::MAX);
        let mut cov = CoverageSet::new();
        cov.visit("I", "Load");
        cov.visit("I_M", "Data\"quote\"");
        cov.visit("S", "Inv");
        r.record_coverage("l1_0", &cov);
        let mut fsm = TransitionCoverage::new();
        fsm.fire("NP", "GetS", 9);
        fsm.declare("Owned", "Recall");
        r.record_fsm("mesi_l2", &fsm);
        r.observe("lat", 0);
        r.observe("lat", 17);
        r.observe("lat", u64::MAX);
        r.observe("other", 3);
        r.fuzz_set("campaign.budget", 12345);

        let json = r.to_json();
        let back = Report::from_json(&json).unwrap();
        assert_eq!(back, r);
        // And the serialized form is stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = Report::new();
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        for bad in [
            "[]",
            "{\"scalars\": 3}",
            "{\"coverage\": {\"c\": [\"not-an-obj\"]}}",
            "{\"hists\": {\"h\": {\"count\": 1}}}",
            "{\"hists\": {\"h\": {\"count\":1,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":{\"99\":1}}}}",
            "{\"hists\": {\"h\": {\"count\":2,\"sum\":1,\"min\":1,\"max\":1,\"buckets\":{\"1\":1}}}}",
            "{\"guards\": 3}",
            "{\"guards\": {\"g\": 3}}",
            "{\"guards\": {\"g\": {\"k\": \"str\"}}}",
            "{\"profile\": 3}",
            "{\"profile\": {\"k\": \"str\"}}",
        ] {
            assert!(Report::from_json(bad).is_err(), "accepted {bad}");
        }
    }
}

//! Post-run statistics and coverage reporting.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A set of `(state, event)` pairs visited by a protocol controller.
///
/// This is the coverage metric of the paper's §4.1 stress test: the random
/// tester counts the state/event pairs visited at each cache controller and
/// compares against the set believed possible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageSet {
    pairs: BTreeSet<(&'static str, &'static str)>,
}

impl CoverageSet {
    /// Creates an empty coverage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `event` was observed while in `state`.
    pub fn visit(&mut self, state: &'static str, event: &'static str) {
        self.pairs.insert((state, event));
    }

    /// Number of distinct `(state, event)` pairs visited.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether nothing has been visited.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a particular pair was visited.
    pub fn contains(&self, state: &str, event: &str) -> bool {
        self.pairs.iter().any(|&(s, e)| s == state && e == event)
    }

    /// Iterates over visited pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.pairs.iter().copied()
    }

    /// Merges another coverage set into this one.
    pub fn merge(&mut self, other: &CoverageSet) {
        self.pairs.extend(other.pairs.iter().copied());
    }
}

/// Aggregated statistics from a simulation run.
///
/// Components contribute to a `Report` via [`crate::Component::report`]:
/// scalar counters (message counts, hits, errors, ...) and per-controller
/// coverage sets. Keys are free-form strings, conventionally
/// `"<component>.<counter>"`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    scalars: BTreeMap<String, u64>,
    coverage: BTreeMap<String, CoverageSet>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `value` to the scalar counter `key` (creating it at zero).
    pub fn add(&mut self, key: impl Into<String>, value: u64) {
        *self.scalars.entry(key.into()).or_insert(0) += value;
    }

    /// Sets the scalar counter `key`, replacing any prior value.
    pub fn set(&mut self, key: impl Into<String>, value: u64) {
        self.scalars.insert(key.into(), value);
    }

    /// Reads a scalar counter, returning 0 if absent.
    pub fn get(&self, key: &str) -> u64 {
        self.scalars.get(key).copied().unwrap_or(0)
    }

    /// Sums every scalar counter whose key ends with `suffix`.
    pub fn sum_suffix(&self, suffix: &str) -> u64 {
        self.scalars
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterates over `(key, value)` scalars in deterministic order.
    pub fn scalars(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.scalars.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records (merges) a coverage set under `controller`.
    pub fn record_coverage(&mut self, controller: impl Into<String>, set: &CoverageSet) {
        self.coverage
            .entry(controller.into())
            .or_default()
            .merge(set);
    }

    /// Looks up the coverage set for a controller.
    pub fn coverage(&self, controller: &str) -> Option<&CoverageSet> {
        self.coverage.get(controller)
    }

    /// Iterates over all `(controller, coverage)` entries.
    pub fn coverages(&self) -> impl Iterator<Item = (&str, &CoverageSet)> + '_ {
        self.coverage.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another report into this one (scalars are summed, coverage
    /// sets are unioned).
    pub fn merge(&mut self, other: &Report) {
        for (k, v) in other.scalars() {
            self.add(k, v);
        }
        for (k, v) in other.coverages() {
            self.record_coverage(k, v);
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.scalars {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, v) in &self.coverage {
            writeln!(f, "{k}: {} state/event pairs", v.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_accumulate() {
        let mut r = Report::new();
        r.add("a.hits", 3);
        r.add("a.hits", 4);
        r.set("a.misses", 9);
        r.set("a.misses", 2);
        assert_eq!(r.get("a.hits"), 7);
        assert_eq!(r.get("a.misses"), 2);
        assert_eq!(r.get("absent"), 0);
    }

    #[test]
    fn suffix_sum() {
        let mut r = Report::new();
        r.add("l1_0.hits", 1);
        r.add("l1_1.hits", 2);
        r.add("l1_1.misses", 10);
        assert_eq!(r.sum_suffix(".hits"), 3);
    }

    #[test]
    fn coverage_merges() {
        let mut c = CoverageSet::new();
        c.visit("I", "Load");
        c.visit("I", "Load");
        c.visit("S", "Inv");
        assert_eq!(c.len(), 2);
        assert!(c.contains("S", "Inv"));
        assert!(!c.contains("M", "Inv"));

        let mut r = Report::new();
        r.record_coverage("l1", &c);
        let mut c2 = CoverageSet::new();
        c2.visit("M", "Store");
        r.record_coverage("l1", &c2);
        assert_eq!(r.coverage("l1").unwrap().len(), 3);
    }

    #[test]
    fn report_merge_and_display() {
        let mut a = Report::new();
        a.add("x", 1);
        let mut b = Report::new();
        b.add("x", 2);
        let mut cov = CoverageSet::new();
        cov.visit("I", "Load");
        b.record_coverage("ctrl", &cov);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        let text = a.to_string();
        assert!(text.contains("x = 3"));
        assert!(text.contains("ctrl"));
    }
}

//! Minimal JSON reading/writing for machine-readable run reports.
//!
//! The workspace builds fully offline, so `serde`/`serde_json` are not
//! available; this module hand-rolls the small subset of JSON the report
//! pipeline needs: objects, arrays, strings, and unsigned 64-bit integers.
//! That subset is exactly what [`crate::Report`] serializes — counters,
//! coverage tables, and histograms — and keeping the grammar closed makes the
//! round-trip property (`from_json(to_json(r)) == r`) easy to guarantee,
//! including for `u64::MAX`, which real-world JSON libraries routed through
//! `f64` would corrupt.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (subset: no floats, booleans, or null).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// An unsigned integer (covers every numeric field a report emits).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with deterministically ordered keys.
    Obj(BTreeMap<String, JsonValue>),
}

/// Error from [`JsonValue::parse`], with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses `input` into a value, requiring the whole input be consumed.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Convenience accessor: the object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience accessor: the number, if this is a number.
    pub fn as_num(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience accessor: the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Convenience accessor: the array, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Num(n) => write!(f, "{n}"),
            JsonValue::Str(s) => write_json_string(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal with the required escapes.
fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (keeps the common case fast and
            // UTF-8 clean, since escapes and quotes are ASCII).
            while !matches!(self.peek(), Some(b'"') | Some(b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("non-scalar \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("integer out of u64 range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structure() {
        let mut obj = BTreeMap::new();
        obj.insert("max".to_owned(), JsonValue::Num(u64::MAX));
        obj.insert("zero".to_owned(), JsonValue::Num(0));
        obj.insert(
            "arr".to_owned(),
            JsonValue::Arr(vec![
                JsonValue::Str("a \"quoted\" \\ line\nbreak".to_owned()),
                JsonValue::Obj(BTreeMap::new()),
                JsonValue::Arr(vec![]),
            ]),
        );
        let v = JsonValue::Obj(obj);
        let text = v.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj["k"].as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1));
        assert_eq!(arr[1].as_str(), Some("A\t"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "123 456",
            "18446744073709551616", // u64::MAX + 1
            "{\"a\" 1}",
            "nope",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = JsonValue::parse("{\"a\": !}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"));
    }
}

//! # xg-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the execution substrate on which every coherence
//! controller in the Crossing Guard reproduction runs. It is a deliberately
//! small, single-threaded, *deterministic* discrete-event simulator:
//! determinism is a correctness feature here, because the protocol stress
//! tests (paper §4.1) must be exactly reproducible from a seed so that any
//! coherence bug they find can be replayed.
//!
//! The model is the classic message-passing one used by gem5/Ruby:
//!
//! * A [`Component`] is a coherence controller (cache, directory, Crossing
//!   Guard instance, traffic-generating core, OS error sink, ...). Components
//!   never call each other directly; they only exchange messages.
//! * Messages travel over *links*. A [`Link`] has a latency range and an
//!   ordering discipline. **Unordered** links deliver each message after an
//!   independently random latency — this is what creates the protocol races
//!   the paper discusses (§2.4). **Ordered** links preserve send order, which
//!   the Crossing Guard ↔ accelerator network requires (§2.1).
//! * A central event queue delivers messages and timer wake-ups in
//!   `(time, sequence)` order.
//!
//! The simulator is generic over the message type `M`, so this crate has no
//! knowledge of any particular protocol.
//!
//! ## Example
//!
//! ```rust
//! use xg_sim::{Component, Ctx, Link, NodeId, Report, SimBuilder};
//!
//! /// A component that echoes every number back, incremented.
//! struct Echo;
//! impl Component<u64> for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn handle(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
//!         if msg < 3 { ctx.send(from, msg + 1); }
//!         ctx.note_progress();
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut b = SimBuilder::new(42);
//! let a = b.add(Box::new(Echo));
//! let c = b.add(Box::new(Echo));
//! b.default_link(Link::unordered(1, 4));
//! let mut sim = b.build();
//! sim.post(a, c, 0); // inject a message from outside
//! let outcome = sim.run_to_quiescence(1_000);
//! assert!(outcome.quiescent);
//! ```

#![forbid(unsafe_code)]

mod component;
mod event;
mod hist;
mod json;
mod link;
pub mod par;
pub mod queue;
mod report;
mod simulator;
pub mod slab;
mod time;
mod trace;

pub use component::{Component, NodeId};

/// Whether `XG_TRACE` message tracing is enabled (checked once per process).
///
/// Retained for callers that trace outside a simulation context; inside a
/// component prefer [`Ctx::trace`], which respects the per-simulation
/// [`TraceConfig`] (whose [`TraceConfig::from_env`] honors the same
/// variable) and records into the post-mortem ring.
pub fn trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("XG_TRACE").is_some())
}
pub use hist::Histogram;
pub use json::{JsonError, JsonValue};
pub use link::{FaultSpec, Link};
pub use par::ParSim;
pub use queue::{CalendarQueue, QueueStats};
pub use report::{CoverageSet, Report, TransitionCoverage};
pub use simulator::{Ctx, LinkFaultCounts, RunOutcome, SimBuilder, Simulator};
pub use slab::{Slab, SlabId};
pub use time::Cycle;
pub use trace::{PostMortemFlag, TraceConfig, TraceEvent, TraceLevel, Tracer};
pub use xg_prof::{
    EpochSample, ProfileConfig, Profiler, Timeline, TimelineConfig, PID_ADDRESSES, PID_COMPONENTS,
};

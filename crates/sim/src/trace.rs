//! Structured protocol tracing with post-mortem dumps.
//!
//! Debugging a coherence protocol failure means answering one question:
//! *what happened to this block address, across every controller, in the
//! cycles before things went wrong?* This module keeps exactly that — a
//! bounded per-address ring buffer of [`TraceEvent`]s, recorded by every
//! component through [`crate::Ctx::trace`] — and renders it on demand as a
//! [`Tracer::post_mortem`] dump when a component flags an address as
//! suspicious (guard kill, safety-invariant trip, fuzz-detected corruption).
//!
//! Tracing is configured per simulation via [`TraceConfig`] and is zero-cost
//! when off: `Ctx::trace` takes the detail text as a closure and never
//! evaluates it unless the level says so, so the steady-state overhead of an
//! instrumented controller is one branch per call site. Post-mortem *flags*,
//! by contrast, are always recorded — they are rare, and keeping them
//! unconditional lets a harness notice a failure in a fast untraced run and
//! then deterministically replay the same seed with tracing enabled.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use xg_prof::Timeline;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing (post-mortem flags are still collected).
    Off,
    /// Record events into per-address rings for post-mortem dumps.
    Ring,
    /// Record into rings *and* echo each event to stderr as it happens.
    Echo,
}

/// Tracer configuration, fixed at simulator build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Recording level.
    pub level: TraceLevel,
    /// Maximum events retained per address (oldest evicted first).
    pub ring_capacity: usize,
    /// Maximum distinct addresses tracked; events for further addresses are
    /// counted in [`Tracer::dropped`] rather than growing memory unboundedly.
    pub max_addrs: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default for production runs).
    pub fn off() -> Self {
        TraceConfig {
            level: TraceLevel::Off,
            ring_capacity: 64,
            max_addrs: 4096,
        }
    }

    /// Ring recording with default bounds — what failure replays use.
    pub fn ring() -> Self {
        TraceConfig {
            level: TraceLevel::Ring,
            ..Self::off()
        }
    }

    /// Ring recording plus live stderr echo.
    pub fn echo() -> Self {
        TraceConfig {
            level: TraceLevel::Echo,
            ..Self::off()
        }
    }

    /// Honors the `XG_TRACE` environment variable: set → [`TraceLevel::Echo`]
    /// (the historical behavior of this workspace), unset → off.
    pub fn from_env() -> Self {
        if std::env::var_os("XG_TRACE").is_some() {
            Self::echo()
        } else {
            Self::off()
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event occurred at.
    pub tick: u64,
    /// Name of the component that recorded it.
    pub component: String,
    /// Block address the event concerns.
    pub addr: u64,
    /// Controller state at the time (free-form, e.g. `"S"`, `"I_M"`).
    pub state: String,
    /// What happened (free-form, e.g. `"GetM"`, `"InvTimeout"`).
    pub event: String,
    /// Extra context rendered lazily at the call site.
    pub detail: String,
}

/// An address flagged for post-mortem dumping, with why and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostMortemFlag {
    /// Simulated cycle the flag was raised.
    pub tick: u64,
    /// The suspicious address.
    pub addr: u64,
    /// Why it was flagged (e.g. `"guard killed accelerator: DataRace"`).
    pub reason: String,
}

/// Bounded per-address event recorder shared by all components of a
/// simulation. Owned by [`crate::Simulator`]; components reach it through
/// [`crate::Ctx::trace`] and [`crate::Ctx::flag_post_mortem`].
#[derive(Debug)]
pub struct Tracer {
    config: TraceConfig,
    rings: BTreeMap<u64, VecDeque<TraceEvent>>,
    flags: Vec<PostMortemFlag>,
    dropped: u64,
    /// Optional transaction timeline (`xg-prof`). When present, every
    /// [`crate::Ctx::trace`] record also lands as an instant event on the
    /// component's timeline track, and [`crate::Ctx::span`] records
    /// per-address lifecycle spans. `None` (the default) costs one branch
    /// per call site.
    timeline: Option<Timeline>,
}

impl Tracer {
    /// Creates a tracer with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            config,
            rings: BTreeMap::new(),
            flags: Vec::new(),
            dropped: 0,
            timeline: None,
        }
    }

    /// Installs a timeline recorder. Usually called through
    /// [`crate::Simulator::enable_timeline`], which also names the
    /// component tracks.
    pub fn set_timeline(&mut self, timeline: Timeline) {
        self.timeline = Some(timeline);
    }

    /// The timeline recorder, if one is installed.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Mutable access to the timeline recorder, if one is installed.
    pub fn timeline_mut(&mut self) -> Option<&mut Timeline> {
        self.timeline.as_mut()
    }

    /// Removes and returns the timeline recorder.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// The active configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// Replaces the configuration. Intended for harnesses that build a
    /// system through a shared constructor and then opt a specific run into
    /// tracing (e.g. a deterministic failure replay); already-recorded
    /// events and flags are kept.
    pub fn set_config(&mut self, config: TraceConfig) {
        self.config = config;
    }

    /// Whether events are being recorded at all. Call sites use this to skip
    /// rendering detail strings when tracing is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.config.level != TraceLevel::Off
    }

    /// Records one event (no-op when disabled).
    pub fn record(
        &mut self,
        tick: u64,
        component: &str,
        addr: u64,
        state: &str,
        event: &str,
        detail: String,
    ) {
        if !self.enabled() {
            return;
        }
        if self.config.level == TraceLevel::Echo {
            eprintln!("[{tick}] {component} {addr:#x} [{state}] {event} {detail}");
        }
        if !self.rings.contains_key(&addr) && self.rings.len() >= self.config.max_addrs {
            self.dropped += 1;
            return;
        }
        let ring = self.rings.entry(addr).or_default();
        if ring.len() >= self.config.ring_capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent {
            tick,
            component: component.to_owned(),
            addr,
            state: state.to_owned(),
            event: event.to_owned(),
            detail,
        });
    }

    /// Events recorded but discarded because the address table was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Marks `addr` for post-mortem dumping (always recorded, even with
    /// tracing off — see the module docs for why).
    pub fn flag(&mut self, tick: u64, addr: u64, reason: impl Into<String>) {
        self.flags.push(PostMortemFlag {
            tick,
            addr,
            reason: reason.into(),
        });
    }

    /// All post-mortem flags raised so far, in raise order.
    pub fn flags(&self) -> &[PostMortemFlag] {
        &self.flags
    }

    /// The retained events touching `addr`, oldest first.
    pub fn events_for(&self, addr: u64) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.rings.get(&addr).into_iter().flatten()
    }

    /// Renders the retained history of one address — the "last N events
    /// touching this block, across all controllers" view.
    pub fn dump(&self, addr: u64) -> String {
        let mut out = format!("--- trace for addr {addr:#x} ---\n");
        let mut any = false;
        for ev in self.events_for(addr) {
            any = true;
            let _ = writeln!(
                out,
                "  [{:>8}] {:<16} [{}] {} {}",
                ev.tick, ev.component, ev.state, ev.event, ev.detail
            );
        }
        if !any {
            out.push_str("  (no events retained; run with tracing enabled)\n");
        }
        out
    }

    /// Renders the full post-mortem: every flagged address's reason(s) and
    /// retained event history. `None` if nothing was flagged.
    pub fn post_mortem(&self) -> Option<String> {
        if self.flags.is_empty() {
            return None;
        }
        let mut out = String::from("=== post-mortem ===\n");
        for flag in &self.flags {
            let _ = writeln!(
                out,
                "flagged addr {:#x} at cycle {}: {}",
                flag.addr, flag.tick, flag.reason
            );
        }
        // Dump each flagged address once, in address order.
        let mut addrs: Vec<u64> = self.flags.iter().map(|f| f.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        for addr in addrs {
            out.push_str(&self.dump(addr));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing_but_keeps_flags() {
        let mut t = Tracer::new(TraceConfig::off());
        assert!(!t.enabled());
        t.record(1, "l1", 0x40, "I", "Load", String::new());
        assert_eq!(t.events_for(0x40).count(), 0);
        t.flag(5, 0x40, "corruption");
        let pm = t.post_mortem().unwrap();
        assert!(pm.contains("0x40"));
        assert!(pm.contains("corruption"));
        assert!(pm.contains("no events retained"));
    }

    #[test]
    fn ring_is_bounded_per_address() {
        let mut t = Tracer::new(TraceConfig {
            ring_capacity: 3,
            ..TraceConfig::ring()
        });
        for tick in 0..10 {
            t.record(tick, "dir", 0x80, "S", "GetS", format!("n{tick}"));
        }
        let ticks: Vec<u64> = t.events_for(0x80).map(|e| e.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9], "keeps only the newest events");
    }

    #[test]
    fn address_table_is_bounded() {
        let mut t = Tracer::new(TraceConfig {
            max_addrs: 2,
            ..TraceConfig::ring()
        });
        t.record(0, "a", 0x1, "I", "e", String::new());
        t.record(1, "a", 0x2, "I", "e", String::new());
        t.record(2, "a", 0x3, "I", "e", String::new());
        assert_eq!(t.events_for(0x3).count(), 0);
        assert_eq!(t.dropped(), 1);
        // Known addresses still record.
        t.record(3, "a", 0x1, "I", "e2", String::new());
        assert_eq!(t.events_for(0x1).count(), 2);
    }

    #[test]
    fn post_mortem_interleaves_components_and_dedups_addrs() {
        let mut t = Tracer::new(TraceConfig::ring());
        t.record(10, "guard", 0x100, "Busy", "GetM", "from accel".into());
        t.record(12, "dir", 0x100, "M", "Fwd", String::new());
        t.record(13, "l1_0", 0x200, "S", "Inv", String::new());
        t.flag(14, 0x100, "guarantee violated");
        t.flag(15, 0x100, "second reason");
        let pm = t.post_mortem().unwrap();
        assert!(pm.contains("guard") && pm.contains("dir"), "{pm}");
        assert!(pm.contains("guarantee violated") && pm.contains("second reason"));
        assert_eq!(pm.matches("--- trace for addr 0x100 ---").count(), 1);
        assert!(!pm.contains("0x200"), "unflagged addr not dumped");
    }

    #[test]
    fn env_config_defaults_off() {
        // XG_TRACE is not set in the test environment.
        if std::env::var_os("XG_TRACE").is_none() {
            assert_eq!(TraceConfig::from_env().level, TraceLevel::Off);
        }
    }
}

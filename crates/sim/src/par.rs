//! Conservative-window parallel execution of a single simulation.
//!
//! [`ParSim`] partitions one logical simulation into shards (see
//! [`crate::SimBuilder`]'s shard map) and executes them on a pool of
//! persistent worker threads. Time advances in *windows*: if every
//! cross-shard link needs at least `delta` cycles to deliver, then all
//! events in `[T, T + delta)` are causally independent across shards and
//! can run concurrently. Cross-shard messages produced during a window are
//! captured in per-shard outboxes and exchanged at a barrier, sorted by
//! `(arrival time, source shard, source sequence)` — a total order that
//! depends only on the partition, never on the worker count or thread
//! scheduling. Together with per-component RNG streams (forced on for
//! shards) this makes a `ParSim` run bit-identical at any worker count:
//! `workers = W` is the same simulation as `workers = 1`, just faster.
//!
//! What parallel mode does *not* promise is equality with the legacy
//! serial [`crate::Simulator`]: the single global RNG stream of a serial
//! run has no partition-independent equivalent, so the two modes are
//! distinct (both deterministic) executions of the same system.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::component::NodeId;
use crate::report::Report;
use crate::simulator::{Outbound, RunOutcome, SimBuilder, Simulator};
use crate::time::Cycle;

/// A sense-reversing spin barrier for a fixed set of participants.
///
/// Workers spin briefly and then yield, so an idle pool does not burn a
/// full core per thread while the coordinator exchanges messages.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicUsize::new(0),
        }
    }

    /// Blocks until all `n` participants arrive. Each participant passes
    /// its own `sense` flag, flipped on every crossing.
    fn wait(&self, sense: &mut usize) {
        let next = 1 - *sense;
        *sense = next;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(next, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != next {
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A parallel executor over one partitioned simulation.
///
/// Construct with [`ParSim::new`] from a fully-configured
/// [`SimBuilder`] plus a shard map; drive it with
/// [`run_with_watchdog`](ParSim::run_with_watchdog) /
/// [`run_to_quiescence`](ParSim::run_to_quiescence); collect results with
/// [`report`](ParSim::report), which merges the per-shard reports in shard
/// order (components are disjoint across shards, so the merge is a union).
pub struct ParSim<M> {
    shards: Vec<Simulator<M>>,
    shard_map: std::sync::Arc<[u32]>,
    workers: usize,
    delta: u64,
    now: Cycle,
    last_progress_at: Cycle,
    windows: u64,
    xshard_sent: u64,
    shard_events: Vec<u64>,
    shard_xshard: Vec<u64>,
    barrier_wait_ns: u64,
    hooks: Vec<Box<dyn FnMut() + Send>>,
}

impl<M: Clone + Send + 'static> ParSim<M> {
    /// Partitions `builder` according to `shard_map` (component index →
    /// shard id) and prepares a pool of `workers` threads (clamped to at
    /// least 1; extra workers beyond the shard count are not spawned).
    ///
    /// Shard assignment must keep tightly-coupled components together: the
    /// window width is the smallest min-latency over cross-shard pairs, so
    /// putting a latency-1 link across shards serializes the run into
    /// 1-cycle windows (correct, but slow).
    pub fn new(builder: SimBuilder<M>, shard_map: Vec<u32>, workers: usize) -> Self {
        let (shards, shard_map, delta) = builder.build_shards(&shard_map);
        let n_shards = shards.len();
        ParSim {
            shards,
            shard_map,
            workers: workers.max(1),
            delta,
            now: Cycle::ZERO,
            last_progress_at: Cycle::ZERO,
            windows: 0,
            xshard_sent: 0,
            shard_events: vec![0; n_shards],
            shard_xshard: vec![0; n_shards],
            barrier_wait_ns: 0,
            hooks: Vec::new(),
        }
    }

    /// Number of shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative window width in cycles.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Configured worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Latest simulated time reached by any shard.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total forward progress reported across all shards.
    pub fn progress(&self) -> u64 {
        self.shards.iter().map(Simulator::progress).sum()
    }

    /// Windows executed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-shard messages exchanged so far.
    pub fn cross_shard_sent(&self) -> u64 {
        self.xshard_sent
    }

    /// Read access to the per-shard simulators (diagnostics, tracers).
    pub fn shards(&self) -> &[Simulator<M>] {
        &self.shards
    }

    /// Mutable access to the per-shard simulators, for applying
    /// instrumentation (trace/profile config, timelines) to every shard.
    pub fn shards_mut(&mut self) -> impl Iterator<Item = &mut Simulator<M>> {
        self.shards.iter_mut()
    }

    /// Registers a hook that runs on the coordinator at every window
    /// barrier (and once before the run finishes). Used by harnesses to
    /// publish cross-shard state — e.g. a shared "done" flag — at a
    /// deterministic point instead of mid-window.
    pub fn add_barrier_hook(&mut self, hook: Box<dyn FnMut() + Send>) {
        self.hooks.push(hook);
    }

    /// The shard owning component `id` (fabricated ids map to shard 0).
    fn shard_of(&self, id: NodeId) -> usize {
        self.shard_map.get(id.index()).copied().unwrap_or(0) as usize
    }

    /// Injects a message as if `from` had sent it to `to`; routed and
    /// enqueued on `to`'s shard (the latency draw charges that shard's
    /// copy of the sender's stream, which is deterministic for a fixed
    /// partition).
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        let dst = self.shard_of(to);
        self.shards[dst].post(from, to, msg);
    }

    /// Schedules a wake-up for `target` on its owning shard.
    pub fn post_wake(&mut self, target: NodeId, delay: u64, token: u64) {
        let dst = self.shard_of(target);
        self.shards[dst].post_wake(target, delay, token);
    }

    /// Downcasts a registered component for inspection.
    pub fn get<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.shards[self.shard_of(id)].get(id)
    }

    /// Downcasts a registered component, mutably.
    pub fn get_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        let shard = self.shard_of(id);
        self.shards[shard].get_mut(id)
    }

    /// Runs until every shard drains or `max_cycles` elapse.
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> RunOutcome {
        self.run(max_cycles, None)
    }

    /// Runs with a progress watchdog, mirroring
    /// [`Simulator::run_with_watchdog`] at window granularity: the run
    /// stops (stalled) when the global event horizon gets more than
    /// `stall_bound` cycles past the last window in which any component
    /// reported progress.
    pub fn run_with_watchdog(&mut self, max_cycles: u64, stall_bound: u64) -> RunOutcome {
        self.run(max_cycles, Some(stall_bound))
    }

    fn run(&mut self, max_cycles: u64, stall_bound: Option<u64>) -> RunOutcome {
        let deadline = self.now + max_cycles;
        let n_shards = self.shards.len();
        let workers = self.workers.min(n_shards).max(1);
        let delta = self.delta;
        let profiling = self.shards.iter().any(|s| s.profiler().enabled());

        let barrier = SpinBarrier::new(workers);
        // Window end published by the coordinator; `u64::MAX` means stop.
        let window_end = AtomicU64::new(0);
        let events: Vec<AtomicU64> = (0..n_shards).map(|_| AtomicU64::new(0)).collect();
        let wait_ns = AtomicU64::new(0);

        let mut shards = std::mem::take(&mut self.shards);
        let cells: Vec<Mutex<&mut Simulator<M>>> = shards.iter_mut().map(Mutex::new).collect();

        let mut outcome = std::thread::scope(|scope| {
            for w in 1..workers {
                let cells = &cells;
                let barrier = &barrier;
                let window_end = &window_end;
                let events = &events;
                let wait_ns = &wait_ns;
                scope.spawn(move || {
                    let mut sense = 0usize;
                    loop {
                        let t0 = profiling.then(Instant::now);
                        barrier.wait(&mut sense);
                        if let Some(t0) = t0 {
                            wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        let end = window_end.load(Ordering::Acquire);
                        if end == u64::MAX {
                            break;
                        }
                        let end = Cycle::new(end);
                        for s in (w..cells.len()).step_by(workers) {
                            let mut shard = cells[s].lock().expect("shard lock poisoned");
                            let n = shard.run_window(end);
                            events[s].fetch_add(n, Ordering::Relaxed);
                        }
                        let t1 = profiling.then(Instant::now);
                        barrier.wait(&mut sense);
                        if let Some(t1) = t1 {
                            wait_ns.fetch_add(t1.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                    }
                });
            }

            // The coordinator doubles as worker 0. Between barrier 2 and
            // the next barrier 1 the spawned workers are parked, so the
            // coordinator has the shards to itself (the locks never
            // contend; they exist to move `&mut Simulator` across the
            // thread boundary safely).
            let mut sense = 0usize;
            loop {
                let head = cells
                    .iter()
                    .filter_map(|c| c.lock().expect("shard lock poisoned").peek_time())
                    .min();
                let stop = |outcome: RunOutcome| {
                    window_end.store(u64::MAX, Ordering::Release);
                    outcome
                };
                let Some(head) = head else {
                    let out = stop(RunOutcome {
                        quiescent: true,
                        stalled: false,
                        now: self.now,
                        events: 0,
                    });
                    barrier.wait(&mut sense);
                    break out;
                };
                if head > deadline {
                    let out = stop(RunOutcome {
                        quiescent: false,
                        stalled: false,
                        now: deadline,
                        events: 0,
                    });
                    barrier.wait(&mut sense);
                    break out;
                }
                if let Some(bound) = stall_bound {
                    if head.saturating_since(self.last_progress_at) > bound {
                        let out = stop(RunOutcome {
                            quiescent: false,
                            stalled: true,
                            now: self.now,
                            events: 0,
                        });
                        barrier.wait(&mut sense);
                        break out;
                    }
                }
                // Events at the deadline itself still run, matching the
                // serial kernel's `head_time > deadline` cut.
                let end = (head + delta).min(deadline + 1);
                let progress_before: u64 = cells
                    .iter()
                    .map(|c| c.lock().expect("shard lock poisoned").progress())
                    .sum();
                window_end.store(end.as_u64(), Ordering::Release);
                barrier.wait(&mut sense);
                for s in (0..cells.len()).step_by(workers) {
                    let mut shard = cells[s].lock().expect("shard lock poisoned");
                    let n = shard.run_window(end);
                    events[s].fetch_add(n, Ordering::Relaxed);
                }
                barrier.wait(&mut sense);
                // Exclusive again: exchange cross-shard messages, run
                // barrier hooks, account progress.
                exchange(
                    &cells,
                    &self.shard_map,
                    &mut self.xshard_sent,
                    &mut self.shard_xshard,
                );
                self.windows += 1;
                for hook in &mut self.hooks {
                    hook();
                }
                self.now = cells
                    .iter()
                    .map(|c| c.lock().expect("shard lock poisoned").now())
                    .max()
                    .unwrap_or(self.now);
                let progress_after: u64 = cells
                    .iter()
                    .map(|c| c.lock().expect("shard lock poisoned").progress())
                    .sum();
                if progress_after > progress_before {
                    self.last_progress_at = self.now;
                }
            }
        });
        drop(cells);
        self.shards = shards;
        for hook in &mut self.hooks {
            hook();
        }
        let mut total = 0;
        for (s, e) in events.iter().enumerate() {
            let e = e.load(Ordering::Relaxed);
            self.shard_events[s] += e;
            total += e;
        }
        outcome.events = total;
        self.barrier_wait_ns += wait_ns.load(Ordering::Relaxed);
        outcome
    }

    /// Merges the per-shard reports in shard order. Components are
    /// disjoint across shards, so scalar keys union cleanly; `sim.*` and
    /// `sched.*` counters sum. When profiling is enabled, `par.*` counters
    /// describing the partition ride along (all deterministic except
    /// `par.barrier_wait_ns`, which is host wall-clock).
    pub fn report(&self) -> Report {
        let shard_reports: Vec<Report> = self.shards.iter().map(Simulator::report).collect();
        let mut out = Report::merge_shards(&shard_reports);
        if self.shards.iter().any(|s| s.profiler().enabled()) {
            out.profile_set("par.shards", self.shards.len() as u64);
            out.profile_set("par.delta", self.delta);
            out.profile_set("par.windows", self.windows);
            out.profile_set("par.xshard.sent", self.xshard_sent);
            for (s, (&ev, &xs)) in self.shard_events.iter().zip(&self.shard_xshard).enumerate() {
                out.profile_set(format!("par.shard{s}.events"), ev);
                out.profile_set(format!("par.shard{s}.xshard.sent"), xs);
            }
            out.profile_set("par.barrier_wait_ns", self.barrier_wait_ns);
        }
        out
    }

    /// Concatenated post-mortem dumps from every shard that has flagged
    /// addresses, or `None` when nothing was flagged anywhere.
    pub fn post_mortem(&self) -> Option<String> {
        let parts: Vec<String> = self
            .shards
            .iter()
            .filter_map(Simulator::post_mortem)
            .collect();
        if parts.is_empty() {
            None
        } else {
            Some(parts.join("\n"))
        }
    }
}

/// Drains every shard's outbox and re-enqueues the messages on their
/// owning shards in `(arrival time, source shard, source sequence)` order
/// — a total order independent of worker count.
fn exchange<M: Clone + 'static>(
    cells: &[Mutex<&mut Simulator<M>>],
    shard_map: &[u32],
    xshard_sent: &mut u64,
    shard_xshard: &mut [u64],
) {
    let mut inbound: Vec<(u32, u32, Outbound<M>)> = Vec::new();
    for (s, cell) in cells.iter().enumerate() {
        let mut shard = cell.lock().expect("shard lock poisoned");
        for (seq, out) in shard.take_outbox().into_iter().enumerate() {
            inbound.push((s as u32, seq as u32, out));
        }
    }
    inbound.sort_by_key(|a| (a.2.time, a.0, a.1));
    for (src, _seq, out) in inbound {
        *xshard_sent += 1;
        shard_xshard[src as usize] += 1;
        let dst = shard_map[out.to.index()] as usize;
        cells[dst]
            .lock()
            .expect("shard lock poisoned")
            .push_inbound(out.time, out.from, out.to, out.msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;
    use crate::link::Link;
    use crate::simulator::Ctx;
    use rand::Rng;

    /// Records every delivery (time, from, payload).
    struct Recorder {
        name: &'static str,
        seen: Vec<(u64, u64)>,
    }
    impl Component<u64> for Recorder {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.seen.push((ctx.now().as_u64(), msg));
            ctx.note_progress();
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Sends `count` tagged randomized payloads to `peer` when poked.
    struct Source {
        name: &'static str,
        peer: NodeId,
        count: u64,
        tag: u64,
    }
    impl Component<u64> for Source {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, _from: NodeId, _msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.burst(ctx);
        }
        fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_, u64>) {
            self.burst(ctx);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }
    impl Source {
        fn burst(&mut self, ctx: &mut Ctx<'_, u64>) {
            for i in 0..self.count {
                let jitter: u64 = ctx.rng().gen_range(0..8);
                ctx.send(self.peer, self.tag * 1_000_000 + i * 100 + jitter);
            }
        }
    }

    /// Two sources on their own shards feeding one recorder shard.
    fn fan_in_builder(seed: u64) -> (SimBuilder<u64>, Vec<u32>, NodeId, [NodeId; 2]) {
        let mut b = SimBuilder::new(seed);
        let rec = b.add(Box::new(Recorder {
            name: "rec",
            seen: Vec::new(),
        }));
        let s0 = b.add(Box::new(Source {
            name: "src0",
            peer: rec,
            count: 24,
            tag: 1,
        }));
        let s1 = b.add(Box::new(Source {
            name: "src1",
            peer: rec,
            count: 24,
            tag: 2,
        }));
        b.link(s0, rec, Link::unordered(3, 9));
        b.link(s1, rec, Link::unordered(3, 9));
        b.default_link(Link::unordered(3, 9));
        (b, vec![0, 1, 2], rec, [s0, s1])
    }

    fn run_fan_in(seed: u64, workers: usize) -> (Vec<(u64, u64)>, RunOutcome, String) {
        let (b, map, rec, sources) = fan_in_builder(seed);
        let mut par = ParSim::new(b, map, workers);
        for src in sources {
            par.post_wake(src, 1, 0);
        }
        let out = par.run_with_watchdog(100_000, 10_000);
        let seen = par.get::<Recorder>(rec).unwrap().seen.clone();
        (seen, out, par.report().to_json())
    }

    #[test]
    fn delta_is_min_cross_shard_latency() {
        let (b, map, _, _) = fan_in_builder(1);
        let par = ParSim::new(b, map, 1);
        assert_eq!(par.delta(), 3);
        assert_eq!(par.shard_count(), 3);
    }

    #[test]
    fn single_shard_map_keeps_delta_at_one() {
        let mut b = SimBuilder::new(1);
        b.add(Box::new(Recorder {
            name: "only",
            seen: Vec::new(),
        }));
        let par = ParSim::new(b, vec![0], 4);
        assert_eq!(par.shard_count(), 1);
        assert_eq!(par.delta(), 1);
    }

    #[test]
    fn fan_in_runs_to_quiescence_and_counts_cross_shard_traffic() {
        let (seen, out, _) = run_fan_in(7, 1);
        assert!(out.quiescent);
        assert!(!out.stalled);
        assert_eq!(seen.len(), 48, "every cross-shard message arrives");
        // 48 deliveries + 2 wakes.
        assert_eq!(out.events, 50);
    }

    #[test]
    fn worker_count_never_changes_the_run() {
        let base = run_fan_in(42, 1);
        for workers in [2, 3, 8] {
            let other = run_fan_in(42, workers);
            assert_eq!(base.0, other.0, "deliveries differ at workers={workers}");
            assert_eq!(base.1, other.1, "outcome differs at workers={workers}");
            assert_eq!(base.2, other.2, "report differs at workers={workers}");
        }
    }

    #[test]
    fn cross_shard_messages_respect_link_latency() {
        let (seen, _, _) = run_fan_in(3, 2);
        // Sources wake at cycle 1; min link latency is 3.
        assert!(seen.iter().all(|&(t, _)| t >= 4), "{seen:?}");
    }

    #[test]
    fn deadline_cuts_the_run_exactly_like_serial() {
        let (b, map, _rec, [s0, _]) = fan_in_builder(5);
        let mut par = ParSim::new(b, map, 2);
        par.post_wake(s0, 5_000, 0);
        let out = par.run_to_quiescence(100);
        assert!(!out.quiescent);
        assert!(!out.stalled);
        assert_eq!(out.now, Cycle::ZERO + 100);
        let out = par.run_to_quiescence(100_000);
        assert!(out.quiescent);
    }

    #[test]
    fn watchdog_detects_cross_shard_livelock() {
        /// Ping-pongs every delivery back without progress.
        struct Pong {
            name: &'static str,
        }
        impl Component<u64> for Pong {
            fn name(&self) -> &str {
                self.name
            }
            fn handle(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
                ctx.send(from, msg);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut b = SimBuilder::new(9);
        let a = b.add(Box::new(Pong { name: "pa" }));
        let c = b.add(Box::new(Pong { name: "pc" }));
        b.link_bidi(a, c, Link::unordered(2, 5));
        let mut par = ParSim::new(b, vec![0, 1], 2);
        par.post(a, c, 1);
        let out = par.run_with_watchdog(1_000_000, 500);
        assert!(out.stalled);
        assert!(!out.quiescent);
    }

    #[test]
    fn barrier_hooks_fire_each_window() {
        use std::sync::atomic::AtomicU64 as Counter;
        use std::sync::Arc;
        let (b, map, _, [s0, s1]) = fan_in_builder(11);
        let mut par = ParSim::new(b, map, 1);
        let fired = Arc::new(Counter::new(0));
        let probe = Arc::clone(&fired);
        par.add_barrier_hook(Box::new(move || {
            probe.fetch_add(1, Ordering::Relaxed);
        }));
        par.post_wake(s0, 1, 0);
        par.post_wake(s1, 1, 0);
        assert!(par.run_to_quiescence(100_000).quiescent);
        // One firing per window plus the end-of-run flush.
        assert_eq!(fired.load(Ordering::Relaxed), par.windows() + 1);
    }

    #[test]
    fn exchange_orders_by_time_then_shard_then_sequence() {
        // Model test (thread-free): the exchange sort must order equal-time
        // messages by source shard, then by per-shard sequence.
        let mut items = [
            (1u32, 0u32, 10u64),
            (0, 1, 10),
            (0, 0, 10),
            (2, 0, 9),
            (1, 1, 10),
        ];
        items.sort_by_key(|a| (a.2, a.0, a.1));
        assert_eq!(
            items,
            [(2, 0, 9), (0, 0, 10), (0, 1, 10), (1, 0, 10), (1, 1, 10)]
        );
    }

    #[test]
    fn report_merges_disjoint_components_and_hides_par_keys_unprofiled() {
        let (_, _, json) = run_fan_in(13, 2);
        assert!(
            !json.contains("par."),
            "unprofiled report stays pure: {json}"
        );
    }

    #[test]
    fn profiled_report_carries_partition_counters() {
        let (b, map, _, [s0, s1]) = fan_in_builder(21);
        let mut par = ParSim::new(b, map, 2);
        for shard in par.shards_mut() {
            shard
                .profiler_mut()
                .set_config(xg_prof::ProfileConfig::on());
        }
        par.post_wake(s0, 1, 0);
        par.post_wake(s1, 1, 0);
        assert!(par.run_to_quiescence(100_000).quiescent);
        let report = par.report();
        assert_eq!(report.profile_get("par.shards"), 3);
        assert_eq!(report.profile_get("par.delta"), 3);
        assert_eq!(report.profile_get("par.windows"), par.windows());
        assert_eq!(report.profile_get("par.xshard.sent"), 48);
        assert_eq!(
            report.profile_get("par.shard1.xshard.sent")
                + report.profile_get("par.shard2.xshard.sent"),
            48
        );
        let events: u64 = (0..3)
            .map(|s| report.profile_get(&format!("par.shard{s}.events")))
            .sum();
        assert_eq!(events, 50);
    }
}

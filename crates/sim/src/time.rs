//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles since simulation start.
///
/// `Cycle` is a newtype over `u64` so that cycle counts cannot be confused
/// with other integer quantities (message counts, addresses, ...).
///
/// ```rust
/// use xg_sim::Cycle;
/// let t = Cycle::ZERO + 10;
/// assert_eq!(t.as_u64(), 10);
/// assert_eq!((t + 5) - t, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a `Cycle` from a raw cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction, returning the number of cycles between two
    /// points in time (zero if `earlier` is actually later).
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Cycles elapsed between two points in time.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "cycle subtraction underflow");
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Cycle::new(100);
        assert_eq!(t + 20, Cycle::new(120));
        assert_eq!(Cycle::new(120) - t, 20);
        assert_eq!(t.saturating_since(Cycle::new(150)), 0);
        assert_eq!(Cycle::new(150).saturating_since(t), 50);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert_eq!(Cycle::new(7).to_string(), "7");
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics_in_debug() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }
}

//! Internal event plumbing: the payload the scheduler carries.
//!
//! Ordering lives in [`crate::queue::CalendarQueue`], which stamps every
//! push with a global sequence number and pops in ascending `(time, seq)`
//! order — the payload itself carries no ordering state.
//!
//! Message payloads are *not* carried inline: a queued delivery holds a
//! [`SlabId`] into the simulator's message slab (see [`crate::slab`]).
//! This keeps the scheduled event small and constant-sized regardless of
//! the protocol's message type, so the wheel slots move a few dozen bytes
//! per event instead of a max-variant-sized protocol enum — and timer
//! wake-ups (the overwhelming majority of traffic in a polling workload)
//! never pay for a payload they don't have.

use crate::component::NodeId;
use crate::slab::SlabId;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// Deliver the slab-parked message `msg` (sent by `from`) to the
    /// target component.
    Deliver { from: NodeId, msg: SlabId },
    /// Invoke the target component's `wake` with `token`.
    Wake { token: u64 },
}

/// A scheduled event: which component fires, and what it receives.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub target: NodeId,
    pub kind: EventKind,
}

//! Internal event queue plumbing.

use std::cmp::Ordering;

use crate::component::NodeId;
use crate::time::Cycle;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` (sent by `from`) to the target component.
    Deliver { from: NodeId, msg: M },
    /// Invoke the target component's `wake` with `token`.
    Wake { token: u64 },
}

/// A scheduled event. Ordered by `(time, seq)`; `seq` is a global counter so
/// that simultaneous events fire in a deterministic (insertion) order.
#[derive(Debug)]
pub(crate) struct Event<M> {
    pub time: Cycle,
    pub seq: u64,
    pub target: NodeId,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    fn ev(time: u64, seq: u64) -> Event<()> {
        Event {
            time: Cycle::new(time),
            seq,
            target: NodeId(0),
            kind: EventKind::Wake { token: 0 },
        }
    }

    #[test]
    fn heap_pops_earliest_first() {
        let mut h = BinaryHeap::new();
        h.push(ev(5, 0));
        h.push(ev(1, 1));
        h.push(ev(5, 2));
        h.push(ev(0, 3));
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| h.pop())
            .map(|e| (e.time.as_u64(), e.seq))
            .collect();
        assert_eq!(order, vec![(0, 3), (1, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn ties_break_by_sequence() {
        let mut h = BinaryHeap::new();
        h.push(ev(3, 10));
        h.push(ev(3, 2));
        h.push(ev(3, 7));
        let order: Vec<u64> = std::iter::from_fn(|| h.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![2, 7, 10]);
    }
}

//! The component trait implemented by every simulated controller.

use std::any::Any;
use std::fmt;

use crate::report::Report;
use crate::simulator::Ctx;

/// Identity of a component within a simulation.
///
/// `NodeId`s are handed out by [`crate::SimBuilder::add`] in registration
/// order and are used as message source/destination addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NodeId` from a raw index.
    ///
    /// Intended for tests and for tables that are indexed by node; sending to
    /// a fabricated id that was never registered causes a panic at delivery.
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A simulated hardware component (cache controller, directory, core, ...).
///
/// Components are single-threaded state machines: the simulator calls
/// [`handle`](Component::handle) for every message delivered to the
/// component and [`wake`](Component::wake) for every timer the component
/// armed. All outgoing effects (sends, timers) go through the [`Ctx`].
///
/// The `as_any` methods exist so that a test harness can downcast a
/// registered component back to its concrete type after a run to inspect
/// final state; they are mechanical:
///
/// ```rust,ignore
/// fn as_any(&self) -> &dyn std::any::Any { self }
/// fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// ```
///
/// Components must be [`Send`]: a built [`crate::Simulator`] is moved into
/// worker threads by the parallel sweep executor (`xg_harness::sweep`), so a
/// component may not hold thread-bound state like `Rc`. Each simulation is
/// still single-threaded — no component needs `Sync` or internal locking
/// beyond what it shares with other components in the *same* simulation.
pub trait Component<M>: Send {
    /// Short human-readable name used in reports and error messages.
    fn name(&self) -> &str;

    /// Handles a message delivered from `from`.
    fn handle(&mut self, from: NodeId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Handles a timer wake-up previously armed with [`Ctx::wake_in`]. The
    /// `token` is the value the component passed when arming the timer.
    fn wake(&mut self, token: u64, ctx: &mut Ctx<'_, M>) {
        let _ = (token, ctx);
    }

    /// Contributes statistics and coverage data to a post-run report.
    fn report(&self, out: &mut Report) {
        let _ = out;
    }

    /// Upcast for downcasting in harnesses.
    fn as_any(&self) -> &dyn Any;
    /// Upcast for mutable downcasting in harnesses.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

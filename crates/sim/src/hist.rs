//! Log₂-bucketed latency histograms.
//!
//! Protocol latencies in this simulator span five orders of magnitude (an L1
//! hit is a handful of cycles, a guard inv-timeout recovery is tens of
//! thousands), so fixed-width buckets are useless. A [`Histogram`] buckets
//! values by their bit length: bucket 0 holds exactly the value 0, and bucket
//! `b ≥ 1` holds `[2^(b-1), 2^b)`. Buckets are stored sparsely, so an idle
//! counter costs nothing, and two histograms from different runs or different
//! controllers [`merge`](Histogram::merge) losslessly — the property the
//! report pipeline relies on when it folds per-component stats into one
//! run-level [`crate::Report`].

use std::collections::BTreeMap;
use std::fmt;

/// A mergeable histogram with logarithmic (power-of-two) buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse bucket population, keyed by [`Histogram::bucket_index`].
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket a value falls into: 0 for 0, else its bit length
    /// (so bucket `b ≥ 1` spans `[2^(b-1), 2^b)`; bucket 64 ends at
    /// `u64::MAX`).
    pub fn bucket_index(value: u64) -> u32 {
        64 - value.leading_zeros()
    }

    /// The `[low, high]` inclusive value range of bucket `index`.
    pub fn bucket_bounds(index: u32) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            b => (1u64 << (b - 1), (1u64 << b) - 1),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket where the cumulative count crosses `q * count`, clamped to the
    /// observed `[min, max]`. Exact for the extremes, within one power of two
    /// elsewhere — plenty for latency reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let (_, high) = Self::bucket_bounds(idx);
                return high.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Iterates `(bucket_index, population)` over non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(&i, &n)| (i, n))
    }

    /// Reassembles a histogram from serialized parts, validating internal
    /// consistency (used by [`crate::Report::from_json`]).
    pub fn from_parts(
        buckets: BTreeMap<u32, u64>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<Histogram, &'static str> {
        if buckets.keys().any(|&i| i > 64) {
            return Err("bucket index out of range");
        }
        let total: u64 = buckets.values().sum();
        if total != count {
            return Err("bucket populations do not sum to count");
        }
        if count == 0 {
            if min != 0 || max != 0 || sum != 0 {
                return Err("empty histogram with nonzero stats");
            }
        } else {
            if min > max {
                return Err("min exceeds max");
            }
            let lowest = *buckets.keys().next().expect("count > 0 implies a bucket");
            let highest = *buckets
                .keys()
                .next_back()
                .expect("count > 0 implies a bucket");
            if Self::bucket_index(min) != lowest || Self::bucket_index(max) != highest {
                return Err("min/max inconsistent with buckets");
            }
        }
        Ok(Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        })
    }

    /// Folds another histogram into this one. Merging is lossless: the
    /// result is identical to having recorded both observation streams into
    /// a single histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (idx, n) in other.buckets() {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} p50={} p99={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for b in 0..=64u32 {
            let (low, high) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_index(low), b, "low bound of {b}");
            assert_eq!(Histogram::bucket_index(high), b, "high bound of {b}");
        }
    }

    #[test]
    fn records_track_extremes_and_mean() {
        let mut h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), (0, 0, 0, 0));
        for v in [5, 1, 9, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 9);
        assert_eq!(h.mean(), 4);
    }

    #[test]
    fn extreme_values_zero_and_max() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates, does not wrap");
        let got: Vec<_> = h.buckets().collect();
        assert_eq!(got, vec![(0, 1), (64, 1)]);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // True median is 500; the log bucket answer may be up to its bucket's
        // upper bound (511).
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [0, 1, 2, 77, 4096] {
            a.record(v);
            whole.record(v);
        }
        for v in [3, 900, u64::MAX] {
            b.record(v);
            whole.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
        // Merge in the other order too (commutative).
        let mut merged_rev = b.clone();
        merged_rev.merge(&a);
        assert_eq!(merged_rev, whole);
    }

    #[test]
    fn merge_handles_empty_and_disjoint() {
        let mut empty = Histogram::new();
        let mut low = Histogram::new();
        low.record(1);
        low.record(2);
        let mut high = Histogram::new();
        high.record(1 << 40);

        // Empty is an identity on both sides.
        let mut m = empty.clone();
        m.merge(&low);
        assert_eq!(m, low);
        empty.merge(&Histogram::new());
        assert!(empty.is_empty());

        // Disjoint bucket ranges union cleanly.
        let mut d = low.clone();
        d.merge(&high);
        assert_eq!(d.count(), 3);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 1 << 40);
        assert_eq!(d.buckets().count(), 3);
    }

    #[test]
    fn display_is_compact() {
        let mut h = Histogram::new();
        h.record(10);
        let s = h.to_string();
        assert!(s.contains("n=1") && s.contains("mean=10"), "{s}");
    }
}

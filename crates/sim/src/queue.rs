//! The kernel's event scheduler: a calendar queue (timing wheel with an
//! overflow heap) with a guaranteed `(time, seq)` pop order.
//!
//! # Why not a `BinaryHeap`?
//!
//! A binary heap pays `O(log n)` *moves of the whole event* on every push
//! and pop. Simulation events carry their message payload inline (~100
//! bytes for the coherence `Message` enum), so at the queue depths a stress
//! sweep reaches (hundreds of events) each heap operation memcpy's a
//! kilobyte of event bodies across cache lines. The calendar queue moves
//! each event exactly twice — once into its slot, once out — and finds the
//! next event with a bitmap scan instead of a pointer chase.
//!
//! # Structure
//!
//! * A **wheel** of [`WHEEL_SLOTS`] buckets, one simulated cycle each,
//!   covering the sliding window `[cursor, cursor + WHEEL_SLOTS)`. A slot
//!   is an intrusive FIFO list of nodes in one shared **arena** with a
//!   LIFO free list: all live events sit in a single contiguous allocation
//!   sized by the queue's high-water mark, steady-state pushes allocate
//!   nothing, and a push or pop touches exactly one recycled (cache-hot)
//!   node plus the slot's head/tail word.
//! * An **occupancy bitmap** (one bit per slot) so finding the next
//!   non-empty slot is a word scan, not a slot-by-slot walk.
//! * An **overflow heap** for events scheduled at or beyond the window
//!   horizon (invalidation timeouts, delay-spike victims). Overflow events
//!   **migrate** into the wheel as the window slides over them.
//!
//! # Determinism
//!
//! Pop order is exactly ascending `(time, seq)` where `seq` is the global
//! push counter — byte-for-byte the order the previous `BinaryHeap`
//! scheduler produced. The argument, re-checked by the oracle property
//! tests in `tests/queue_props.rs`:
//!
//! 1. Each slot holds events of exactly one absolute time per window pass
//!    (two times that share a slot differ by `WHEEL_SLOTS` and cannot both
//!    be inside the window).
//! 2. Within a slot, events append in `seq` order: direct pushes arrive in
//!    global `seq` order, and migration (a) drains the overflow heap in
//!    `(time, seq)` order and (b) runs *before* the cursor advance that
//!    makes the slot's time pushable, so migrated events always precede
//!    any later direct push to the same slot.
//! 3. A pop takes the front of the lowest-time occupied slot, and the
//!    overflow heap only ever holds events at or beyond the window horizon
//!    — so the popped event is the global `(time, seq)` minimum.
//!
//! Pushing a time *before* the cursor (impossible from the simulator,
//! whose effects are always strictly future, but legal for an arbitrary
//! client) triggers a **rebase**: every live event is spilled into the
//! overflow heap and re-migrated, restoring the invariants at `O(n log n)`
//! cost for that one operation.

use std::collections::BinaryHeap;

use crate::time::Cycle;

/// Number of one-cycle wheel slots. Power of two so slot lookup is a mask.
///
/// Sized to cover every latency the simulated links commonly draw (link
/// ranges are tens of cycles, delay spikes hundreds to a few thousand) so
/// that only genuinely far-future events — invalidation timeouts, very
/// large spikes — take the overflow-heap detour.
pub const WHEEL_SLOTS: usize = 4096;
const WHEEL_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
const WORDS: usize = WHEEL_SLOTS / 64;

/// One scheduled entry: absolute time, global push sequence, payload.
#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the std max-heap pops earliest-(time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic scheduler-operation counters, for the perf trajectory
/// (`BENCH_sweep.json` gates these — they depend only on the simulated
/// workload, never on the host machine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events pushed, total.
    pub pushes: u64,
    /// Events popped, total.
    pub pops: u64,
    /// Pushes that landed beyond the wheel horizon (overflow heap).
    pub overflow_pushes: u64,
    /// Events migrated from the overflow heap into the wheel.
    pub migrated: u64,
    /// Full rebases caused by a push before the cursor (never happens on
    /// simulator workloads; counted so the gate would notice if it did).
    pub rebases: u64,
}

/// Sentinel "no node" index for the intrusive slot lists.
const NIL: u32 = u32::MAX;

/// An arena node: one scheduled wheel event plus its intrusive FIFO link.
/// `item` is `None` only while the node sits on the free list.
#[derive(Debug)]
struct Node<T> {
    time: u64,
    seq: u64,
    /// Next node in this slot's FIFO, or (on the free list) the next free
    /// node; `NIL` terminates both.
    next: u32,
    item: Option<T>,
}

/// A calendar queue over payload `T`. See the [module docs](self) for the
/// design and determinism argument.
pub struct CalendarQueue<T> {
    /// First queued node of slot `t & WHEEL_MASK`'s FIFO (valid only when
    /// the slot's occupancy bit is set).
    heads: Box<[u32]>,
    /// Last queued node of the slot's FIFO (valid only when occupied).
    tails: Box<[u32]>,
    /// Node storage shared by every slot; grows to the wheel's high-water
    /// mark and is recycled through `free_head` thereafter.
    arena: Vec<Node<T>>,
    /// Head of the LIFO free list threaded through `Node::next`.
    free_head: u32,
    /// Occupancy bitmap over the wheel slots.
    occupied: [u64; WORDS],
    /// Events in the wheel.
    wheel_len: usize,
    /// Lower edge of the wheel window (time of the last pop, or of the
    /// next event after a jump). All wheel events are in
    /// `[cursor, cursor + WHEEL_SLOTS)`.
    cursor: u64,
    /// Events at or beyond the window horizon, min-(time, seq) first.
    overflow: BinaryHeap<Entry<T>>,
    /// Global push counter (the FIFO tie-break).
    seq: u64,
    /// Memoized earliest scheduled time, if known. Pushes keep it exact
    /// (the minimum can only decrease), pops invalidate it — so the
    /// peek-then-pop cycle the simulator's run loop drives costs one
    /// bitmap scan per event, not two.
    cached_next: Option<u64>,
    stats: QueueStats,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with its window starting at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            heads: vec![NIL; WHEEL_SLOTS].into_boxed_slice(),
            tails: vec![NIL; WHEEL_SLOTS].into_boxed_slice(),
            arena: Vec::new(),
            free_head: NIL,
            occupied: [0; WORDS],
            wheel_len: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            cached_next: None,
            stats: QueueStats::default(),
        }
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scheduler-operation counters so far.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedules `item` at `time`, after everything already scheduled at
    /// the same time (FIFO tie-break).
    pub fn push(&mut self, time: Cycle, item: T) {
        let time = time.as_u64();
        let seq = self.seq;
        self.seq += 1;
        self.stats.pushes += 1;
        // The minimum can only decrease on a push, so the memo stays
        // exact; an empty queue's new minimum is this event.
        match self.cached_next {
            Some(t) if time < t => self.cached_next = Some(time),
            None if self.is_empty() => self.cached_next = Some(time),
            _ => {}
        }
        let entry = Entry { time, seq, item };
        if time < self.cursor {
            // Push into the past: spill the wheel and restart the window
            // at the new minimum. Cold by construction (the simulator only
            // schedules strictly-future events).
            self.rebase(entry);
        } else if time < self.cursor + WHEEL_SLOTS as u64 {
            self.slot_push(entry);
        } else {
            self.stats.overflow_pushes += 1;
            self.overflow.push(entry);
        }
    }

    /// Time of the earliest scheduled event, if any.
    pub fn peek_time(&mut self) -> Option<Cycle> {
        if let Some(t) = self.cached_next {
            return Some(Cycle::new(t));
        }
        self.migrate();
        let next = if self.wheel_len > 0 {
            Some(self.next_wheel_time())
        } else {
            self.overflow.peek().map(|e| e.time)
        };
        self.cached_next = next;
        next.map(Cycle::new)
    }

    /// Removes and returns the earliest scheduled event (lowest time,
    /// lowest push sequence among ties).
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.migrate();
        if self.wheel_len == 0 {
            // Jump the window to the next far-future event.
            self.cursor = self.overflow.peek()?.time;
            self.migrate();
        }
        let time = match self.cached_next.take() {
            Some(t) => t,
            None => self.next_wheel_time(),
        };
        debug_assert_eq!(time, self.next_wheel_time(), "stale next-time memo");
        if time != self.cursor {
            // The window's lower edge advanced: newly covered overflow
            // events must land in their slots before this pop returns, so
            // that the caller's subsequent pushes queue up behind them.
            self.cursor = time;
            self.migrate();
        }
        let idx = (time & WHEEL_MASK) as usize;
        let head = self.heads[idx];
        debug_assert_ne!(head, NIL, "occupied slot has no head");
        let node = &mut self.arena[head as usize];
        debug_assert_eq!(node.time, time, "slot held a foreign time");
        let item = node.item.take().expect("live node has an item");
        let next = node.next;
        // Recycle the node LIFO: the hottest node is reused first.
        node.next = self.free_head;
        self.free_head = head;
        self.heads[idx] = next;
        if next == NIL {
            self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        }
        self.wheel_len -= 1;
        self.stats.pops += 1;
        self.cached_next = None;
        Some((Cycle::new(time), item))
    }

    /// Appends `entry` to its slot's FIFO (must be inside the window).
    fn slot_push(&mut self, entry: Entry<T>) {
        let Entry { time, seq, item } = entry;
        let idx = (time & WHEEL_MASK) as usize;
        // Claim a node from the free list, growing the arena only when the
        // live count exceeds its high-water mark.
        let node = if self.free_head != NIL {
            let i = self.free_head;
            let slot = &mut self.arena[i as usize];
            debug_assert!(slot.item.is_none(), "free node holds an item");
            self.free_head = slot.next;
            *slot = Node {
                time,
                seq,
                next: NIL,
                item: Some(item),
            };
            i
        } else {
            let i = u32::try_from(self.arena.len()).expect("queue arena exhausted u32 ids");
            assert_ne!(i, NIL, "queue arena exhausted u32 ids");
            self.arena.push(Node {
                time,
                seq,
                next: NIL,
                item: Some(item),
            });
            i
        };
        let (word, bit) = (idx / 64, 1u64 << (idx % 64));
        if self.occupied[word] & bit != 0 {
            let tail = self.tails[idx] as usize;
            debug_assert!(
                self.arena[tail].time == time && self.arena[tail].seq < seq,
                "slot order violated"
            );
            self.arena[tail].next = node;
        } else {
            self.occupied[word] |= bit;
            self.heads[idx] = node;
        }
        self.tails[idx] = node;
        self.wheel_len += 1;
    }

    /// Moves every overflow event the window now covers into its slot, in
    /// `(time, seq)` order.
    fn migrate(&mut self) {
        let horizon = self.cursor + WHEEL_SLOTS as u64;
        while self.overflow.peek().is_some_and(|e| e.time < horizon) {
            let entry = self.overflow.pop().expect("peeked");
            self.stats.migrated += 1;
            self.slot_push(entry);
        }
    }

    /// Restores the invariants after a push before the cursor: spill all
    /// wheel events (and the new entry) into the overflow heap, restart
    /// the window at the new minimum, and re-migrate.
    fn rebase(&mut self, entry: Entry<T>) {
        self.stats.rebases += 1;
        self.cursor = entry.time;
        self.overflow.push(entry);
        for idx in 0..WHEEL_SLOTS {
            if self.occupied[idx / 64] & (1u64 << (idx % 64)) == 0 {
                continue;
            }
            let mut i = self.heads[idx];
            while i != NIL {
                let node = &mut self.arena[i as usize];
                let item = node.item.take().expect("live node has an item");
                self.overflow.push(Entry {
                    time: node.time,
                    seq: node.seq,
                    item,
                });
                let next = node.next;
                node.next = self.free_head;
                self.free_head = i;
                i = next;
            }
        }
        self.occupied = [0; WORDS];
        self.wheel_len = 0;
        self.migrate();
    }

    /// Absolute time of the lowest-time occupied slot. Requires
    /// `wheel_len > 0`.
    fn next_wheel_time(&self) -> u64 {
        debug_assert!(self.wheel_len > 0);
        // Scan the bitmap from the cursor's residue, wrapping once; the
        // first set bit at scan distance d is the event at cursor + d
        // (slots below the cursor are always empty).
        let start = (self.cursor & WHEEL_MASK) as usize;
        let (sw, sb) = (start / 64, start % 64);
        // Bits at or after `start` in its word.
        let first = self.occupied[sw] & (u64::MAX << sb);
        if first != 0 {
            let bit = first.trailing_zeros() as u64;
            return self.cursor + (bit - sb as u64);
        }
        for step in 1..=WORDS {
            let w = (sw + step) % WORDS;
            let word = if step == WORDS {
                // Wrapped fully: bits before `start` in the start word.
                self.occupied[sw] & !(u64::MAX << sb)
            } else {
                self.occupied[w]
            };
            if word != 0 {
                let bit = word.trailing_zeros() as u64;
                let slot = ((w % WORDS) * 64) as u64 + bit;
                let dist = (slot + WHEEL_SLOTS as u64 - (self.cursor & WHEEL_MASK)) & WHEEL_MASK;
                return self.cursor + dist;
            }
        }
        unreachable!("wheel_len > 0 but no occupied slot");
    }
}

impl<T> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len())
            .field("cursor", &self.cursor)
            .field("wheel_len", &self.wheel_len)
            .field("overflow_len", &self.overflow.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u32)> {
        std::iter::from_fn(|| q.pop())
            .map(|(t, v)| (t.as_u64(), v))
            .collect()
    }

    #[test]
    fn pops_earliest_first() {
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(5), 0);
        q.push(Cycle::new(1), 1);
        q.push(Cycle::new(5), 2);
        q.push(Cycle::new(0), 3);
        assert_eq!(drain(&mut q), vec![(0, 3), (1, 1), (5, 0), (5, 2)]);
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = CalendarQueue::new();
        for v in [10, 2, 7] {
            q.push(Cycle::new(3), v);
        }
        assert_eq!(drain(&mut q), vec![(3, 10), (3, 2), (3, 7)]);
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_migrate_back() {
        let mut q = CalendarQueue::new();
        let far = WHEEL_SLOTS as u64 * 3 + 17;
        q.push(Cycle::new(far), 1);
        q.push(Cycle::new(2), 2);
        assert_eq!(q.stats().overflow_pushes, 1);
        assert_eq!(q.pop(), Some((Cycle::new(2), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(far), 1)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.stats().migrated, 1);
        assert_eq!(q.stats().rebases, 0);
    }

    #[test]
    fn same_slot_different_rotations_stay_ordered() {
        // Times t and t + WHEEL_SLOTS share a slot; the overflow horizon
        // must keep them apart.
        let mut q = CalendarQueue::new();
        let t = 100u64;
        q.push(Cycle::new(t + WHEEL_SLOTS as u64), 1);
        q.push(Cycle::new(t), 2);
        assert_eq!(drain(&mut q), vec![(t, 2), (t + WHEEL_SLOTS as u64, 1)]);
    }

    #[test]
    fn push_before_cursor_rebases() {
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(50), 1);
        assert_eq!(q.pop(), Some((Cycle::new(50), 1)));
        q.push(Cycle::new(60), 2);
        q.push(Cycle::new(10), 3); // before the cursor (50)
        assert_eq!(q.stats().rebases, 1);
        assert_eq!(drain(&mut q), vec![(10, 3), (60, 2)]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(9), 1);
        q.push(Cycle::new(4), 2);
        q.push(Cycle::new(WHEEL_SLOTS as u64 * 2), 3);
        while let Some(t) = q.peek_time() {
            let (pt, _) = q.pop().unwrap();
            assert_eq!(t, pt);
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_preserves_global_order() {
        let mut q = CalendarQueue::new();
        q.push(Cycle::new(3), 0);
        q.push(Cycle::new(3), 1);
        assert_eq!(q.pop(), Some((Cycle::new(3), 0)));
        // Pushing at the still-draining time queues behind the remainder.
        q.push(Cycle::new(3), 2);
        q.push(Cycle::new(4), 3);
        assert_eq!(q.pop(), Some((Cycle::new(3), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(3), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(4), 3)));
    }

    #[test]
    fn len_counts_both_regions() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        q.push(Cycle::new(1), 0);
        q.push(Cycle::new(WHEEL_SLOTS as u64 + 1), 1);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

//! The simulator proper: builder, event loop, and component context.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_prof::{ProfileConfig, Profiler, Timeline, TimelineConfig, PID_ADDRESSES, PID_COMPONENTS};

use crate::component::{Component, NodeId};
use crate::event::{EventKind, Pending};
use crate::link::Link;
use crate::queue::{CalendarQueue, QueueStats};
use crate::report::Report;
use crate::slab::{Slab, SlabId};
use crate::time::Cycle;
use crate::trace::{TraceConfig, Tracer};

/// Tally of link faults injected during a run (see [`crate::FaultSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFaultCounts {
    /// Messages silently discarded.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages delayed by a spike.
    pub delay_spikes: u64,
    /// Reorder bursts opened (the held victim message).
    pub reorder_bursts: u64,
    /// Messages fast-tracked past a burst victim.
    pub burst_overtakes: u64,
}

impl LinkFaultCounts {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.delay_spikes + self.reorder_bursts
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// True if the event queue drained completely (no work left).
    pub quiescent: bool,
    /// True if the run was stopped by the progress watchdog: the queue was
    /// still churning but no component reported forward progress for the
    /// configured bound. This is how the harness detects protocol deadlock
    /// and livelock without hanging the host process.
    pub stalled: bool,
    /// Simulated time when the run stopped.
    pub now: Cycle,
    /// Number of events processed during this call.
    pub events: u64,
}

/// Deferred effect produced by a component while handling an event.
///
/// Message payloads are parked in the simulator's [`Slab`] the moment the
/// component emits them (see [`Ctx::send`]), so effects — like queued
/// events — are small and constant-sized.
enum Effect {
    Send {
        to: NodeId,
        msg: SlabId,
        extra_delay: u64,
    },
    Wake {
        delay: u64,
        token: u64,
    },
    Redeliver {
        from: NodeId,
        msg: SlabId,
        delay: u64,
    },
}

/// The execution context handed to a component while it handles an event.
///
/// All interaction with the outside world — sending messages, arming timers,
/// drawing random numbers, reporting progress — goes through the context.
/// Effects are applied after the handler returns, so a component never
/// observes partially-applied state.
pub struct Ctx<'a, M> {
    now: Cycle,
    self_id: NodeId,
    self_name: &'a str,
    effects: &'a mut Vec<Effect>,
    msgs: &'a mut Slab<M>,
    rng: &'a mut SmallRng,
    progress: &'a mut u64,
    tracer: &'a mut Tracer,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The id of the component being invoked.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` over the configured link (latency drawn from the
    /// link's range when the effect is applied). The payload is parked in
    /// the simulator's message slab immediately; the effect and the queued
    /// event carry only its 4-byte handle.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let msg = self.msgs.insert(msg);
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_delay: 0,
        });
    }

    /// Sends `msg` to `to` with `extra_delay` cycles added on top of the
    /// link latency (used to model lookup/occupancy latency at the sender,
    /// e.g. a memory access before the response leaves the controller).
    pub fn send_after(&mut self, to: NodeId, msg: M, extra_delay: u64) {
        let msg = self.msgs.insert(msg);
        self.effects.push(Effect::Send {
            to,
            msg,
            extra_delay,
        });
    }

    /// Arms a timer: the component's `wake(token)` runs `delay` cycles from
    /// now (minimum one cycle).
    pub fn wake_in(&mut self, delay: u64, token: u64) {
        self.effects.push(Effect::Wake { delay, token });
    }

    /// Re-delivers `msg` to *this* component after `delay` cycles, preserving
    /// the original sender. This models a controller stalling/recycling a
    /// message it cannot process in its current state.
    pub fn redeliver(&mut self, from: NodeId, msg: M, delay: u64) {
        let msg = self.msgs.insert(msg);
        self.effects.push(Effect::Redeliver { from, msg, delay });
    }

    /// Deterministic simulation RNG. With the default global stream this is
    /// shared by the whole simulation; with per-component streams (see
    /// [`crate::SimBuilder::per_component_rng`]) it is this component's own
    /// stream, so one component's draws never perturb another's.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Records one unit of forward progress (e.g. a completed memory
    /// operation). The progress watchdog in
    /// [`Simulator::run_with_watchdog`] uses this to distinguish a busy
    /// system from a deadlocked or livelocked one.
    pub fn note_progress(&mut self) {
        *self.progress += 1;
    }

    /// Whether protocol tracing (ring recording or a timeline) is
    /// recording. Instrumented controllers can use this to skip preparing
    /// trace-only data.
    #[inline]
    pub fn trace_active(&self) -> bool {
        self.tracer.enabled() || self.tracer.timeline().is_some()
    }

    /// Records a protocol trace event for `addr`. The `detail` closure is
    /// evaluated only when tracing is on, so a disabled tracer costs one
    /// branch per call site. When a timeline is installed, the event also
    /// lands as an instant on this component's timeline track.
    #[inline]
    pub fn trace(&mut self, addr: u64, state: &str, event: &str, detail: impl FnOnce() -> String) {
        let ring = self.tracer.enabled();
        let timeline = self.tracer.timeline().is_some();
        if !ring && !timeline {
            return;
        }
        let detail = detail();
        if timeline {
            let tl = self.tracer.timeline_mut().expect("checked above");
            tl.instant(
                self.now.as_u64(),
                PID_COMPONENTS,
                self.self_id.index() as u64,
                event,
                vec![
                    ("addr", format!("{addr:#x}")),
                    ("state", state.to_owned()),
                    ("detail", detail.clone()),
                ],
            );
        }
        if ring {
            self.tracer.record(
                self.now.as_u64(),
                self.self_name,
                addr,
                state,
                event,
                detail,
            );
        }
    }

    /// Records a completed request-lifecycle span for `addr` — started at
    /// `start`, finished now — on the address's timeline track. This is the
    /// transaction-timeline counterpart of a latency-histogram observation:
    /// call it where a controller records `lat_*`, naming the lifecycle
    /// phase (`"grant"`, `"wback"`, `"inv"`, `"host_rtt"`, `"miss"`, ...).
    /// No-op (one branch) unless a timeline is installed.
    #[inline]
    pub fn span(&mut self, addr: u64, name: &'static str, start: Cycle) {
        if let Some(tl) = self.tracer.timeline_mut() {
            let ts = start.as_u64().min(self.now.as_u64());
            let dur = self.now.as_u64() - ts;
            tl.complete(
                ts,
                dur,
                PID_ADDRESSES,
                addr,
                name,
                vec![
                    ("component", self.self_name.to_owned()),
                    ("addr", format!("{addr:#x}")),
                ],
            );
        }
    }

    /// Flags `addr` for a post-mortem trace dump (always recorded, even with
    /// tracing off). Call this at the point a failure is detected — guard
    /// killing the accelerator, a safety invariant tripping, a corruption
    /// check failing — and the harness can render
    /// [`Simulator::post_mortem`] afterwards.
    pub fn flag_post_mortem(&mut self, addr: u64, reason: impl Into<String>) {
        self.tracer.flag(self.now.as_u64(), addr, reason);
    }
}

/// Builds a [`Simulator`]: register components, configure links, then
/// [`build`](SimBuilder::build).
pub struct SimBuilder<M> {
    components: Vec<Box<dyn Component<M>>>,
    links: HashMap<(NodeId, NodeId), Link>,
    default_link: Link,
    seed: u64,
    per_component_rng: bool,
    trace: TraceConfig,
    profile: ProfileConfig,
    event_label: Option<fn(&M) -> &'static str>,
}

impl<M: 'static> SimBuilder<M> {
    /// Creates a builder whose simulation RNG is seeded with `seed`.
    /// Identical seeds and identical construction sequences produce
    /// bit-identical runs.
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            components: Vec::new(),
            links: HashMap::new(),
            default_link: Link::default(),
            seed,
            per_component_rng: false,
            trace: TraceConfig::from_env(),
            profile: ProfileConfig::off(),
            event_label: None,
        }
    }

    /// Switches the simulation from one global RNG stream to one
    /// independent stream per component, each seeded from
    /// `stream_seed(seed, component_name)`. Off by default (the global
    /// stream keeps historical runs byte-identical); sharded execution
    /// (see [`crate::par::ParSim`]) forces it on, because a global
    /// stream's draw order would depend on the partition.
    pub fn per_component_rng(&mut self, on: bool) -> &mut Self {
        self.per_component_rng = on;
        self
    }

    /// Sets the tracing configuration (defaults to
    /// [`TraceConfig::from_env`]: off unless `XG_TRACE` is set).
    pub fn trace(&mut self, config: TraceConfig) -> &mut Self {
        self.trace = config;
        self
    }

    /// Sets the kernel-profiling configuration (defaults to
    /// [`ProfileConfig::off`]). Profiling never perturbs the simulation —
    /// it draws no randomness and schedules nothing — so an otherwise
    /// identical run produces identical protocol behavior with it on or
    /// off.
    pub fn profile(&mut self, config: ProfileConfig) -> &mut Self {
        self.profile = config;
        self
    }

    /// Installs the event-class labeler used by dispatch profiling: a
    /// function from a message to a short static label (conventionally
    /// `"<protocol>.<kind>"`). Without one, delivered messages profile
    /// under the class `"event"`; wake-ups always profile as `"Wake"`.
    pub fn event_label(&mut self, f: fn(&M) -> &'static str) -> &mut Self {
        self.event_label = Some(f);
        self
    }

    /// Registers a component, returning its [`NodeId`].
    pub fn add(&mut self, component: Box<dyn Component<M>>) -> NodeId {
        let id = NodeId(self.components.len() as u32);
        self.components.push(component);
        id
    }

    /// Configures the directed link `from → to`.
    pub fn link(&mut self, from: NodeId, to: NodeId, link: Link) -> &mut Self {
        self.links.insert((from, to), link);
        self
    }

    /// Configures both directions between `a` and `b` with the same link.
    pub fn link_bidi(&mut self, a: NodeId, b: NodeId, link: Link) -> &mut Self {
        self.link(a, b, link);
        self.link(b, a, link)
    }

    /// Sets the link used for any pair without an explicit configuration.
    pub fn default_link(&mut self, link: Link) -> &mut Self {
        self.default_link = link;
        self
    }

    /// Finalizes the builder into a runnable [`Simulator`].
    pub fn build(self) -> Simulator<M> {
        // Names are captured eagerly so the tracer can label events without
        // borrowing the (possibly checked-out) component.
        let names: Vec<String> = self
            .components
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        let mut links = LinkTable::new(self.components.len(), self.default_link);
        for ((from, to), link) in self.links {
            links.configure(from, to, link);
        }
        let rng = if self.per_component_rng {
            RngBank::PerComponent(per_component_streams(self.seed, &names))
        } else {
            RngBank::Global(SmallRng::seed_from_u64(self.seed))
        };
        Simulator {
            components: self.components,
            names,
            queue: CalendarQueue::new(),
            msgs: Slab::new(),
            links,
            now: Cycle::ZERO,
            rng,
            progress: 0,
            last_progress_at: Cycle::ZERO,
            effects: Vec::new(),
            tracer: Tracer::new(self.trace),
            faults: LinkFaultCounts::default(),
            profiler: Profiler::new(self.profile),
            event_label: self.event_label,
            shard_map: None,
            my_shard: 0,
            outbox: Vec::new(),
        }
    }

    /// Splits the builder into one shard-local simulator per shard named in
    /// `shard_map` (component index → shard id). Every shard carries the
    /// full name table and link table — so routing decisions and RNG
    /// seeding agree everywhere — but owns only its own components; foreign
    /// slots hold panicking [`Foreign`] placeholders. Per-component RNG is
    /// forced on: a global stream's draw order would depend on the
    /// partition.
    ///
    /// Returns `(shards, shard_map, delta)` where `delta` is the
    /// conservative window width: the smallest minimum latency over any
    /// cross-shard directed pair (clamped to ≥ 1). A message sent during
    /// window `[T, T+delta)` can therefore only arrive at `T+delta` or
    /// later, which is what makes windows independently executable.
    pub(crate) fn build_shards(self, shard_map: &[u32]) -> (Vec<Simulator<M>>, Arc<[u32]>, u64) {
        assert_eq!(
            shard_map.len(),
            self.components.len(),
            "shard map must cover every component"
        );
        let shard_count = shard_map
            .iter()
            .copied()
            .max()
            .map_or(1, |m| m as usize + 1);
        let names: Vec<String> = self
            .components
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        let n = names.len();
        let mut links = LinkTable::new(n, self.default_link);
        let mut delta = u64::MAX;
        for (&(from, to), &link) in &self.links {
            links.configure(from, to, link);
            if shard_map[from.index()] != shard_map[to.index()] {
                delta = delta.min(link.min_latency().max(1));
            }
        }
        // Unconfigured cross-shard pairs route over the default link, so it
        // bounds the window too (unless the partition is a single shard).
        let any_cross = (0..n).any(|i| shard_map[i] != shard_map[0]);
        if any_cross {
            delta = delta.min(self.default_link.min_latency().max(1));
        }
        if delta == u64::MAX {
            delta = 1;
        }
        let map: Arc<[u32]> = shard_map.into();
        let mut slots: Vec<Option<Box<dyn Component<M>>>> =
            self.components.into_iter().map(Some).collect();
        let shards = (0..shard_count)
            .map(|s| {
                let components: Vec<Box<dyn Component<M>>> = (0..n)
                    .map(|idx| {
                        if shard_map[idx] as usize == s {
                            slots[idx].take().expect("component claimed by two shards")
                        } else {
                            Box::new(Foreign {
                                name: names[idx].clone(),
                            }) as Box<dyn Component<M>>
                        }
                    })
                    .collect();
                Simulator {
                    components,
                    names: names.clone(),
                    queue: CalendarQueue::new(),
                    msgs: Slab::new(),
                    links: links.clone(),
                    now: Cycle::ZERO,
                    rng: RngBank::PerComponent(per_component_streams(self.seed, &names)),
                    progress: 0,
                    last_progress_at: Cycle::ZERO,
                    effects: Vec::new(),
                    tracer: Tracer::new(self.trace),
                    faults: LinkFaultCounts::default(),
                    profiler: Profiler::new(self.profile),
                    event_label: self.event_label,
                    shard_map: Some(Arc::clone(&map)),
                    my_shard: s as u32,
                    outbox: Vec::new(),
                }
            })
            .collect();
        (shards, map, delta)
    }
}

/// Per-directed-pair link state: the configured link plus the dynamic
/// fields the router mutates (ordered-delivery FIFO point, reorder-burst
/// countdown).
#[derive(Clone, Copy)]
struct PairState {
    link: Link,
    last_delivery: Cycle,
    /// Remaining messages to fast-track past an open reorder burst.
    burst: u8,
}

/// Dense `n × n` table of directed link state, indexed by
/// `from.index() * n + to.index()`.
///
/// This replaces the two parallel `HashMap<(NodeId, NodeId), _>` maps the
/// simulator used to keep (configured links and lazily-materialized
/// default-link ordering state), which could drift apart: every pair now
/// has exactly one `PairState`, created by one constructor and cleared by
/// one reset path. Component counts are small (a simulated system is tens
/// of controllers), so the quadratic table is a few KiB and a route lookup
/// is one multiply-add instead of a hash.
#[derive(Clone)]
struct LinkTable {
    n: usize,
    pairs: Box<[PairState]>,
    /// Link used when routing between fabricated (unregistered) ids; such
    /// messages still panic at delivery, as [`NodeId`] documents.
    default_link: Link,
}

impl LinkTable {
    /// A table over `n` registered components, every pair on `default`.
    fn new(n: usize, default: Link) -> LinkTable {
        let mut table = LinkTable {
            n,
            pairs: vec![
                PairState {
                    link: default,
                    last_delivery: Cycle::ZERO,
                    burst: 0,
                };
                n * n
            ]
            .into_boxed_slice(),
            default_link: default,
        };
        table.reset_dynamic();
        table
    }

    /// Installs a configured link for `from → to`.
    fn configure(&mut self, from: NodeId, to: NodeId, link: Link) {
        let (f, t) = (from.index(), to.index());
        assert!(
            f < self.n && t < self.n,
            "link endpoints must be registered"
        );
        self.pairs[f * self.n + t].link = link;
    }

    /// The single reset path for all dynamic routing state.
    fn reset_dynamic(&mut self) {
        for pair in self.pairs.iter_mut() {
            pair.last_delivery = Cycle::ZERO;
            pair.burst = 0;
        }
    }

    /// Mutable state for `from → to`, or `None` when either id is
    /// fabricated (out of range).
    #[inline]
    fn pair_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut PairState> {
        let (f, t) = (from.index(), to.index());
        if f < self.n && t < self.n {
            Some(&mut self.pairs[f * self.n + t])
        } else {
            None
        }
    }
}

/// Where a routed message ends up: dropped, delivered once, or delivered
/// twice (duplication faults draw an independent second latency).
enum Route {
    Drop,
    One(Cycle),
    Two(Cycle, Cycle),
}

/// Draws a delivery latency from `link`'s range; fixed-latency links
/// consume no randomness.
fn draw_latency(rng: &mut SmallRng, link: Link) -> u64 {
    if link.min_latency() == link.max_latency() {
        link.min_latency()
    } else {
        rng.gen_range(link.min_latency()..=link.max_latency())
    }
}

/// Source of simulation randomness.
///
/// `Global` is the legacy layout — one stream consumed in event order —
/// and stays the default so existing golden reports remain byte-identical.
/// `PerComponent` gives every component an independent stream seeded from
/// `stream_seed(run_seed, component_name)`; draw order within a stream
/// then depends only on that component's own event sequence, which is what
/// makes sharded execution partition-invariant (and what keeps one
/// component's draws from perturbing another's in serial runs).
enum RngBank {
    Global(SmallRng),
    /// One stream per registered component, plus a trailing "external"
    /// stream used when routing from a fabricated (unregistered) id.
    PerComponent(Vec<SmallRng>),
}

impl RngBank {
    /// The stream that component `idx` draws from (out-of-range indices —
    /// fabricated ids — share the trailing external stream).
    #[inline]
    fn stream(&mut self, idx: usize) -> &mut SmallRng {
        match self {
            RngBank::Global(rng) => rng,
            RngBank::PerComponent(streams) => {
                let last = streams.len() - 1;
                &mut streams[idx.min(last)]
            }
        }
    }
}

/// Builds the per-component stream vector: one stream per name, one
/// trailing stream for fabricated senders. Streams depend only on the run
/// seed and the component's name, so registering an extra component never
/// re-seeds anyone else.
fn per_component_streams(seed: u64, names: &[String]) -> Vec<SmallRng> {
    let mut streams: Vec<SmallRng> = names
        .iter()
        .map(|name| SmallRng::seed_from_u64(rand::stream_seed(seed, name)))
        .collect();
    streams.push(SmallRng::seed_from_u64(rand::stream_seed(
        seed,
        "\u{0}external",
    )));
    streams
}

/// A message crossing from this shard to another, captured at the moment
/// the router resolved its delivery time. The parallel executor drains
/// these at the window barrier and enqueues them on the owning shard.
pub(crate) struct Outbound<M> {
    pub(crate) time: Cycle,
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

/// Stand-in occupying a foreign component's slot in a shard-local
/// simulator. It carries the real component's name — so name tables, trace
/// labels, and per-component RNG seeding agree across shards — but it is
/// never dispatched (cross-shard messages leave via the outbox) and
/// contributes nothing to reports.
struct Foreign {
    name: String,
}

impl<M> Component<M> for Foreign {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, from: NodeId, _msg: M, _ctx: &mut Ctx<'_, M>) {
        panic!(
            "event from {from} delivered to {} on a shard that does not own it",
            self.name
        );
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A deterministic discrete-event simulator over message type `M`.
///
/// See the [crate docs](crate) for the execution model and an example.
pub struct Simulator<M> {
    components: Vec<Box<dyn Component<M>>>,
    names: Vec<String>,
    queue: CalendarQueue<Pending>,
    /// In-flight message payloads, referenced by [`SlabId`] from queued
    /// events and pending effects.
    msgs: Slab<M>,
    links: LinkTable,
    now: Cycle,
    rng: RngBank,
    progress: u64,
    last_progress_at: Cycle,
    effects: Vec<Effect>,
    tracer: Tracer,
    faults: LinkFaultCounts,
    profiler: Profiler,
    event_label: Option<fn(&M) -> &'static str>,
    /// Component → shard assignment when this simulator is one shard of a
    /// partitioned run (`None` for ordinary whole-system simulators).
    shard_map: Option<Arc<[u32]>>,
    /// This simulator's shard id within the partition (0 when unsharded).
    my_shard: u32,
    /// Cross-shard messages produced during the current window, drained by
    /// the parallel executor at the window barrier.
    outbox: Vec<Outbound<M>>,
}

impl<M: Clone + 'static> Simulator<M> {
    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total forward-progress units reported by all components so far.
    pub fn progress(&self) -> u64 {
        self.progress
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Injects a message from outside the simulation, as if `from` had sent
    /// it to `to` at the current time (link latency applies).
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) {
        match self.route(from, to, 0) {
            Route::Drop => {}
            Route::One(time) => {
                let msg = self.msgs.insert(msg);
                self.deliver(time, to, from, msg);
            }
            Route::Two(t1, t2) => {
                let copy = self.msgs.insert(msg.clone());
                let msg = self.msgs.insert(msg);
                self.deliver(t1, to, from, copy);
                self.deliver(t2, to, from, msg);
            }
        }
    }

    /// Schedules a wake-up for `target` at `delay` cycles from now.
    pub fn post_wake(&mut self, target: NodeId, delay: u64, token: u64) {
        let time = self.now + delay.max(1);
        self.push_event(time, target, EventKind::Wake { token });
    }

    /// Runs until the event queue is empty or `max_cycles` of simulated time
    /// elapse.
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> RunOutcome {
        self.run_inner(self.now + max_cycles, None)
    }

    /// Runs with a progress watchdog: stops early (with
    /// [`RunOutcome::stalled`] set) if no component reports progress for
    /// `stall_bound` consecutive cycles while events remain, or when
    /// `max_cycles` elapse.
    pub fn run_with_watchdog(&mut self, max_cycles: u64, stall_bound: u64) -> RunOutcome {
        self.run_inner(self.now + max_cycles, Some(stall_bound))
    }

    fn run_inner(&mut self, deadline: Cycle, stall_bound: Option<u64>) -> RunOutcome {
        let mut events = 0u64;
        loop {
            let Some(head_time) = self.queue.peek_time() else {
                return RunOutcome {
                    quiescent: true,
                    stalled: false,
                    now: self.now,
                    events,
                };
            };
            if head_time > deadline {
                return RunOutcome {
                    quiescent: false,
                    stalled: false,
                    now: deadline,
                    events,
                };
            }
            if let Some(bound) = stall_bound {
                if head_time.saturating_since(self.last_progress_at) > bound {
                    return RunOutcome {
                        quiescent: false,
                        stalled: true,
                        now: self.now,
                        events,
                    };
                }
            }
            self.step_one();
            events += 1;
        }
    }

    /// Processes exactly one event if any is pending; returns whether an
    /// event was processed.
    pub fn step(&mut self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        self.step_one();
        true
    }

    fn step_one(&mut self) {
        // One branch when profiling is off; the profiler is never touched.
        let profiling = self.profiler.enabled();
        let depth_before = if profiling { self.queue.len() } else { 0 };
        let (time, ev) = self.queue.pop().expect("step_one called on empty queue");
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        let mut class: &'static str = "event";
        let mut timer: Option<Instant> = None;
        if profiling {
            self.profiler.note_pop(ev.target.index());
            class = match ev.kind {
                EventKind::Deliver { msg, .. } => self
                    .event_label
                    .map_or("event", |label| label(self.msgs.get(msg))),
                EventKind::Wake { .. } => "Wake",
            };
            if self.profiler.begin_event(depth_before) {
                timer = Some(Instant::now());
            }
            self.profiler
                .epoch_tick(self.now.as_u64(), self.progress, self.queue.len());
        }
        let idx = ev.target.index();
        let progress_before = self.progress;
        {
            // Destructure so the handler's borrow of its component is
            // disjoint from the context's borrows of the kernel state — no
            // per-event move of the component box in and out of the slot.
            let Simulator {
                components,
                names,
                effects,
                msgs,
                rng,
                progress,
                tracer,
                ..
            } = self;
            let rng = rng.stream(idx);
            let Some(comp) = components.get_mut(idx) else {
                panic!("message delivered to unregistered node {}", ev.target)
            };
            // A delivery reclaims its payload (and slab slot) before the
            // handler runs; the handler receives the message by value,
            // exactly as if it had been carried inline.
            let payload = match ev.kind {
                EventKind::Deliver { msg, .. } => Some(msgs.take(msg)),
                EventKind::Wake { .. } => None,
            };
            let mut ctx = Ctx {
                now: time,
                self_id: ev.target,
                self_name: &names[idx],
                effects,
                msgs,
                rng,
                progress,
                tracer,
            };
            match ev.kind {
                EventKind::Deliver { from, .. } => {
                    comp.handle(from, payload.expect("deliver has payload"), &mut ctx)
                }
                EventKind::Wake { token } => comp.wake(token, &mut ctx),
            }
        }
        if self.progress > progress_before {
            self.last_progress_at = self.now;
        }

        // Drain into a local so the simulator's buffer (and its capacity)
        // survives for the next event — no per-event Vec alloc/free.
        let mut effects = std::mem::take(&mut self.effects);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send {
                    to,
                    msg,
                    extra_delay,
                } => match self.route(ev.target, to, extra_delay) {
                    Route::Drop => {
                        // Dropped by fault injection: reclaim the parked
                        // payload's slot.
                        drop(self.msgs.take(msg));
                    }
                    Route::One(time) => self.deliver(time, to, ev.target, msg),
                    Route::Two(t1, t2) => {
                        // Duplicate delivery: the second copy gets its own
                        // slab slot.
                        let copy = self.msgs.insert(self.msgs.get(msg).clone());
                        self.deliver(t1, to, ev.target, copy);
                        self.deliver(t2, to, ev.target, msg);
                    }
                },
                Effect::Wake { delay, token } => {
                    let time = self.now + delay.max(1);
                    self.push_event(time, ev.target, EventKind::Wake { token });
                }
                Effect::Redeliver { from, msg, delay } => {
                    let time = self.now + delay.max(1);
                    self.push_event(time, ev.target, EventKind::Deliver { from, msg });
                }
            }
        }
        debug_assert!(
            self.effects.is_empty(),
            "effects produced outside a handler"
        );
        self.effects = effects;
        if profiling {
            // The measured window covers the handler plus effect
            // application — the full kernel cost of the event.
            let elapsed = timer.map(|t| t.elapsed().as_nanos() as u64);
            self.profiler.end_event(idx, class, elapsed);
        }
    }

    /// Classifies a message against the link's fault plan and returns its
    /// delivery time(s). The fault path draws RNG only when a non-empty
    /// [`crate::FaultSpec`] is attached, so fault-free simulations consume
    /// exactly the random stream they always did.
    fn route(&mut self, from: NodeId, to: NodeId, extra: u64) -> Route {
        let now = self.now;
        let Simulator {
            links, rng, faults, ..
        } = self;
        // Latency draws charge the sender's stream: during effect drain the
        // sender is the component whose event was just dispatched, so in
        // per-component mode its draws stay on its own (shard-local) stream.
        let rng = rng.stream(from.index());
        if links.pair_mut(from, to).is_none() {
            // A fabricated endpoint: route statelessly over the default
            // link (delivery will panic, as NodeId documents).
            let latency = draw_latency(rng, links.default_link);
            return Route::One(now + latency.max(1) + extra);
        }
        let state = links.pair_mut(from, to).expect("checked above");
        let link = state.link;
        let spec = link.faults();
        let mut latency = draw_latency(rng, link);
        let mut duplicate = false;
        if !spec.is_none() {
            if state.burst > 0 {
                state.burst -= 1;
                latency = link.min_latency();
                faults.burst_overtakes += 1;
            } else {
                let roll = rng.gen_range(0u32..100);
                let drop_at = spec.drop_pct as u32;
                let dup_at = drop_at + spec.dup_pct as u32;
                let spike_at = dup_at + spec.delay_spike_pct as u32;
                let reorder_at = spike_at + spec.reorder_pct as u32;
                if roll < drop_at {
                    faults.dropped += 1;
                    return Route::Drop;
                } else if roll < dup_at {
                    duplicate = true;
                    faults.duplicated += 1;
                } else if roll < spike_at {
                    latency += spec.spike_cycles;
                    faults.delay_spikes += 1;
                } else if roll < reorder_at {
                    latency = link.max_latency() + spec.spike_cycles;
                    state.burst = spec.burst_len;
                    faults.reorder_bursts += 1;
                }
            }
        }
        let mut time = now + latency.max(1) + extra;
        if link.is_ordered() {
            if time <= state.last_delivery {
                time = state.last_delivery + 1;
            }
            state.last_delivery = time;
        }
        if duplicate {
            let lat2 = draw_latency(rng, link);
            let t2 = now + lat2.max(1) + extra;
            Route::Two(time, t2)
        } else {
            Route::One(time)
        }
    }

    fn push_event(&mut self, time: Cycle, target: NodeId, kind: EventKind) {
        if self.profiler.enabled() {
            self.profiler.note_push(target.index());
        }
        self.queue.push(time, Pending { target, kind });
    }

    /// Enqueues a routed delivery locally, or diverts it to the outbox when
    /// this simulator is a shard and `to` lives on another one. Fabricated
    /// ids stay local so they panic at delivery exactly as documented.
    fn deliver(&mut self, time: Cycle, to: NodeId, from: NodeId, msg: SlabId) {
        if let Some(map) = &self.shard_map {
            let t = to.index();
            if t < map.len() && map[t] != self.my_shard {
                let msg = self.msgs.take(msg);
                self.outbox.push(Outbound {
                    time,
                    from,
                    to,
                    msg,
                });
                return;
            }
        }
        self.push_event(time, to, EventKind::Deliver { from, msg });
    }

    /// Processes every pending event strictly before `end`, returning how
    /// many were processed. The conservative-window executor calls this
    /// once per shard per window.
    pub(crate) fn run_window(&mut self, end: Cycle) -> u64 {
        let mut events = 0;
        while let Some(t) = self.queue.peek_time() {
            if t >= end {
                break;
            }
            self.step_one();
            events += 1;
        }
        events
    }

    /// Time of the earliest pending event, if any.
    pub(crate) fn peek_time(&mut self) -> Option<Cycle> {
        self.queue.peek_time()
    }

    /// Drains the cross-shard messages produced since the last drain.
    /// Their order is this shard's deterministic send order; the executor
    /// re-sorts merged batches by `(time, source shard, sequence)`.
    pub(crate) fn take_outbox(&mut self) -> Vec<Outbound<M>> {
        std::mem::take(&mut self.outbox)
    }

    /// Enqueues a message handed over from another shard at the window
    /// barrier. `time` was fixed by the sender's router, so link state and
    /// randomness were already accounted for on the sending side.
    pub(crate) fn push_inbound(&mut self, time: Cycle, from: NodeId, to: NodeId, msg: M) {
        let msg = self.msgs.insert(msg);
        self.push_event(time, to, EventKind::Deliver { from, msg });
    }

    /// Scheduler-operation counters (pushes, pops, overflow traffic) for
    /// the run so far. Deterministic: they depend only on the simulated
    /// workload, never on the host machine.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Downcasts a registered component to a concrete type for inspection.
    pub fn get<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.components[id.index()].as_any().downcast_ref::<T>()
    }

    /// Downcasts a registered component to a concrete type, mutably.
    pub fn get_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.components[id.index()].as_any_mut().downcast_mut::<T>()
    }

    /// Link faults injected so far (all zero unless some link carries a
    /// non-empty [`FaultSpec`]).
    pub fn link_fault_counts(&self) -> LinkFaultCounts {
        self.faults
    }

    /// Collects a [`Report`] from every registered component, plus link
    /// fault-injection counters when any faults fired (fault-free runs keep
    /// their report keys unchanged).
    pub fn report(&self) -> Report {
        let mut out = Report::new();
        for comp in self.components.iter() {
            comp.report(&mut out);
        }
        if self.faults.total() + self.faults.burst_overtakes > 0 {
            out.add("sim.link_faults.dropped", self.faults.dropped);
            out.add("sim.link_faults.duplicated", self.faults.duplicated);
            out.add("sim.link_faults.delay_spikes", self.faults.delay_spikes);
            out.add("sim.link_faults.reorder_bursts", self.faults.reorder_bursts);
            out.add(
                "sim.link_faults.burst_overtakes",
                self.faults.burst_overtakes,
            );
        }
        // The profile section stays absent (and the report byte-identical
        // to an uninstrumented run's) unless profiling recorded something.
        let entries = self.profiler.entries(&self.names);
        if !entries.is_empty() {
            // Scheduler-operation counters ride along with the profile:
            // deterministic (workload-only), but kept out of unprofiled
            // reports so goldens stay byte-identical.
            let stats = self.queue.stats();
            out.profile_set("sched.pushes", stats.pushes);
            out.profile_set("sched.pops", stats.pops);
            out.profile_set("sched.overflow", stats.overflow_pushes);
            out.profile_set("sched.migrated", stats.migrated);
            out.profile_set("sched.rebases", stats.rebases);
        }
        for (k, v) in entries {
            out.profile_set(k, v);
        }
        out
    }

    /// Names of all registered components, for diagnostics.
    pub fn component_names(&self) -> &[String] {
        &self.names
    }

    /// The protocol tracer (read access: dumps, flags, config).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The protocol tracer, mutably — lets a harness flag addresses for
    /// post-mortem from outside any component (e.g. after an end-of-run
    /// memory consistency sweep).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Renders the post-mortem dump for every flagged address, or `None` if
    /// nothing was flagged. See [`Ctx::flag_post_mortem`].
    pub fn post_mortem(&self) -> Option<String> {
        self.tracer.post_mortem()
    }

    /// The kernel profiler (read access: counters, epochs, config).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The kernel profiler, mutably — lets a harness that builds a system
    /// through a shared constructor opt a specific run into profiling
    /// before the first event is dispatched.
    pub fn profiler_mut(&mut self) -> &mut Profiler {
        &mut self.profiler
    }

    /// Installs a transaction-timeline recorder and names a track for every
    /// registered component. From here on, [`Ctx::trace`] records land as
    /// instants and [`Ctx::span`] records as spans; retrieve the result
    /// with [`Simulator::timeline_json`].
    pub fn enable_timeline(&mut self, config: TimelineConfig) {
        let mut timeline = Timeline::new(config);
        for (idx, name) in self.names.iter().enumerate() {
            if !name.is_empty() {
                timeline.name_track(PID_COMPONENTS, idx as u64, name.clone());
            }
        }
        self.tracer.set_timeline(timeline);
    }

    /// Renders the recorded timeline as Chrome trace-event JSON (loadable
    /// in Perfetto), or `None` if no timeline was enabled.
    pub fn timeline_json(&self) -> Option<String> {
        self.tracer.timeline().map(Timeline::to_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::FaultSpec;

    /// Records every delivery (time, from, payload) it sees.
    struct Recorder {
        seen: Vec<(u64, NodeId, u64)>,
        woken: Vec<(u64, u64)>,
    }
    impl Recorder {
        fn new() -> Self {
            Recorder {
                seen: Vec::new(),
                woken: Vec::new(),
            }
        }
    }
    impl Component<u64> for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn handle(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.seen.push((ctx.now().as_u64(), from, msg));
            ctx.note_progress();
        }
        fn wake(&mut self, token: u64, ctx: &mut Ctx<'_, u64>) {
            self.woken.push((ctx.now().as_u64(), token));
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Sends `count` messages to a peer when first poked.
    struct Burst {
        peer: NodeId,
        count: u64,
    }
    impl Component<u64> for Burst {
        fn name(&self) -> &str {
            "burst"
        }
        fn handle(&mut self, _from: NodeId, _msg: u64, ctx: &mut Ctx<'_, u64>) {
            for i in 0..self.count {
                ctx.send(self.peer, i);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn two_node_sim(link: Link, count: u64, seed: u64) -> Vec<(u64, NodeId, u64)> {
        let mut b = SimBuilder::new(seed);
        let rec = b.add(Box::new(Recorder::new()));
        let src = b.add(Box::new(Burst { peer: rec, count }));
        b.link(src, rec, link);
        let mut sim = b.build();
        sim.post(rec, src, 0);
        let out = sim.run_to_quiescence(100_000);
        assert!(out.quiescent);
        sim.get::<Recorder>(rec).unwrap().seen.clone()
    }

    #[test]
    fn ordered_link_preserves_send_order() {
        for seed in 0..20 {
            let seen = two_node_sim(Link::ordered(1, 50), 32, seed);
            let payloads: Vec<u64> = seen.iter().map(|&(_, _, p)| p).collect();
            assert_eq!(payloads, (0..32).collect::<Vec<_>>(), "seed {seed}");
            // Delivery times strictly increase on an ordered link.
            for w in seen.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
    }

    #[test]
    fn unordered_link_reorders_eventually() {
        let mut reordered = false;
        for seed in 0..50 {
            let seen = two_node_sim(Link::unordered(1, 50), 32, seed);
            let payloads: Vec<u64> = seen.iter().map(|&(_, _, p)| p).collect();
            if payloads != (0..32).collect::<Vec<_>>() {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "unordered link never reordered in 50 seeds");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = two_node_sim(Link::unordered(1, 50), 64, 7);
        let b = two_node_sim(Link::unordered(1, 50), 64, 7);
        assert_eq!(a, b);
        let c = two_node_sim(Link::unordered(1, 50), 64, 8);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn wake_tokens_fire_in_time_order() {
        let mut b = SimBuilder::new(1);
        let rec = b.add(Box::new(Recorder::new()));
        let mut sim = b.build();
        sim.post_wake(rec, 10, 100);
        sim.post_wake(rec, 5, 200);
        sim.post_wake(rec, 20, 300);
        let out = sim.run_to_quiescence(1_000);
        assert!(out.quiescent);
        let woken = &sim.get::<Recorder>(rec).unwrap().woken;
        assert_eq!(
            woken.iter().map(|&(_, t)| t).collect::<Vec<_>>(),
            vec![200, 100, 300]
        );
    }

    #[test]
    fn watchdog_detects_livelock() {
        /// Two components that ping-pong forever without progress.
        struct Pong {
            peer: Option<NodeId>,
        }
        impl Component<u64> for Pong {
            fn name(&self) -> &str {
                "pong"
            }
            fn handle(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
                let to = self.peer.unwrap_or(from);
                ctx.send(to, msg);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut b = SimBuilder::new(3);
        let a = b.add(Box::new(Pong { peer: None }));
        let c = b.add(Box::new(Pong { peer: Some(a) }));
        let mut sim = b.build();
        sim.post(a, c, 1);
        let out = sim.run_with_watchdog(1_000_000, 500);
        assert!(out.stalled);
        assert!(!out.quiescent);
    }

    #[test]
    fn run_stops_at_deadline() {
        let mut b = SimBuilder::new(1);
        let rec = b.add(Box::new(Recorder::new()));
        let mut sim = b.build();
        sim.post_wake(rec, 5_000, 0);
        let out = sim.run_to_quiescence(100);
        assert!(!out.quiescent);
        assert!(sim.get::<Recorder>(rec).unwrap().woken.is_empty());
        let out = sim.run_to_quiescence(10_000);
        assert!(out.quiescent);
        assert_eq!(sim.get::<Recorder>(rec).unwrap().woken.len(), 1);
    }

    #[test]
    fn report_collects_from_components() {
        struct Stat;
        impl Component<u64> for Stat {
            fn name(&self) -> &str {
                "stat"
            }
            fn handle(&mut self, _f: NodeId, _m: u64, _c: &mut Ctx<'_, u64>) {}
            fn report(&self, out: &mut Report) {
                out.add("stat.value", 11);
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        b.add(Box::new(Stat));
        b.add(Box::new(Stat));
        let sim = b.build();
        assert_eq!(sim.report().get("stat.value"), 22);
    }

    #[test]
    fn ctx_tracing_feeds_post_mortem() {
        use crate::trace::TraceConfig;

        /// Traces each delivery and flags the address on payload 2.
        struct Suspect;
        impl Component<u64> for Suspect {
            fn name(&self) -> &str {
                "suspect"
            }
            fn handle(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
                ctx.trace(0xabc0, "S", "Deliver", || format!("payload={msg}"));
                if msg == 2 {
                    ctx.flag_post_mortem(0xabc0, "payload 2 observed");
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }

        let mut b = SimBuilder::new(1);
        let s = b.add(Box::new(Suspect));
        b.trace(TraceConfig::ring());
        let mut sim = b.build();
        for payload in 0..3 {
            sim.post(s, s, payload);
        }
        assert!(sim.run_to_quiescence(1_000).quiescent);
        let pm = sim.post_mortem().expect("flag raised");
        assert!(pm.contains("payload 2 observed"), "{pm}");
        assert!(pm.contains("suspect"), "component name attributed: {pm}");
        assert!(pm.contains("payload=0"), "earlier history retained: {pm}");
    }

    #[test]
    fn tracing_off_is_default_and_silent() {
        let mut b = SimBuilder::new(1);
        let rec = b.add(Box::new(Recorder::new()));
        let mut sim = b.build();
        sim.post(rec, rec, 1);
        assert!(sim.run_to_quiescence(1_000).quiescent);
        if std::env::var_os("XG_TRACE").is_none() {
            assert!(!sim.tracer().enabled());
        }
        assert!(sim.post_mortem().is_none());
    }

    #[test]
    fn redeliver_requeues_to_self() {
        struct Stubborn {
            attempts: u32,
            done_at: Option<u64>,
        }
        impl Component<u64> for Stubborn {
            fn name(&self) -> &str {
                "stubborn"
            }
            fn handle(&mut self, from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
                if self.attempts < 3 {
                    self.attempts += 1;
                    ctx.redeliver(from, msg, 10);
                } else {
                    self.done_at = Some(ctx.now().as_u64());
                    ctx.note_progress();
                }
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut b = SimBuilder::new(1);
        let s = b.add(Box::new(Stubborn {
            attempts: 0,
            done_at: None,
        }));
        let mut sim = b.build();
        sim.post(s, s, 9);
        assert!(sim.run_to_quiescence(1_000).quiescent);
        let comp = sim.get::<Stubborn>(s).unwrap();
        assert_eq!(comp.attempts, 3);
        assert!(comp.done_at.unwrap() >= 30);
    }

    fn faulty_sim(spec: FaultSpec, count: u64, seed: u64) -> (Vec<u64>, LinkFaultCounts, Report) {
        let mut b = SimBuilder::new(seed);
        let rec = b.add(Box::new(Recorder::new()));
        let src = b.add(Box::new(Burst { peer: rec, count }));
        b.link(src, rec, Link::unordered(1, 20).with_faults(spec));
        let mut sim = b.build();
        sim.post(rec, src, 0);
        assert!(sim.run_to_quiescence(1_000_000).quiescent);
        let seen = sim.get::<Recorder>(rec).unwrap().seen.clone();
        (
            seen.iter().map(|&(_, _, p)| p).collect(),
            sim.link_fault_counts(),
            sim.report(),
        )
    }

    #[test]
    fn drop_faults_lose_messages_and_are_counted() {
        let spec = FaultSpec {
            drop_pct: 30,
            ..FaultSpec::NONE
        };
        let (payloads, counts, report) = faulty_sim(spec, 200, 5);
        assert_eq!(payloads.len() as u64 + counts.dropped, 200);
        assert!(counts.dropped > 0, "30% drop over 200 messages never fired");
        assert_eq!(report.get("sim.link_faults.dropped"), counts.dropped);
    }

    #[test]
    fn duplicate_faults_deliver_twice() {
        let spec = FaultSpec {
            dup_pct: 30,
            ..FaultSpec::NONE
        };
        let (payloads, counts, _) = faulty_sim(spec, 200, 5);
        assert_eq!(payloads.len() as u64, 200 + counts.duplicated);
        assert!(counts.duplicated > 0);
    }

    #[test]
    fn delay_spikes_push_victims_past_the_latency_bound() {
        let spec = FaultSpec {
            delay_spike_pct: 20,
            spike_cycles: 10_000,
            ..FaultSpec::NONE
        };
        let mut b = SimBuilder::new(9);
        let rec = b.add(Box::new(Recorder::new()));
        let src = b.add(Box::new(Burst {
            peer: rec,
            count: 100,
        }));
        b.link(src, rec, Link::unordered(1, 20).with_faults(spec));
        let mut sim = b.build();
        sim.post(rec, src, 0);
        assert!(sim.run_to_quiescence(1_000_000).quiescent);
        let seen = &sim.get::<Recorder>(rec).unwrap().seen;
        let spiked = seen.iter().filter(|&&(t, _, _)| t > 10_000).count() as u64;
        assert_eq!(seen.len(), 100, "spikes must not lose messages");
        assert_eq!(spiked, sim.link_fault_counts().delay_spikes);
        assert!(spiked > 0);
    }

    #[test]
    fn reorder_bursts_overtake_the_victim() {
        let spec = FaultSpec {
            reorder_pct: 10,
            spike_cycles: 500,
            burst_len: 4,
            ..FaultSpec::NONE
        };
        let (payloads, counts, _) = faulty_sim(spec, 100, 3);
        assert_eq!(payloads.len(), 100, "bursts must not lose messages");
        assert!(counts.reorder_bursts > 0);
        assert!(counts.burst_overtakes > 0);
        let sorted: Vec<u64> = (0..100).collect();
        assert_ne!(payloads, sorted, "bursts should visibly reorder delivery");
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let spec = FaultSpec {
            drop_pct: 10,
            dup_pct: 10,
            delay_spike_pct: 10,
            reorder_pct: 10,
            spike_cycles: 777,
            burst_len: 3,
        };
        let a = faulty_sim(spec, 150, 42);
        let b = faulty_sim(spec, 150, 42);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn profiling_records_dispatch_without_perturbing_the_run() {
        fn run(profile: bool) -> (Vec<(u64, NodeId, u64)>, Report) {
            let mut b = SimBuilder::new(11);
            let rec = b.add(Box::new(Recorder::new()));
            let src = b.add(Box::new(Burst {
                peer: rec,
                count: 16,
            }));
            b.link(src, rec, Link::unordered(1, 30));
            b.event_label(|&msg: &u64| if msg % 2 == 0 { "Even" } else { "Odd" });
            if profile {
                b.profile(xg_prof::ProfileConfig::on());
            }
            let mut sim = b.build();
            sim.post(rec, src, 0);
            sim.post_wake(rec, 5, 1);
            assert!(sim.run_to_quiescence(100_000).quiescent);
            (sim.get::<Recorder>(rec).unwrap().seen.clone(), sim.report())
        }
        let (plain_seen, plain_report) = run(false);
        let (prof_seen, prof_report) = run(true);
        assert_eq!(plain_seen, prof_seen, "profiling must not perturb the run");
        assert!(
            !plain_report.to_json().contains("profile"),
            "profiling off → no profile section"
        );
        assert_eq!(
            prof_report.without_profile().to_json(),
            plain_report.to_json(),
            "stripped profiled report matches the plain one byte-for-byte"
        );
        assert_eq!(prof_report.profile_get("dispatch.recorder.Even"), 8);
        assert_eq!(prof_report.profile_get("dispatch.recorder.Odd"), 8);
        assert_eq!(prof_report.profile_get("dispatch.recorder.Wake"), 1);
        assert_eq!(prof_report.profile_get("dispatch.burst.Even"), 1);
        // 16 bursts + 1 trigger + 1 wake.
        assert_eq!(prof_report.profile_get("events.total"), 18);
        assert!(prof_report.profile_get("queue.hwm") >= 1);
        assert!(prof_report.profile_get("inflight.recorder.hwm") >= 1);
    }

    #[test]
    fn epoch_series_lands_in_the_report() {
        let mut b = SimBuilder::new(2);
        let rec = b.add(Box::new(Recorder::new()));
        b.profile(xg_prof::ProfileConfig {
            epoch_cycles: 10,
            host_time_sample: 0,
            ..xg_prof::ProfileConfig::on()
        });
        let mut sim = b.build();
        for i in 0..4 {
            sim.post_wake(rec, 1 + i * 10, 0);
        }
        assert!(sim.run_to_quiescence(1_000).quiescent);
        let report = sim.report();
        assert!(report.profile_get("epoch.0000.events") > 0);
        assert!(report
            .profile_entries()
            .any(|(k, _)| k.starts_with("epoch.000") && k.ends_with(".qdepth")));
    }

    #[test]
    fn timeline_collects_instants_and_spans() {
        /// Traces deliveries and records a span when payload 2 arrives.
        struct Spanner {
            first_at: Option<Cycle>,
        }
        impl Component<u64> for Spanner {
            fn name(&self) -> &str {
                "spanner"
            }
            fn handle(&mut self, _from: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
                ctx.trace(0x40, "S", "Deliver", || format!("payload={msg}"));
                if msg == 0 {
                    self.first_at = Some(ctx.now());
                } else if let Some(start) = self.first_at {
                    ctx.span(0x40, "grant", start);
                }
                ctx.note_progress();
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut b = SimBuilder::new(4);
        let s = b.add(Box::new(Spanner { first_at: None }));
        let mut sim = b.build();
        assert!(sim.timeline_json().is_none(), "no timeline by default");
        sim.enable_timeline(xg_prof::TimelineConfig::new());
        sim.post(s, s, 0);
        sim.post(s, s, 1);
        assert!(sim.run_to_quiescence(1_000).quiescent);
        let json = sim.timeline_json().expect("timeline enabled");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("spanner"), "component track named: {json}");
        assert!(json.contains("\"ph\":\"i\""), "instants recorded: {json}");
        assert!(json.contains("\"ph\":\"X\""), "span recorded: {json}");
        assert!(json.contains("\"name\":\"grant\""));
    }

    #[test]
    fn empty_fault_spec_changes_nothing() {
        let clean = two_node_sim(Link::unordered(1, 50), 64, 7);
        let with_empty_spec = {
            let mut b = SimBuilder::new(7);
            let rec = b.add(Box::new(Recorder::new()));
            let src = b.add(Box::new(Burst {
                peer: rec,
                count: 64,
            }));
            b.link(
                src,
                rec,
                Link::unordered(1, 50).with_faults(FaultSpec::NONE),
            );
            let mut sim = b.build();
            sim.post(rec, src, 0);
            assert!(sim.run_to_quiescence(100_000).quiescent);
            assert_eq!(sim.link_fault_counts(), LinkFaultCounts::default());
            assert_eq!(sim.report().get("sim.link_faults.dropped"), 0);
            sim.get::<Recorder>(rec).unwrap().seen.clone()
        };
        assert_eq!(
            clean, with_empty_spec,
            "empty spec must not perturb the RNG stream"
        );
    }

    /// Sends `count` randomized payloads to `peer` when poked; named so
    /// per-component streams can be pinned to a stable label.
    struct Chatter {
        name: &'static str,
        peer: NodeId,
        count: u64,
    }
    impl Component<u64> for Chatter {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, _from: NodeId, _msg: u64, ctx: &mut Ctx<'_, u64>) {
            for _ in 0..self.count {
                let payload: u64 = ctx.rng().gen_range(0..1_000_000);
                ctx.send(self.peer, payload);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// One chatter/recorder pair, optionally preceded by an unrelated
    /// second pair whose draws would shift a global stream.
    fn chatter_run(per_component: bool, with_noise: bool) -> Vec<(u64, u64)> {
        let mut b = SimBuilder::new(77);
        if with_noise {
            let rec2 = b.add(Box::new(Recorder::new()));
            let noise = b.add(Box::new(Chatter {
                name: "noise",
                peer: rec2,
                count: 32,
            }));
            b.link(noise, rec2, Link::unordered(1, 40));
        }
        let rec = b.add(Box::new(Recorder::new()));
        let src = b.add(Box::new(Chatter {
            name: "src",
            peer: rec,
            count: 32,
        }));
        b.link(src, rec, Link::unordered(1, 40));
        b.per_component_rng(per_component);
        let mut sim = b.build();
        if with_noise {
            // Poke the bystander pair (registered first, at indices 0/1)
            // ahead of the pair under test, so its draws come first in a
            // global stream.
            sim.post(NodeId::from_index(0), NodeId::from_index(1), 0);
        }
        sim.post(rec, src, 0);
        assert!(sim.run_to_quiescence(100_000).quiescent);
        sim.get::<Recorder>(rec)
            .unwrap()
            .seen
            .iter()
            .map(|&(t, _, p)| (t, p))
            .collect()
    }

    #[test]
    fn per_component_rng_is_deterministic() {
        let a = chatter_run(true, false);
        let b = chatter_run(true, false);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn per_component_streams_are_isolated_from_other_components() {
        // A global stream interleaves draws across components, so adding an
        // unrelated busy pair perturbs the original pair's latencies and
        // payloads. Per-component streams are keyed by name: the original
        // pair's behavior is identical with or without the bystanders.
        let global_alone = chatter_run(false, false);
        let global_crowded = chatter_run(false, true);
        assert_ne!(
            global_alone, global_crowded,
            "global stream is expected to be perturbed by bystanders"
        );
        let scoped_alone = chatter_run(true, false);
        let scoped_crowded = chatter_run(true, true);
        assert_eq!(
            scoped_alone, scoped_crowded,
            "per-component streams must not be perturbed by bystanders"
        );
    }
}

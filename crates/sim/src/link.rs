//! Link (network channel) latency and ordering models.

/// Latency and ordering configuration for a directed link between two
/// components.
///
/// * An **unordered** link delivers each message after an independently
///   chosen random latency in `[min, max]`. Messages can therefore pass one
///   another in flight — this is the source of the races a realistic host
///   coherence protocol must tolerate (paper §2.4).
/// * An **ordered** link also draws a random latency per message, but
///   guarantees that delivery order matches send order by pushing each
///   delivery time to at least one cycle after the previous delivery on the
///   same link. The Crossing Guard ↔ accelerator network is required to be
///   ordered (paper §2.1), which is exactly what eliminates all but one race
///   from the accelerator's view.
///
/// ```rust
/// use xg_sim::Link;
/// let fast = Link::ordered(1, 1);
/// let noisy = Link::unordered(5, 40);
/// assert!(noisy.max_latency() >= fast.max_latency());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    min: u64,
    max: u64,
    ordered: bool,
}

impl Link {
    /// An unordered link with latency uniformly drawn from `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn unordered(min: u64, max: u64) -> Self {
        assert!(min <= max, "link latency range inverted: [{min}, {max}]");
        Link {
            min,
            max,
            ordered: false,
        }
    }

    /// An ordered (FIFO) link with latency uniformly drawn from `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn ordered(min: u64, max: u64) -> Self {
        assert!(min <= max, "link latency range inverted: [{min}, {max}]");
        Link {
            min,
            max,
            ordered: true,
        }
    }

    /// Minimum one-way latency in cycles.
    pub const fn min_latency(&self) -> u64 {
        self.min
    }

    /// Maximum one-way latency in cycles.
    pub const fn max_latency(&self) -> u64 {
        self.max
    }

    /// Whether the link preserves send order.
    pub const fn is_ordered(&self) -> bool {
        self.ordered
    }
}

impl Default for Link {
    /// A one-cycle ordered link (the closest thing to a wire).
    fn default() -> Self {
        Link::ordered(1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = Link::unordered(2, 9);
        assert_eq!(l.min_latency(), 2);
        assert_eq!(l.max_latency(), 9);
        assert!(!l.is_ordered());
        assert!(Link::ordered(1, 1).is_ordered());
        assert!(Link::default().is_ordered());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = Link::unordered(5, 1);
    }
}

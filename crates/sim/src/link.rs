//! Link (network channel) latency, ordering, and fault-injection models.

/// Deterministic fault-injection plan for an **unordered** link.
///
/// Percentages are per-message probabilities (drawn from the simulation RNG,
/// so runs stay bit-reproducible for a fixed seed). The four fault kinds
/// model distinct host-network pathologies:
///
/// * **drop** — the message silently disappears.
/// * **duplicate** — the message is delivered twice, at independently drawn
///   latencies.
/// * **delay spike** — the message is delivered `spike_cycles` later than
///   its drawn latency (a congested switch, a retried NoC hop). This is what
///   drives the guard's invalidation-timeout machinery (paper guarantee 2c).
/// * **reorder burst** — the message is held for `max + spike_cycles` while
///   the next `burst_len` messages on the same link are delivered at the
///   link's *minimum* latency, so they overtake it. This concentrates the
///   reordering an unordered link already permits into adversarial bursts.
///
/// A zeroed spec (`FaultSpec::NONE`) is free: the delivery path draws no
/// extra randomness, so pre-existing seeded runs are byte-identical.
///
/// Faults are rejected on **ordered** links: the guard ↔ accelerator network
/// is contractually ordered and reliable (paper §2.1), and that contract is
/// exactly what the fault injector must not break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultSpec {
    /// Percent of messages dropped (0-100).
    pub drop_pct: u8,
    /// Percent of messages delivered twice (0-100).
    pub dup_pct: u8,
    /// Percent of messages delayed by an extra `spike_cycles` (0-100).
    pub delay_spike_pct: u8,
    /// Percent of messages that open a reorder burst (0-100).
    pub reorder_pct: u8,
    /// Extra latency applied by a delay spike or a reorder-burst victim.
    pub spike_cycles: u64,
    /// How many following messages overtake a reorder-burst victim.
    pub burst_len: u8,
}

impl FaultSpec {
    /// The no-fault spec (also `Default`).
    pub const NONE: FaultSpec = FaultSpec {
        drop_pct: 0,
        dup_pct: 0,
        delay_spike_pct: 0,
        reorder_pct: 0,
        spike_cycles: 0,
        burst_len: 0,
    };

    /// A latency-only plan (delay spikes + reorder bursts, no loss or
    /// duplication). This is the plan a *reliable but congested* host
    /// network exhibits, and the default adversary used by the fuzz
    /// campaign: it never violates the host protocol's delivery
    /// assumptions, only its timing assumptions.
    pub fn delay_only(spike_pct: u8, reorder_pct: u8, spike_cycles: u64, burst_len: u8) -> Self {
        FaultSpec {
            drop_pct: 0,
            dup_pct: 0,
            delay_spike_pct: spike_pct,
            reorder_pct,
            spike_cycles,
            burst_len,
        }
    }

    /// Whether this spec injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.drop_pct == 0
            && self.dup_pct == 0
            && self.delay_spike_pct == 0
            && self.reorder_pct == 0
    }

    /// Sum of all trigger percentages (must stay ≤ 100 so a single uniform
    /// draw can classify each message).
    pub fn total_pct(&self) -> u32 {
        self.drop_pct as u32
            + self.dup_pct as u32
            + self.delay_spike_pct as u32
            + self.reorder_pct as u32
    }
}

/// Latency and ordering configuration for a directed link between two
/// components.
///
/// * An **unordered** link delivers each message after an independently
///   chosen random latency in `[min, max]`. Messages can therefore pass one
///   another in flight — this is the source of the races a realistic host
///   coherence protocol must tolerate (paper §2.4). Unordered links may
///   additionally carry a [`FaultSpec`].
/// * An **ordered** link also draws a random latency per message, but
///   guarantees that delivery order matches send order by pushing each
///   delivery time to at least one cycle after the previous delivery on the
///   same link. The Crossing Guard ↔ accelerator network is required to be
///   ordered (paper §2.1), which is exactly what eliminates all but one race
///   from the accelerator's view. Ordered links never inject faults.
///
/// ```rust
/// use xg_sim::{FaultSpec, Link};
/// let fast = Link::ordered(1, 1);
/// let noisy = Link::unordered(5, 40).with_faults(FaultSpec::delay_only(10, 5, 500, 4));
/// assert!(noisy.max_latency() >= fast.max_latency());
/// assert!(!noisy.faults().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    min: u64,
    max: u64,
    ordered: bool,
    faults: FaultSpec,
}

impl Link {
    /// An unordered link with latency uniformly drawn from `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn unordered(min: u64, max: u64) -> Self {
        assert!(min <= max, "link latency range inverted: [{min}, {max}]");
        Link {
            min,
            max,
            ordered: false,
            faults: FaultSpec::NONE,
        }
    }

    /// An ordered (FIFO) link with latency uniformly drawn from `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn ordered(min: u64, max: u64) -> Self {
        assert!(min <= max, "link latency range inverted: [{min}, {max}]");
        Link {
            min,
            max,
            ordered: true,
            faults: FaultSpec::NONE,
        }
    }

    /// Attaches a fault-injection plan to this link.
    ///
    /// # Panics
    /// Panics if the link is ordered and `faults` is non-empty (the §2.1
    /// ordered-link contract includes reliable in-order delivery), or if the
    /// trigger percentages sum past 100.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        assert!(
            !self.ordered || faults.is_none(),
            "fault injection is only supported on unordered links (§2.1 contract)"
        );
        assert!(
            faults.total_pct() <= 100,
            "fault trigger percentages sum past 100: {}",
            faults.total_pct()
        );
        self.faults = faults;
        self
    }

    /// Minimum one-way latency in cycles.
    pub const fn min_latency(&self) -> u64 {
        self.min
    }

    /// Maximum one-way latency in cycles.
    pub const fn max_latency(&self) -> u64 {
        self.max
    }

    /// Whether the link preserves send order.
    pub const fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// The fault-injection plan (zeroed unless set via
    /// [`with_faults`](Link::with_faults)).
    pub const fn faults(&self) -> FaultSpec {
        self.faults
    }
}

impl Default for Link {
    /// A one-cycle ordered link (the closest thing to a wire).
    fn default() -> Self {
        Link::ordered(1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = Link::unordered(2, 9);
        assert_eq!(l.min_latency(), 2);
        assert_eq!(l.max_latency(), 9);
        assert!(!l.is_ordered());
        assert!(l.faults().is_none());
        assert!(Link::ordered(1, 1).is_ordered());
        assert!(Link::default().is_ordered());
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        let _ = Link::unordered(5, 1);
    }

    #[test]
    fn faults_attach_to_unordered() {
        let spec = FaultSpec {
            drop_pct: 1,
            dup_pct: 2,
            delay_spike_pct: 3,
            reorder_pct: 4,
            spike_cycles: 100,
            burst_len: 3,
        };
        let l = Link::unordered(1, 10).with_faults(spec);
        assert_eq!(l.faults(), spec);
        assert_eq!(spec.total_pct(), 10);
        assert!(!spec.is_none());
        assert!(FaultSpec::NONE.is_none());
        assert!(FaultSpec::default().is_none());
    }

    #[test]
    fn empty_faults_allowed_on_ordered() {
        let l = Link::ordered(1, 4).with_faults(FaultSpec::NONE);
        assert!(l.faults().is_none());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn faults_rejected_on_ordered_links() {
        let _ = Link::ordered(1, 4).with_faults(FaultSpec::delay_only(10, 0, 100, 0));
    }

    #[test]
    #[should_panic(expected = "sum past 100")]
    fn overcommitted_percentages_rejected() {
        let _ = Link::unordered(1, 4).with_faults(FaultSpec {
            drop_pct: 60,
            dup_pct: 60,
            ..FaultSpec::NONE
        });
    }
}

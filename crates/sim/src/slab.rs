//! A slab allocator with free-list recycling for in-flight message
//! payloads.
//!
//! The scheduler's hot path moves every queued event several times: into
//! the effect buffer, through the router, into a wheel slot, and back out
//! at dispatch. When events carried their message payload inline, each of
//! those moves copied the full message enum (~100 bytes for the coherence
//! `Message` type) — and, because Rust enums are max-variant sized, even
//! payload-free timer wake-ups paid the same copy. Parking payloads in a
//! slab and threading a 4-byte [`SlabId`] through the kernel instead
//! shrinks every queued event to a few dozen bytes and reduces a payload's
//! lifetime to exactly two moves: one into its slot, one out.
//!
//! Slots are recycled through a LIFO free list, so a steady-state
//! simulation reuses the same few dozen cache-hot slots forever and the
//! slab performs **zero heap traffic per hop** — allocation only happens
//! when the in-flight high-water mark grows.
//!
//! Determinism: ids are handed out purely by free-list order, which is a
//! function of the simulation's own alloc/free sequence — no addresses,
//! no hashing — so a seeded run allocates the identical id sequence every
//! time. (Nothing in the kernel orders on ids anyway; event order is the
//! scheduler's `(time, seq)`.)

/// Handle to a value parked in a [`Slab`].
///
/// Plain data: the slab does not track ownership, so a stale id (used
/// after [`Slab::take`]) is a logic error the slab panics on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabId(u32);

impl SlabId {
    /// The raw slot index (diagnostics only).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A slab of `T` values with free-list slot recycling. See the
/// [module docs](self).
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    /// Indices of vacant slots, reused LIFO (the most recently freed slot
    /// is the most likely to still be in cache).
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Parks `value`, returning its handle. Reuses a free slot when one
    /// exists; grows only when every slot is occupied.
    #[inline]
    pub fn insert(&mut self, value: T) -> SlabId {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none());
                self.slots[idx as usize] = Some(value);
                SlabId(idx)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("slab exhausted u32 ids");
                self.slots.push(Some(value));
                SlabId(idx)
            }
        }
    }

    /// Removes and returns the value at `id`, recycling its slot.
    ///
    /// # Panics
    /// Panics if `id` is vacant (double-take) or out of range.
    #[inline]
    pub fn take(&mut self, id: SlabId) -> T {
        let value = self.slots[id.0 as usize]
            .take()
            .expect("slab id taken twice");
        self.free.push(id.0);
        value
    }

    /// Reads the value at `id` without freeing it (used to clone a payload
    /// for duplicate delivery).
    ///
    /// # Panics
    /// Panics if `id` is vacant or out of range.
    #[inline]
    pub fn get(&self, id: SlabId) -> &T {
        self.slots[id.0 as usize].as_ref().expect("vacant slab id")
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (the in-flight high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("alpha");
        let b = slab.insert("beta");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(*slab.get(a), "alpha");
        assert_eq!(slab.take(a), "alpha");
        assert_eq!(slab.take(b), "beta");
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert(1);
        let _b = slab.insert(2);
        slab.take(a);
        let c = slab.insert(3);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.capacity(), 2, "no growth while free slots exist");
    }

    #[test]
    fn grows_only_past_the_high_water_mark() {
        let mut slab = Slab::new();
        let ids: Vec<_> = (0..8).map(|i| slab.insert(i)).collect();
        for &id in &ids {
            slab.take(id);
        }
        for i in 0..8 {
            slab.insert(i);
        }
        assert_eq!(slab.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut slab = Slab::new();
        let a = slab.insert(7);
        slab.take(a);
        slab.take(a);
    }

    #[test]
    fn id_sequence_is_deterministic() {
        let run = || {
            let mut slab = Slab::new();
            let mut log = Vec::new();
            let a = slab.insert(0);
            let b = slab.insert(1);
            log.push(a);
            slab.take(a);
            log.push(slab.insert(2));
            log.push(b);
            slab.take(b);
            log.push(slab.insert(3));
            log
        };
        assert_eq!(run(), run());
    }
}

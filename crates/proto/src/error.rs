//! Crossing Guard error reports (paper §2.2, Figure 1).

use std::error::Error;
use std::fmt;

use xg_mem::BlockAddr;
use xg_sim::NodeId;

/// Which guarantee an accelerator message (or silence) violated.
///
/// The variants map one-to-one onto the paper's Figure 1 guarantee list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum XgErrorKind {
    /// Guarantee 0a: request for a block on a page with no access.
    PermissionRead,
    /// Guarantee 0b: exclusive request / dirty data for a read-only page.
    PermissionWrite,
    /// Guarantee 1a: request inconsistent with the block's stable state at
    /// the accelerator (e.g. PutM for a block it does not own).
    InconsistentRequest,
    /// Guarantee 1b: a second request for a block with one already pending.
    DuplicateRequest,
    /// Guarantee 2a: response type inconsistent with the block's stable
    /// state (e.g. InvAck for an owned block).
    InconsistentResponse,
    /// Guarantee 2b: a response with no corresponding host request.
    UnsolicitedResponse,
    /// Guarantee 2c: no response to a host request within the timeout.
    ResponseTimeout,
    /// A message that is not even well-formed interface traffic (wrong
    /// protocol family, empty data payload, wrong payload size, ...).
    Malformed,
}

impl XgErrorKind {
    /// Short mnemonic for stats keys.
    pub fn mnemonic(self) -> &'static str {
        match self {
            XgErrorKind::PermissionRead => "perm_read",
            XgErrorKind::PermissionWrite => "perm_write",
            XgErrorKind::InconsistentRequest => "inconsistent_req",
            XgErrorKind::DuplicateRequest => "duplicate_req",
            XgErrorKind::InconsistentResponse => "inconsistent_resp",
            XgErrorKind::UnsolicitedResponse => "unsolicited_resp",
            XgErrorKind::ResponseTimeout => "timeout",
            XgErrorKind::Malformed => "malformed",
        }
    }

    /// All variants, for exhaustive reporting.
    pub const ALL: [XgErrorKind; 8] = [
        XgErrorKind::PermissionRead,
        XgErrorKind::PermissionWrite,
        XgErrorKind::InconsistentRequest,
        XgErrorKind::DuplicateRequest,
        XgErrorKind::InconsistentResponse,
        XgErrorKind::UnsolicitedResponse,
        XgErrorKind::ResponseTimeout,
        XgErrorKind::Malformed,
    ];
}

impl fmt::Display for XgErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// An error report sent by a Crossing Guard instance to the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XgError {
    /// The Crossing Guard instance that detected the violation.
    pub guard: NodeId,
    /// The block involved, if the violation concerns one.
    pub addr: Option<BlockAddr>,
    /// Which guarantee was violated.
    pub kind: XgErrorKind,
}

impl XgError {
    /// Creates an error report.
    pub fn new(guard: NodeId, addr: Option<BlockAddr>, kind: XgErrorKind) -> Self {
        XgError { guard, addr, kind }
    }
}

impl fmt::Display for XgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.addr {
            Some(addr) => write!(
                f,
                "accelerator violation {} at {} (guard {})",
                self.kind, addr, self.guard
            ),
            None => write!(
                f,
                "accelerator violation {} (guard {})",
                self.kind, self.guard
            ),
        }
    }
}

impl Error for XgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_addr() {
        let e = XgError::new(
            NodeId::from_index(3),
            Some(BlockAddr::new(2)),
            XgErrorKind::PermissionWrite,
        );
        let s = e.to_string();
        assert!(s.contains("perm_write"));
        assert!(s.contains("0x80"));
        let e = XgError::new(NodeId::from_index(3), None, XgErrorKind::ResponseTimeout);
        assert!(e.to_string().contains("timeout"));
    }

    #[test]
    fn all_variants_have_distinct_mnemonics() {
        let mut seen = std::collections::HashSet::new();
        for k in XgErrorKind::ALL {
            assert!(seen.insert(k.mnemonic()), "duplicate mnemonic {k}");
        }
        assert_eq!(seen.len(), 8);
    }
}

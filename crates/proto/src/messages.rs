//! All message types exchanged between simulated controllers.

use std::fmt;

use xg_mem::{Addr, BlockAddr, DataBlock};
use xg_sim::NodeId;

use crate::error::XgError;

/// The top-level message type carried by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Core ↔ cache frontend traffic.
    Core(CoreMsg),
    /// Hammer-like host protocol traffic.
    Hammer(HammerMsg),
    /// Inclusive MESI host protocol traffic.
    Mesi(MesiMsg),
    /// Crossing Guard interface traffic (accelerator ↔ XG). Also used
    /// *inside* the two-level accelerator organization: the shared
    /// accelerator L2 exposes the same standardized interface downward to
    /// its L1s, demonstrating that the interface composes hierarchically.
    Xgi(XgiMsg),
    /// Error reports to the OS.
    Os(OsMsg),
}

impl Message {
    /// The block address this message concerns, if any.
    pub fn block_addr(&self) -> Option<BlockAddr> {
        match self {
            Message::Core(m) => Some(m.addr.block()),
            Message::Hammer(m) => Some(m.addr),
            Message::Mesi(m) => Some(m.addr),
            Message::Xgi(m) => Some(m.addr),
            Message::Os(_) => None,
        }
    }

    /// A short static `"<protocol>.<kind>"` label for kernel profiling —
    /// the event-class vocabulary of `xg-prof` dispatch counters (install
    /// with `SimBuilder::event_label(Message::class)`).
    pub fn class(&self) -> &'static str {
        match self {
            Message::Core(m) => match m.kind {
                CoreKind::Load => "Core.Load",
                CoreKind::Store { .. } => "Core.Store",
                CoreKind::LoadResp { .. } => "Core.LoadResp",
                CoreKind::StoreResp => "Core.StoreResp",
                CoreKind::Flush => "Core.Flush",
                CoreKind::FlushResp => "Core.FlushResp",
            },
            Message::Hammer(m) => match m.kind {
                HammerKind::GetS => "Hammer.GetS",
                HammerKind::GetSOnly => "Hammer.GetSOnly",
                HammerKind::GetM => "Hammer.GetM",
                HammerKind::Put => "Hammer.Put",
                HammerKind::FwdGetS { .. } => "Hammer.FwdGetS",
                HammerKind::FwdGetSOnly { .. } => "Hammer.FwdGetSOnly",
                HammerKind::FwdGetM { .. } => "Hammer.FwdGetM",
                HammerKind::MemData { .. } => "Hammer.MemData",
                HammerKind::RespData { .. } => "Hammer.RespData",
                HammerKind::RespAck { .. } => "Hammer.RespAck",
                HammerKind::WbAck => "Hammer.WbAck",
                HammerKind::WbNack => "Hammer.WbNack",
                HammerKind::WbData { .. } => "Hammer.WbData",
                HammerKind::Unblock { .. } => "Hammer.Unblock",
            },
            Message::Mesi(m) => match m.kind {
                MesiKind::GetS => "Mesi.GetS",
                MesiKind::GetSOnly => "Mesi.GetSOnly",
                MesiKind::GetM => "Mesi.GetM",
                MesiKind::PutS => "Mesi.PutS",
                MesiKind::PutE { .. } => "Mesi.PutE",
                MesiKind::PutM { .. } => "Mesi.PutM",
                MesiKind::DataS { .. } => "Mesi.DataS",
                MesiKind::DataE { .. } => "Mesi.DataE",
                MesiKind::DataM { .. } => "Mesi.DataM",
                MesiKind::WbAck => "Mesi.WbAck",
                MesiKind::WbNack => "Mesi.WbNack",
                MesiKind::Inv { .. } => "Mesi.Inv",
                MesiKind::FwdGetS { .. } => "Mesi.FwdGetS",
                MesiKind::FwdGetM { .. } => "Mesi.FwdGetM",
                MesiKind::Recall => "Mesi.Recall",
                MesiKind::InvAck => "Mesi.InvAck",
                MesiKind::FwdData { .. } => "Mesi.FwdData",
                MesiKind::OwnerWb { .. } => "Mesi.OwnerWb",
                MesiKind::RecallData { .. } => "Mesi.RecallData",
            },
            Message::Xgi(m) => match m.kind {
                XgiKind::GetS => "Xgi.GetS",
                XgiKind::GetM => "Xgi.GetM",
                XgiKind::PutS => "Xgi.PutS",
                XgiKind::PutE { .. } => "Xgi.PutE",
                XgiKind::PutM { .. } => "Xgi.PutM",
                XgiKind::DataS { .. } => "Xgi.DataS",
                XgiKind::DataE { .. } => "Xgi.DataE",
                XgiKind::DataM { .. } => "Xgi.DataM",
                XgiKind::WbAck => "Xgi.WbAck",
                XgiKind::Inv => "Xgi.Inv",
                XgiKind::InvAck => "Xgi.InvAck",
                XgiKind::CleanWb { .. } => "Xgi.CleanWb",
                XgiKind::DirtyWb { .. } => "Xgi.DirtyWb",
            },
            Message::Os(m) => match m {
                OsMsg::Error(_) => "Os.Error",
                OsMsg::DisableAccelerator => "Os.DisableAccelerator",
            },
        }
    }
}

impl From<CoreMsg> for Message {
    fn from(m: CoreMsg) -> Self {
        Message::Core(m)
    }
}
impl From<HammerMsg> for Message {
    fn from(m: HammerMsg) -> Self {
        Message::Hammer(m)
    }
}
impl From<MesiMsg> for Message {
    fn from(m: MesiMsg) -> Self {
        Message::Mesi(m)
    }
}
impl From<XgiMsg> for Message {
    fn from(m: XgiMsg) -> Self {
        Message::Xgi(m)
    }
}
impl From<OsMsg> for Message {
    fn from(m: OsMsg) -> Self {
        Message::Os(m)
    }
}

// ---------------------------------------------------------------------------
// Core interface
// ---------------------------------------------------------------------------

/// A load/store request or response between a core and its cache.
///
/// Data operations are on the naturally-aligned `u64` containing `addr`,
/// which is what the value-checking stress tester (paper §4.1) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMsg {
    /// Request id, echoed in the response so the core can match them up.
    pub id: u64,
    /// Byte address of the access.
    pub addr: Addr,
    /// Operation.
    pub kind: CoreKind,
}

/// Kinds of core-level operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Read the aligned 64-bit word at `addr`.
    Load,
    /// Write the aligned 64-bit word at `addr`.
    Store {
        /// Value to write.
        value: u64,
    },
    /// Response to [`CoreKind::Load`].
    LoadResp {
        /// Value read.
        value: u64,
    },
    /// Response to [`CoreKind::Store`].
    StoreResp,
    /// Write back and locally invalidate the block containing `addr`. In
    /// hardware-coherent caches this is a hint; in the weak-sharing
    /// accelerator organization (paper §2.1) it is the synchronization
    /// primitive that makes one core's writes visible to its siblings.
    Flush,
    /// Response to [`CoreKind::Flush`].
    FlushResp,
}

// ---------------------------------------------------------------------------
// Hammer-like host protocol
// ---------------------------------------------------------------------------

/// A message in the AMD-Hammer-like exclusive MOESI broadcast protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HammerMsg {
    /// Block this message concerns.
    pub addr: BlockAddr,
    /// Message kind and payload.
    pub kind: HammerKind,
}

impl HammerMsg {
    /// Convenience constructor.
    pub fn new(addr: BlockAddr, kind: HammerKind) -> Self {
        HammerMsg { addr, kind }
    }
}

/// Kinds of Hammer protocol messages.
///
/// Requests go cache→directory; the directory *broadcasts* forwards to all
/// peer caches (it keeps no sharer list); each peer responds directly to the
/// requestor, which counts responses. Writebacks are two-phase
/// (`Put` → `WbAck` → `WbData`). `GetSOnly` is the non-upgradable read
/// request added for Transactional Crossing Guard (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HammerKind {
    /// Read request (may be answered with exclusive data).
    GetS,
    /// Non-upgradable read request: the requestor will never be made owner.
    GetSOnly,
    /// Write (exclusive) request.
    GetM,
    /// Writeback request (phase one; data follows after `WbAck`).
    Put,
    /// Directory → peers: someone issued GetS. `to_owner` marks the copy
    /// sent to the cache the directory believes owns the block.
    FwdGetS {
        /// Cache to respond to.
        requestor: NodeId,
        /// Whether the directory believes the recipient owns the block.
        to_owner: bool,
    },
    /// Directory → peers: someone issued GetSOnly.
    FwdGetSOnly {
        /// Cache to respond to.
        requestor: NodeId,
        /// Whether the directory believes the recipient owns the block.
        to_owner: bool,
    },
    /// Directory → peers: someone issued GetM; invalidate your copy.
    FwdGetM {
        /// Cache to respond to.
        requestor: NodeId,
        /// Whether the directory believes the recipient owns the block.
        to_owner: bool,
    },
    /// Directory → requestor: data from memory plus the number of peer
    /// responses the requestor must collect.
    MemData {
        /// Block data as memory has it (possibly stale if a cache owns it).
        data: DataBlock,
        /// Number of peer responses (acks or data) to expect.
        peers: u32,
    },
    /// Peer → requestor: data response from the owner.
    RespData {
        /// Current block data.
        data: DataBlock,
        /// Whether the data is newer than memory.
        dirty: bool,
        /// True if the responder keeps a copy (requestor takes S); false if
        /// ownership transfers (requestor takes E/M by `dirty`).
        owner_keeps_copy: bool,
    },
    /// Peer → requestor: no data; `had_copy` notes whether the peer retains
    /// a shared copy (so a GetS requestor knows E is not available).
    RespAck {
        /// Whether the responder still holds (or held) a shared copy.
        had_copy: bool,
    },
    /// Directory → putter: writeback accepted, send `WbData`.
    WbAck,
    /// Directory → putter: writeback rejected (requestor no longer owner —
    /// either a legal race or, with an accelerator, an error).
    WbNack,
    /// Putter → directory: writeback data (phase two).
    WbData {
        /// Block data.
        data: DataBlock,
        /// Whether the data differs from memory.
        dirty: bool,
    },
    /// Requestor → directory: transaction complete; release the block.
    Unblock {
        /// Whether the requestor is now the owner.
        new_owner: bool,
    },
}

// ---------------------------------------------------------------------------
// Inclusive MESI host protocol
// ---------------------------------------------------------------------------

/// A message in the inclusive two-level MESI protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MesiMsg {
    /// Block this message concerns.
    pub addr: BlockAddr,
    /// Message kind and payload.
    pub kind: MesiKind,
}

impl MesiMsg {
    /// Convenience constructor.
    pub fn new(addr: BlockAddr, kind: MesiKind) -> Self {
        MesiMsg { addr, kind }
    }
}

/// Kinds of MESI protocol messages.
///
/// The shared L2 is inclusive and keeps an exact sharer list plus owner per
/// block. Requestors are told how many invalidation acks to expect
/// (`DataM { acks }`), and sharers ack the *requestor directly* — the
/// sibling-to-sibling communication the Crossing Guard interface
/// deliberately excludes from the accelerator's view (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MesiKind {
    /// L1 → L2 read request.
    GetS,
    /// L1 → L2 non-upgradable read request (never grants E; added for
    /// Transactional Crossing Guard, mirroring instruction fetches).
    GetSOnly,
    /// L1 → L2 write request (also used for S→M upgrades).
    GetM,
    /// L1 → L2: evicting a shared copy (no data; L2 sharer list is exact).
    PutS,
    /// L1 → L2: evicting a clean-exclusive copy.
    PutE {
        /// Block data (clean; lets L2 verify/refresh).
        data: DataBlock,
    },
    /// L1 → L2: evicting a modified copy.
    PutM {
        /// Dirty block data.
        data: DataBlock,
    },
    /// L2 → L1: shared read-only data.
    DataS {
        /// Block data.
        data: DataBlock,
    },
    /// L2 → L1: clean-exclusive data (no other sharers).
    DataE {
        /// Block data.
        data: DataBlock,
    },
    /// L2 → L1: writable data; collect `acks` invalidation acks before
    /// using it.
    DataM {
        /// Block data.
        data: DataBlock,
        /// Number of `InvAck`s to expect from invalidated sharers.
        acks: u32,
    },
    /// L2 → putter: writeback accepted.
    WbAck,
    /// L2 → putter: writeback rejected (no longer sharer/owner).
    WbNack,
    /// L2 → sharer: invalidate; ack `requestor` directly (the requestor may
    /// be the L2 itself during an inclusive-eviction recall).
    Inv {
        /// Node to send `InvAck` to.
        requestor: NodeId,
    },
    /// L2 → owner: forward shared data to `requestor`, downgrade to S, and
    /// send an `OwnerWb` copy to the L2.
    FwdGetS {
        /// Node to send data to.
        requestor: NodeId,
    },
    /// L2 → owner: forward exclusive data to `requestor` and invalidate.
    FwdGetM {
        /// Node to send data to.
        requestor: NodeId,
    },
    /// L2 → owner: return the block (inclusive L2 eviction recall).
    Recall,
    /// Sharer → requestor: invalidation acknowledged.
    InvAck,
    /// Owner → requestor: forwarded data.
    FwdData {
        /// Block data.
        data: DataBlock,
        /// Whether the data is newer than the L2's copy.
        dirty: bool,
        /// True if ownership transfers (M/E); false for a shared copy.
        exclusive: bool,
    },
    /// Owner → L2: data copy accompanying a FwdGetS downgrade.
    OwnerWb {
        /// Block data.
        data: DataBlock,
        /// Whether the data is newer than the L2's copy.
        dirty: bool,
    },
    /// Owner → L2: data returned for a `Recall`.
    RecallData {
        /// Block data.
        data: DataBlock,
        /// Whether the data is newer than the L2's copy.
        dirty: bool,
    },
}

// ---------------------------------------------------------------------------
// The Crossing Guard interface
// ---------------------------------------------------------------------------

/// Data payload on the Crossing Guard interface: one or more host-sized
/// blocks, so that an accelerator whose block size is a multiple of the
/// host's 64 B can move a whole accelerator block per message (paper §2.5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XgData(Vec<DataBlock>);

impl XgData {
    /// A payload of exactly one host block (the common case).
    pub fn single(block: DataBlock) -> Self {
        XgData(vec![block])
    }

    /// A payload of `n` zeroed host blocks.
    pub fn zeroed(n: usize) -> Self {
        XgData(vec![DataBlock::zeroed(); n])
    }

    /// A payload from a vector of host blocks.
    ///
    /// # Panics
    /// Panics if `blocks` is empty — every data message carries data.
    pub fn from_blocks(blocks: Vec<DataBlock>) -> Self {
        assert!(!blocks.is_empty(), "XgData must carry at least one block");
        XgData(blocks)
    }

    /// The constituent host blocks.
    pub fn blocks(&self) -> &[DataBlock] {
        &self.0
    }

    /// Mutable access to the constituent host blocks.
    pub fn blocks_mut(&mut self) -> &mut [DataBlock] {
        &mut self.0
    }

    /// Number of host blocks (the accelerator/host block-size ratio).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty (never true for well-formed messages,
    /// but the fuzzer can construct it).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The single block of a size-1 payload.
    ///
    /// # Panics
    /// Panics if the payload does not contain exactly one block.
    pub fn expect_single(&self) -> DataBlock {
        assert_eq!(self.0.len(), 1, "expected single-block payload");
        self.0[0]
    }
}

impl From<DataBlock> for XgData {
    fn from(b: DataBlock) -> Self {
        XgData::single(b)
    }
}

/// A message on the standardized Crossing Guard interface (paper §2.1).
///
/// `addr` is aligned to the *accelerator* block size (a multiple of the
/// 64 B host block size; usually equal to it).
#[derive(Debug, Clone, PartialEq)]
pub struct XgiMsg {
    /// Accelerator block address.
    pub addr: BlockAddr,
    /// Message kind and payload.
    pub kind: XgiKind,
}

impl XgiMsg {
    /// Convenience constructor.
    pub fn new(addr: BlockAddr, kind: XgiKind) -> Self {
        XgiMsg { addr, kind }
    }
}

/// Kinds of Crossing Guard interface messages.
///
/// The accelerator can make five requests (`GetS`, `GetM`, `PutS`, `PutE`,
/// `PutM`) and receives exactly one of four responses per request (`DataS`,
/// `DataE`, `DataM`, `WbAck`). The host (via Crossing Guard) can make one
/// request (`Inv`) and receives exactly one of three responses (`InvAck`,
/// `CleanWb`, `DirtyWb`). `Put` messages carry data to avoid a multi-phase
/// commit. The accel↔XG network must be ordered in both directions.
#[derive(Debug, Clone, PartialEq)]
pub enum XgiKind {
    /// Accel → XG: request a shared (read-only) copy.
    GetS,
    /// Accel → XG: request an exclusive (read-write) copy.
    GetM,
    /// Accel → XG: evict a shared copy.
    PutS,
    /// Accel → XG: evict a clean-exclusive copy (data included).
    PutE {
        /// Clean block data.
        data: XgData,
    },
    /// Accel → XG: evict a modified copy (data included).
    PutM {
        /// Dirty block data.
        data: XgData,
    },
    /// XG → accel: shared, clean data.
    DataS {
        /// Block data.
        data: XgData,
    },
    /// XG → accel: exclusive, clean data (may answer a GetS).
    DataE {
        /// Block data.
        data: XgData,
    },
    /// XG → accel: exclusive, modified data (may answer a GetS).
    DataM {
        /// Block data.
        data: XgData,
    },
    /// XG → accel: a Put completed.
    WbAck,
    /// XG → accel: relinquish the block now.
    Inv,
    /// Accel → XG: held nothing (or only S); block invalidated.
    InvAck,
    /// Accel → XG: held E; here is the clean data.
    CleanWb {
        /// Clean block data.
        data: XgData,
    },
    /// Accel → XG: held M; here is the dirty data.
    DirtyWb {
        /// Dirty block data.
        data: XgData,
    },
}

impl XgiKind {
    /// Whether this kind is a legal accelerator→XG *request*.
    pub fn is_accel_request(&self) -> bool {
        matches!(
            self,
            XgiKind::GetS
                | XgiKind::GetM
                | XgiKind::PutS
                | XgiKind::PutE { .. }
                | XgiKind::PutM { .. }
        )
    }

    /// Whether this kind is a legal accelerator→XG *response* (to `Inv`).
    pub fn is_accel_response(&self) -> bool {
        matches!(
            self,
            XgiKind::InvAck | XgiKind::CleanWb { .. } | XgiKind::DirtyWb { .. }
        )
    }

    /// Short mnemonic for coverage and traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            XgiKind::GetS => "GetS",
            XgiKind::GetM => "GetM",
            XgiKind::PutS => "PutS",
            XgiKind::PutE { .. } => "PutE",
            XgiKind::PutM { .. } => "PutM",
            XgiKind::DataS { .. } => "DataS",
            XgiKind::DataE { .. } => "DataE",
            XgiKind::DataM { .. } => "DataM",
            XgiKind::WbAck => "WbAck",
            XgiKind::Inv => "Inv",
            XgiKind::InvAck => "InvAck",
            XgiKind::CleanWb { .. } => "CleanWb",
            XgiKind::DirtyWb { .. } => "DirtyWb",
        }
    }
}

impl fmt::Display for XgiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

// ---------------------------------------------------------------------------
// OS error reporting
// ---------------------------------------------------------------------------

/// A message to or from the OS model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsMsg {
    /// Crossing Guard detected an accelerator protocol violation.
    Error(XgError),
    /// OS → Crossing Guard: stop accepting accelerator requests (the
    /// "disable the accelerator" policy of paper §2.2).
    DisableAccelerator,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_extraction() {
        let m: Message = CoreMsg {
            id: 1,
            addr: Addr::new(0x1008),
            kind: CoreKind::Load,
        }
        .into();
        assert_eq!(m.block_addr(), Some(Addr::new(0x1008).block()));

        let m: Message = XgiMsg::new(BlockAddr::new(7), XgiKind::GetS).into();
        assert_eq!(m.block_addr(), Some(BlockAddr::new(7)));

        let m: Message = OsMsg::Error(XgError::new(
            NodeId::from_index(0),
            None,
            crate::XgErrorKind::ResponseTimeout,
        ))
        .into();
        assert_eq!(m.block_addr(), None);
    }

    #[test]
    fn xgi_request_response_partition() {
        let reqs = [
            XgiKind::GetS,
            XgiKind::GetM,
            XgiKind::PutS,
            XgiKind::PutE {
                data: XgData::zeroed(1),
            },
            XgiKind::PutM {
                data: XgData::zeroed(1),
            },
        ];
        for r in &reqs {
            assert!(r.is_accel_request(), "{r}");
            assert!(!r.is_accel_response(), "{r}");
        }
        let resps = [
            XgiKind::InvAck,
            XgiKind::CleanWb {
                data: XgData::zeroed(1),
            },
            XgiKind::DirtyWb {
                data: XgData::zeroed(1),
            },
        ];
        for r in &resps {
            assert!(r.is_accel_response(), "{r}");
            assert!(!r.is_accel_request(), "{r}");
        }
        assert!(!XgiKind::Inv.is_accel_request());
        assert!(!XgiKind::WbAck.is_accel_response());
    }

    #[test]
    fn xg_data_payloads() {
        let d = XgData::single(DataBlock::splat(3));
        assert_eq!(d.len(), 1);
        assert_eq!(d.expect_single(), DataBlock::splat(3));
        let d = XgData::zeroed(4);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        let from: XgData = DataBlock::splat(9).into();
        assert_eq!(from.blocks()[0], DataBlock::splat(9));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_payload_panics() {
        let _ = XgData::from_blocks(Vec::new());
    }

    #[test]
    fn classes_are_protocol_qualified() {
        let m: Message = HammerMsg::new(BlockAddr::new(1), HammerKind::GetM).into();
        assert_eq!(m.class(), "Hammer.GetM");
        let m: Message = XgiMsg::new(BlockAddr::new(1), XgiKind::Inv).into();
        assert_eq!(m.class(), "Xgi.Inv");
        let m: Message = OsMsg::DisableAccelerator.into();
        assert_eq!(m.class(), "Os.DisableAccelerator");
        let m: Message = CoreMsg {
            id: 0,
            addr: Addr::new(0),
            kind: CoreKind::Flush,
        }
        .into();
        assert_eq!(m.class(), "Core.Flush");
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(XgiKind::GetS.mnemonic(), "GetS");
        assert_eq!(
            XgiKind::DirtyWb {
                data: XgData::zeroed(1)
            }
            .to_string(),
            "DirtyWb"
        );
    }
}

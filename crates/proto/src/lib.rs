//! # xg-proto — shared protocol message vocabulary
//!
//! Every controller in the Crossing Guard system exchanges values of one
//! [`Message`] enum. Think of this crate as the set of wire formats:
//!
//! * [`CoreMsg`] — a processing core's load/store interface to its cache.
//! * [`HammerMsg`] — the AMD-Hammer-like exclusive MOESI host protocol
//!   (implemented in `xg-host-hammer`).
//! * [`MesiMsg`] — the inclusive two-level MESI host protocol (implemented
//!   in `xg-host-mesi`).
//! * [`XgiMsg`] — **the Crossing Guard interface** (paper §2.1): the
//!   standardized, minimal message set an accelerator uses. Five requests,
//!   four responses, one host-initiated request, three responses to it.
//! * [`OsMsg`] — error reports Crossing Guard raises to the OS (paper §2.2).
//!
//! Keeping all message types in one enum lets heterogeneous controllers
//! share one simulator instantiation, and — crucially for the safety story —
//! lets the fuzzer hand *any* message to *any* controller, so we can test
//! that Crossing Guard tolerates arbitrary garbage while host controllers
//! merely count (rather than crash on) impossible events.

#![forbid(unsafe_code)]

mod error;
mod messages;

pub use error::{XgError, XgErrorKind};
pub use messages::{
    CoreKind, CoreMsg, HammerKind, HammerMsg, MesiKind, MesiMsg, Message, OsMsg, XgData, XgiKind,
    XgiMsg,
};

/// The set of home-node banks a client routes coherence requests over.
///
/// With sharded home nodes (`SystemConfig::home_banks > 1`) the single
/// Hammer directory / MESI L2 becomes M address-interleaved banks, and
/// every component that used to hold one `home: NodeId` holds a `HomeMap`
/// instead: [`for_block`](HomeMap::for_block) picks the owning bank by the
/// XOR-fold hash in `xg_mem::BlockAddr::bank`, so requestor and responder
/// always agree on which bank homes a block. A single-bank map routes every
/// block to its one node, which keeps the M=1 system identical to the
/// pre-banking layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomeMap {
    banks: Vec<xg_sim::NodeId>,
}

impl HomeMap {
    /// Creates a map over the given bank nodes, in bank order.
    ///
    /// # Panics
    /// Panics if `banks` is empty.
    pub fn new(banks: Vec<xg_sim::NodeId>) -> Self {
        assert!(!banks.is_empty(), "home map needs at least one bank");
        HomeMap { banks }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether the map is empty (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// The bank nodes in bank order.
    pub fn nodes(&self) -> &[xg_sim::NodeId] {
        &self.banks
    }

    /// The home bank owning `block`.
    pub fn for_block(&self, block: xg_mem::BlockAddr) -> xg_sim::NodeId {
        self.banks[block.bank(self.banks.len())]
    }

    /// Whether `node` is one of the banks (i.e. "did this come from home?").
    pub fn contains(&self, node: xg_sim::NodeId) -> bool {
        self.banks.contains(&node)
    }
}

impl From<xg_sim::NodeId> for HomeMap {
    /// A single-bank map — the pre-banking "one home node" shape.
    fn from(home: xg_sim::NodeId) -> Self {
        HomeMap { banks: vec![home] }
    }
}

/// Simulator specialized to the system message type.
pub type Sim = xg_sim::Simulator<Message>;
/// Simulation builder specialized to the system message type.
pub type SimBuilder = xg_sim::SimBuilder<Message>;
/// Component context specialized to the system message type.
pub type Ctx<'a> = xg_sim::Ctx<'a, Message>;

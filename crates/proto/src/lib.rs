//! # xg-proto — shared protocol message vocabulary
//!
//! Every controller in the Crossing Guard system exchanges values of one
//! [`Message`] enum. Think of this crate as the set of wire formats:
//!
//! * [`CoreMsg`] — a processing core's load/store interface to its cache.
//! * [`HammerMsg`] — the AMD-Hammer-like exclusive MOESI host protocol
//!   (implemented in `xg-host-hammer`).
//! * [`MesiMsg`] — the inclusive two-level MESI host protocol (implemented
//!   in `xg-host-mesi`).
//! * [`XgiMsg`] — **the Crossing Guard interface** (paper §2.1): the
//!   standardized, minimal message set an accelerator uses. Five requests,
//!   four responses, one host-initiated request, three responses to it.
//! * [`OsMsg`] — error reports Crossing Guard raises to the OS (paper §2.2).
//!
//! Keeping all message types in one enum lets heterogeneous controllers
//! share one simulator instantiation, and — crucially for the safety story —
//! lets the fuzzer hand *any* message to *any* controller, so we can test
//! that Crossing Guard tolerates arbitrary garbage while host controllers
//! merely count (rather than crash on) impossible events.

#![forbid(unsafe_code)]

mod error;
mod messages;

pub use error::{XgError, XgErrorKind};
pub use messages::{
    CoreKind, CoreMsg, HammerKind, HammerMsg, MesiKind, MesiMsg, Message, OsMsg, XgData, XgiKind,
    XgiMsg,
};

/// Simulator specialized to the system message type.
pub type Sim = xg_sim::Simulator<Message>;
/// Simulation builder specialized to the system message type.
pub type SimBuilder = xg_sim::SimBuilder<Message>;
/// Component context specialized to the system message type.
pub type Ctx<'a> = xg_sim::Ctx<'a, Message>;

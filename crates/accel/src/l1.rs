//! The single-level accelerator L1 of the paper's Table 1.
//!
//! ## Transition matrix (Table 1, reproduced by this implementation)
//!
//! | state | Load | Store | Replacement | Invalidate | DataM | DataE | DataS | WbAck |
//! |-------|------|-------|-------------|------------|-------|-------|-------|-------|
//! | M     | hit  | hit   | issue PutM / B | send DirtyWb / I | — | — | — | — |
//! | E     | hit  | hit / M | issue PutE / B | send CleanWb / I | — | — | — | — |
//! | S     | hit  | issue GetM / B | issue PutS / B | send InvAck / I | — | — | — | — |
//! | I     | issue GetS / B | issue GetM / B | — | send InvAck | — | — | — | — |
//! | B     | stall | stall | stall | send InvAck | / M | / E | / S | / I |
//!
//! Four stable states and **one** transient state; the accelerator never
//! counts acks, never sees another cache, and never handles a race other
//! than its own Put crossing an Invalidate (resolved by answering `InvAck`
//! from `B` and awaiting the guaranteed `WbAck`). The `tests` module holds
//! a conformance test that walks this table entry by entry.

use std::collections::HashMap;

use xg_mem::{BlockAddr, DataBlock, Replacement, SetAssocCache};
use xg_proto::{CoreKind, CoreMsg, Ctx, Message, XgData, XgiKind, XgiMsg};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

/// Coherence sophistication of an [`AccelL1`] (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccelMode {
    /// Full MESI — the Table 1 protocol.
    #[default]
    Mesi,
    /// MSI: treat `DataE` as `DataM` and send only dirty writebacks.
    Msi,
    /// VI: issue only `GetM`; every resident block is writable.
    Vi,
}

/// Next-line prefetching (paper §1: "an accelerator that performs mostly
/// streaming accesses may prefetch aggressively"). On every demand miss
/// the cache also requests the following `degree` accelerator blocks —
/// perfectly legal interface traffic, since prefetches are ordinary
/// `GetS`/`GetM` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prefetch {
    /// No prefetching.
    #[default]
    Off,
    /// Fetch the next `degree` sequential blocks on each demand miss.
    NextLine {
        /// How many blocks ahead to fetch.
        degree: usize,
    },
}

/// Configuration for an [`AccelL1`].
#[derive(Debug, Clone)]
pub struct AccelL1Config {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Seed for random replacement.
    pub seed: u64,
    /// Accelerator block size in host (64 B) blocks; Crossing Guard
    /// translates when this is > 1 (paper §2.5).
    pub block_blocks: usize,
    /// Protocol sophistication.
    pub mode: AccelMode,
    /// Prefetching policy.
    pub prefetch: Prefetch,
}

impl Default for AccelL1Config {
    fn default() -> Self {
        AccelL1Config {
            sets: 64,
            ways: 4,
            replacement: Replacement::Lru,
            seed: 0,
            block_blocks: 1,
            mode: AccelMode::Mesi,
            prefetch: Prefetch::Off,
        }
    }
}

/// Stable states of the Table 1 protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AState {
    M,
    E,
    S,
}

impl AState {
    fn name(self) -> &'static str {
        match self {
            AState::M => "M",
            AState::E => "E",
            AState::S => "S",
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    state: AState,
    data: Vec<DataBlock>,
    /// Brought in by the prefetcher and not yet demanded.
    prefetched: bool,
}

/// The single transient state `B`: exactly one request outstanding.
#[derive(Debug)]
struct Pending {
    is_put: bool,
    is_prefetch: bool,
    waiting: Vec<(NodeId, CoreMsg)>,
    started: Cycle,
}

#[derive(Debug, Default)]
struct Stats {
    loads: u64,
    stores: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    invalidations: u64,
    stalls: u64,
    prefetches_issued: u64,
    prefetch_hits: u64,
    protocol_violation: u64,
    /// Cycles from issuing a Get below to its grant arriving.
    lat_miss: Histogram,
    /// Outstanding-miss (MSHR) population, sampled at each new allocation.
    mshr_occupancy: Histogram,
}

/// The Table 1 accelerator cache. `below` is its Crossing Guard — or, in
/// the two-level organization, the shared accelerator L2, which exposes the
/// same interface.
pub struct AccelL1 {
    name: String,
    below: NodeId,
    cfg: AccelL1Config,
    cache: SetAssocCache<Line>,
    pending: HashMap<BlockAddr, Pending>,
    stats: Stats,
    coverage: CoverageSet,
}

impl AccelL1 {
    /// Creates an accelerator L1 above `below` (a Crossing Guard or an
    /// [`crate::AccelL2`]).
    ///
    /// # Panics
    /// Panics if `cfg.block_blocks` is zero.
    pub fn new(name: impl Into<String>, below: NodeId, cfg: AccelL1Config) -> Self {
        assert!(cfg.block_blocks >= 1, "block_blocks must be at least 1");
        AccelL1 {
            name: name.into(),
            below,
            cache: SetAssocCache::new(cfg.sets, cfg.ways, cfg.replacement, cfg.seed),
            pending: HashMap::new(),
            cfg,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
        }
    }

    /// Impossible-event counter; stays zero against a conforming interface.
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    /// Every `(state, event)` pair the paper's Table 1 defines as
    /// reachable for the full-MESI mode, in the coverage vocabulary used
    /// by this controller. `(B, Repl)` is listed as "stall" in Table 1 but
    /// is unreachable here by construction (victims are only ever chosen
    /// among stable lines), so it is excluded. The §4.1 methodology
    /// compares stress-test coverage against exactly this set.
    pub fn table1_expected() -> xg_sim::CoverageSet {
        let mut set = xg_sim::CoverageSet::new();
        for state in ["M", "E", "S"] {
            for event in ["Load", "Store", "Repl", "Inv"] {
                set.visit(state, event);
            }
        }
        for event in ["Load", "Store", "Inv"] {
            set.visit("I", event);
        }
        for event in ["Load", "Store", "Inv", "DataS", "DataE", "DataM", "WbAck"] {
            set.visit("B", event);
        }
        set
    }

    /// The state name for `line_addr` (Table 1 vocabulary: M/E/S/I/B).
    pub fn state_of(&self, line_addr: BlockAddr) -> &'static str {
        if self.pending.contains_key(&line_addr) {
            "B"
        } else if let Some(line) = self.cache.get(line_addr) {
            line.state.name()
        } else {
            "I"
        }
    }

    fn line_addr(&self, block: BlockAddr) -> BlockAddr {
        block.align_down(self.cfg.block_blocks as u64)
    }

    fn cover(&mut self, line_addr: BlockAddr, event: &'static str) {
        let state = self.state_of(line_addr);
        self.coverage.visit(state, event);
    }

    fn violation(&mut self) {
        self.stats.protocol_violation += 1;
    }

    fn send_below(&self, addr: BlockAddr, kind: XgiKind, ctx: &mut Ctx<'_>) {
        ctx.send(self.below, XgiMsg::new(addr, kind).into());
    }

    // ----- core side -------------------------------------------------------

    fn handle_core(&mut self, from: NodeId, msg: CoreMsg, ctx: &mut Ctx<'_>) {
        let la = self.line_addr(msg.addr.block());
        match msg.kind {
            CoreKind::Load => {
                self.cover(la, "Load");
                self.stats.loads += 1;
            }
            CoreKind::Store { .. } => {
                self.cover(la, "Store");
                self.stats.stores += 1;
            }
            CoreKind::Flush => {
                self.cover(la, "Flush");
            }
            _ => {
                self.violation();
                return;
            }
        }
        if let Some(p) = self.pending.get_mut(&la) {
            // Table 1: B + Load/Store → stall.
            self.stats.stalls += 1;
            p.waiting.push((from, msg));
            return;
        }
        let sub = (msg.addr.block().as_u64() - la.as_u64()) as usize;
        let offset = msg.addr.block_offset() & !7;
        match msg.kind {
            CoreKind::Load => {
                if let Some(line) = self.cache.get_mut(la) {
                    self.stats.hits += 1;
                    if std::mem::take(&mut line.prefetched) {
                        self.stats.prefetch_hits += 1;
                    }
                    let value = line.data[sub].read_u64(offset);
                    ctx.send(
                        from,
                        CoreMsg {
                            id: msg.id,
                            addr: msg.addr,
                            kind: CoreKind::LoadResp { value },
                        }
                        .into(),
                    );
                } else {
                    self.stats.misses += 1;
                    let req = match self.cfg.mode {
                        AccelMode::Vi => XgiKind::GetM,
                        _ => XgiKind::GetS,
                    };
                    self.start_get(la, req, (from, msg), ctx);
                }
            }
            CoreKind::Flush => {
                if let Some(line) = self.cache.remove(la) {
                    // Push the block down through the ordinary Put path;
                    // answer once the WbAck lands (the flush op rides the
                    // pending list and is re-handled on an absent line).
                    self.start_put(la, line, ctx);
                    self.pending
                        .get_mut(&la)
                        .expect("start_put pends")
                        .waiting
                        .push((from, msg));
                } else {
                    ctx.send(
                        from,
                        CoreMsg {
                            id: msg.id,
                            addr: msg.addr,
                            kind: CoreKind::FlushResp,
                        }
                        .into(),
                    );
                }
            }
            CoreKind::Store { value } => match self.cache.get(la).map(|l| l.state) {
                Some(AState::M) | Some(AState::E) => {
                    self.stats.hits += 1;
                    let line = self.cache.get_mut(la).expect("present");
                    if std::mem::take(&mut line.prefetched) {
                        self.stats.prefetch_hits += 1;
                    }
                    line.data[sub].write_u64(offset, value);
                    line.state = AState::M; // Table 1: E + Store → hit / M
                    ctx.send(
                        from,
                        CoreMsg {
                            id: msg.id,
                            addr: msg.addr,
                            kind: CoreKind::StoreResp,
                        }
                        .into(),
                    );
                }
                Some(AState::S) => {
                    // Table 1: S + Store → issue GetM / B (copy dropped;
                    // DataM will carry fresh data).
                    self.stats.misses += 1;
                    self.cache.remove(la);
                    self.start_get(la, XgiKind::GetM, (from, msg), ctx);
                }
                None => {
                    self.stats.misses += 1;
                    self.start_get(la, XgiKind::GetM, (from, msg), ctx);
                }
            },
            _ => unreachable!("filtered above"),
        }
    }

    fn start_get(&mut self, la: BlockAddr, req: XgiKind, op: (NodeId, CoreMsg), ctx: &mut Ctx<'_>) {
        self.pending.insert(
            la,
            Pending {
                is_put: false,
                is_prefetch: false,
                waiting: vec![op],
                started: ctx.now(),
            },
        );
        self.stats.mshr_occupancy.record(self.pending.len() as u64);
        self.send_below(la, req.clone(), ctx);
        // A demand miss trains the next-line prefetcher.
        if let Prefetch::NextLine { degree } = self.cfg.prefetch {
            for i in 1..=degree as u64 {
                let next = la.offset(i * self.cfg.block_blocks as u64);
                if self.cache.contains(next) || self.pending.contains_key(&next) {
                    continue;
                }
                self.pending.insert(
                    next,
                    Pending {
                        is_put: false,
                        is_prefetch: true,
                        waiting: Vec::new(),
                        started: ctx.now(),
                    },
                );
                self.stats.prefetches_issued += 1;
                self.send_below(next, req.clone(), ctx);
            }
        }
    }

    // ----- interface side ---------------------------------------------------

    fn handle_xgi(&mut self, msg: XgiMsg, ctx: &mut Ctx<'_>) {
        let la = msg.addr;
        ctx.trace(la.as_u64(), "accel-l1", "RecvXg", || {
            format!("{} (state {})", msg.kind, self.state_of(la))
        });
        match msg.kind {
            XgiKind::DataS { data } => {
                self.cover(la, "DataS");
                let state = match self.cfg.mode {
                    AccelMode::Vi => AState::M,
                    _ => AState::S,
                };
                self.grant(la, data, state, ctx);
            }
            XgiKind::DataE { data } => {
                self.cover(la, "DataE");
                let state = match self.cfg.mode {
                    AccelMode::Mesi => AState::E,
                    AccelMode::Msi | AccelMode::Vi => AState::M,
                };
                self.grant(la, data, state, ctx);
            }
            XgiKind::DataM { data } => {
                self.cover(la, "DataM");
                self.grant(la, data, AState::M, ctx);
            }
            XgiKind::WbAck => {
                self.cover(la, "WbAck");
                match self.pending.remove(&la) {
                    Some(p) if p.is_put => {
                        self.stats.writebacks += 1;
                        self.drain(p.waiting, ctx);
                    }
                    Some(p) => {
                        self.pending.insert(la, p);
                        self.violation();
                    }
                    None => self.violation(),
                }
            }
            XgiKind::Inv => {
                self.cover(la, "Inv");
                self.stats.invalidations += 1;
                self.handle_inv(la, ctx);
            }
            _ => self.violation(),
        }
    }

    fn grant(&mut self, la: BlockAddr, data: XgData, state: AState, ctx: &mut Ctx<'_>) {
        if data.len() != self.cfg.block_blocks {
            self.violation();
            return;
        }
        match self.pending.remove(&la) {
            Some(p) if !p.is_put => {
                self.stats
                    .lat_miss
                    .record(ctx.now().saturating_since(p.started));
                ctx.span(la.as_u64(), "miss", p.started);
                let is_prefetch = p.is_prefetch;
                self.install(
                    la,
                    Line {
                        state,
                        data: data.blocks().to_vec(),
                        prefetched: is_prefetch,
                    },
                    ctx,
                );
                ctx.note_progress();
                self.drain(p.waiting, ctx);
            }
            Some(p) => {
                self.pending.insert(la, p);
                self.violation();
            }
            None => self.violation(),
        }
    }

    fn handle_inv(&mut self, la: BlockAddr, ctx: &mut Ctx<'_>) {
        if let Some(line) = self.cache.remove(la) {
            let data = XgData::from_blocks(line.data);
            let resp = match (line.state, self.cfg.mode) {
                // MSI/VI modes hold no clean-exclusive state; everything
                // owned is written back dirty.
                (AState::M, _) => XgiKind::DirtyWb { data },
                (AState::E, AccelMode::Mesi) => XgiKind::CleanWb { data },
                (AState::E, _) => XgiKind::DirtyWb { data },
                (AState::S, _) => XgiKind::InvAck,
            };
            self.send_below(la, resp, ctx);
        } else {
            // I or B: Table 1 says InvAck, no further action. A pending
            // request stays pending — its one response is still owed.
            self.send_below(la, XgiKind::InvAck, ctx);
        }
    }

    fn install(&mut self, la: BlockAddr, line: Line, ctx: &mut Ctx<'_>) {
        if let Some((victim_addr, victim)) = self
            .cache
            .take_victim_where(la, |a, _| !self.pending.contains_key(&a))
        {
            self.start_put(victim_addr, victim, ctx);
        }
        if self.cache.needs_eviction(la) {
            // Every way is mid-transaction; extremely small caches only.
            // Forward progress is preserved by serving the request straight
            // from the in-flight data without caching it.
            self.stats.stalls += 1;
            return;
        }
        let evicted = self.cache.insert(la, line);
        debug_assert!(evicted.is_none());
    }

    fn start_put(&mut self, la: BlockAddr, line: Line, ctx: &mut Ctx<'_>) {
        // The victim was already pulled out of the array; record the
        // replacement against its true stable state.
        self.coverage.visit(line.state.name(), "Repl");
        let data = XgData::from_blocks(line.data);
        let req = match (line.state, self.cfg.mode) {
            (AState::M, _) => XgiKind::PutM { data },
            (AState::E, AccelMode::Mesi) => XgiKind::PutE { data },
            (AState::E, _) => XgiKind::PutM { data },
            (AState::S, _) => XgiKind::PutS,
        };
        self.pending.insert(
            la,
            Pending {
                is_put: true,
                is_prefetch: false,
                waiting: Vec::new(),
                started: ctx.now(),
            },
        );
        self.stats.mshr_occupancy.record(self.pending.len() as u64);
        self.send_below(la, req, ctx);
    }

    fn drain(&mut self, waiting: Vec<(NodeId, CoreMsg)>, ctx: &mut Ctx<'_>) {
        for (from, msg) in waiting {
            self.handle_core(from, msg, ctx);
        }
    }
}

impl Component<Message> for AccelL1 {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        match msg {
            Message::Core(c) => self.handle_core(from, c, ctx),
            Message::Xgi(x) => {
                if from == self.below {
                    self.handle_xgi(x, ctx);
                } else {
                    self.violation();
                }
            }
            _ => self.violation(),
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.loads"), self.stats.loads);
        out.add(format!("{n}.stores"), self.stats.stores);
        out.add(format!("{n}.hits"), self.stats.hits);
        out.add(format!("{n}.misses"), self.stats.misses);
        out.add(format!("{n}.writebacks"), self.stats.writebacks);
        out.add(format!("{n}.invalidations"), self.stats.invalidations);
        out.add(format!("{n}.stalls"), self.stats.stalls);
        out.add(
            format!("{n}.prefetches_issued"),
            self.stats.prefetches_issued,
        );
        out.add(format!("{n}.prefetch_hits"), self.stats.prefetch_hits);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        out.record_coverage(format!("accel_l1/{n}"), &self.coverage);
        out.record_hist(format!("{n}.lat.miss"), &self.stats.lat_miss);
        out.record_hist(format!("{n}.mshr_occupancy"), &self.stats.mshr_occupancy);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

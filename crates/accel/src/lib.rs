//! # xg-accel — example accelerator cache hierarchies
//!
//! Accelerator-side caches speaking the standardized Crossing Guard
//! interface (paper §2.1). Two organizations, matching the paper's two
//! example accelerator protocols:
//!
//! * [`AccelL1`] — the **single-level MESI cache of Table 1**: four stable
//!   states (`M E S I`) plus a *single* transient state `B`. Compare with
//!   the host protocols' half-dozen transients and response counting — that
//!   gap is the paper's simplicity argument, and the conformance test in
//!   this crate checks the implementation against Table 1 entry by entry.
//! * [`AccelL2`] — a shared, inclusive accelerator L2 that coordinates
//!   sharing among several per-core [`AccelL1`]s and presents a single
//!   cache to Crossing Guard (the two-level organization of Figure 2(d)).
//!   Internally it re-uses the same standardized interface downward — a
//!   legal accelerator-designer choice (the internal protocol is invisible
//!   to host and XG alike) that also demonstrates the interface composes
//!   hierarchically.
//!
//! [`AccelL1`] also implements the degraded modes of §2.1 — an accelerator
//! that values simplicity over performance can treat messages uniformly:
//! [`AccelMode::Msi`] treats `DataE` as `DataM` (and only ever writes back
//! dirty), and [`AccelMode::Vi`] issues nothing but `GetM`. Both remain
//! fully coherent through the same interface.
//!
//! Accelerator block sizes that are multiples of the 64 B host block are
//! supported end-to-end ([`AccelL1Config::block_blocks`]); Crossing Guard
//! performs the merge/split (paper §2.5).

#![forbid(unsafe_code)]

pub mod l1;
pub mod l2;

#[cfg(test)]
mod tests;

pub use l1::{AccelL1, AccelL1Config, AccelMode, Prefetch};
pub use l2::{AccelL2, AccelL2Config};

//! The shared, inclusive accelerator L2 (two-level organization).
//!
//! Sits between several [`crate::AccelL1`]s and one Crossing Guard,
//! coordinating sharing among the L1s so data can move between accelerator
//! cores *without* crossing into the host (paper §2.4). It speaks the
//! standardized interface in both directions:
//!
//! * **Downward** it plays the Crossing Guard role for its L1s: grants
//!   `DataS`/`DataE`/`DataM`, acks every `Put`, and issues `Inv` when it
//!   needs a block back (sharing, host demand, or inclusive eviction).
//! * **Upward** it is an ordinary accelerator cache: `GetS`/`GetM`/`Put*`
//!   requests, `Inv` demands answered with `InvAck`/`CleanWb`/`DirtyWb`.
//!
//! Per block it tracks the host-granted state (S/E/M), a dirty bit, the L1
//! sharer set, and the owning L1. Multi-step flows (recalls before grants,
//! host invalidations, inclusive evictions) serialize per block.

use std::collections::{BTreeSet, HashMap, VecDeque};

use xg_mem::{BlockAddr, DataBlock, Replacement, SetAssocCache};
use xg_proto::{Ctx, Message, XgData, XgiKind, XgiMsg};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

/// Configuration for an [`AccelL2`].
#[derive(Debug, Clone)]
pub struct AccelL2Config {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Seed for random replacement.
    pub seed: u64,
    /// Accelerator block size in host blocks (must match the L1s).
    pub block_blocks: usize,
    /// Weak internal sharing (paper §2.1): a writing L1 does **not**
    /// invalidate its siblings' shared copies; their reads may return
    /// stale data until they flush. The host side stays fully coherent —
    /// only intra-accelerator visibility is relaxed, and the programming
    /// model demands explicit flushes for cross-core handoff.
    pub weak_sharing: bool,
}

impl Default for AccelL2Config {
    fn default() -> Self {
        AccelL2Config {
            sets: 128,
            ways: 8,
            replacement: Replacement::Lru,
            seed: 0,
            block_blocks: 1,
            weak_sharing: false,
        }
    }
}

/// Host-granted state of a resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Host {
    S,
    E,
    M,
}

#[derive(Debug, Clone)]
struct L2Line {
    data: Vec<DataBlock>,
    dirty: bool,
    host: Host,
    sharers: BTreeSet<NodeId>,
    owner: Option<NodeId>,
}

#[derive(Debug)]
enum Busy {
    /// Upward Get in flight.
    Fetch { requestor: NodeId, want_m: bool },
    /// Fetched data parked until a way frees.
    InstallWait {
        requestor: NodeId,
        want_m: bool,
        data: Vec<DataBlock>,
        host: Host,
    },
    /// Invalidating L1 holders before granting to `requestor`.
    RecallForGrant {
        requestor: NodeId,
        want_m: bool,
        pending: u32,
    },
    /// Invalidating L1 holders before answering a host `Inv`.
    HostInv { pending: u32 },
    /// Invalidating L1 holders before an inclusive eviction; the line has
    /// been pulled out of the array into here.
    EvictRecall { pending: u32, line: L2Line },
    /// Upward Put in flight for an evicted block.
    EvictPut,
}

#[derive(Debug, Default)]
struct Stats {
    l1_gets: u64,
    l1_getms: u64,
    l1_puts: u64,
    up_gets: u64,
    up_puts: u64,
    recalls: u64,
    host_invs: u64,
    install_retries: u64,
    protocol_violation: u64,
    /// Cycles from issuing an upward Get to its grant arriving.
    lat_up_get: Histogram,
    /// Busy-table (MSHR) population, sampled at each new allocation.
    mshr_occupancy: Histogram,
}

/// The shared inclusive accelerator L2.
pub struct AccelL2 {
    name: String,
    below: NodeId,
    cfg: AccelL2Config,
    array: SetAssocCache<L2Line>,
    busy: HashMap<BlockAddr, Busy>,
    /// Issue times of in-flight upward Gets, for the `lat.up_get` histogram.
    fetch_started: HashMap<BlockAddr, Cycle>,
    queues: HashMap<BlockAddr, VecDeque<(NodeId, XgiKind)>>,
    stats: Stats,
    coverage: CoverageSet,
}

impl AccelL2 {
    /// Creates a shared accelerator L2 above `below` (its Crossing Guard).
    ///
    /// # Panics
    /// Panics if `cfg.block_blocks` is zero.
    pub fn new(name: impl Into<String>, below: NodeId, cfg: AccelL2Config) -> Self {
        assert!(cfg.block_blocks >= 1, "block_blocks must be at least 1");
        AccelL2 {
            name: name.into(),
            below,
            array: SetAssocCache::new(cfg.sets, cfg.ways, cfg.replacement, cfg.seed),
            busy: HashMap::new(),
            fetch_started: HashMap::new(),
            queues: HashMap::new(),
            cfg,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
        }
    }

    /// Impossible-event counter; stays zero against conforming L1s and XG.
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    fn violation(&mut self) {
        self.stats.protocol_violation += 1;
    }

    fn state_name(&self, addr: BlockAddr) -> &'static str {
        if let Some(b) = self.busy.get(&addr) {
            match b {
                Busy::Fetch { .. } => "Busy_Fetch",
                Busy::InstallWait { .. } => "Busy_Install",
                Busy::RecallForGrant { .. } => "Busy_Recall",
                Busy::HostInv { .. } => "Busy_HostInv",
                Busy::EvictRecall { .. } => "Busy_EvictRecall",
                Busy::EvictPut => "Busy_EvictPut",
            }
        } else if let Some(line) = self.array.get(addr) {
            if line.owner.is_some() {
                "Owned"
            } else if line.sharers.is_empty() {
                "Present"
            } else {
                "Shared"
            }
        } else {
            "NP"
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.state_name(addr);
        self.coverage.visit(state, event);
    }

    fn xg_data(&mut self, data: &XgData) -> Option<Vec<DataBlock>> {
        if data.len() == self.cfg.block_blocks {
            Some(data.blocks().to_vec())
        } else {
            self.violation();
            None
        }
    }

    // ----- dispatch ---------------------------------------------------------

    fn handle_xgi(&mut self, from: NodeId, msg: XgiMsg, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        ctx.trace(addr.as_u64(), "accel-l2", "Recv", || {
            let side = if from == self.below { "xg" } else { "l1" };
            format!(
                "{} from {side} (busy={})",
                msg.kind,
                self.busy.contains_key(&addr)
            )
        });
        self.cover(addr, kind_event(&msg.kind));
        if from == self.below {
            self.handle_from_xg(addr, msg.kind, ctx);
        } else {
            self.handle_from_l1(from, addr, msg.kind, ctx);
        }
    }

    fn handle_from_l1(&mut self, from: NodeId, addr: BlockAddr, kind: XgiKind, ctx: &mut Ctx<'_>) {
        match kind {
            XgiKind::GetS | XgiKind::GetM => {
                if self.busy.contains_key(&addr) {
                    self.queues.entry(addr).or_default().push_back((from, kind));
                    return;
                }
                self.process_l1_get(from, addr, matches!(kind, XgiKind::GetM), ctx);
            }
            XgiKind::PutS => self.process_l1_put(from, addr, None, false, ctx),
            XgiKind::PutE { data } => {
                let d = self.xg_data(&data);
                self.process_l1_put(from, addr, d, false, ctx);
            }
            XgiKind::PutM { data } => {
                let d = self.xg_data(&data);
                self.process_l1_put(from, addr, d, true, ctx);
            }
            // Responses to our own recalls.
            XgiKind::InvAck => self.recall_response(from, addr, None, false, ctx),
            XgiKind::CleanWb { data } => {
                let d = self.xg_data(&data);
                self.recall_response(from, addr, d, false, ctx);
            }
            XgiKind::DirtyWb { data } => {
                let d = self.xg_data(&data);
                self.recall_response(from, addr, d, true, ctx);
            }
            _ => self.violation(),
        }
    }

    fn handle_from_xg(&mut self, addr: BlockAddr, kind: XgiKind, ctx: &mut Ctx<'_>) {
        match kind {
            XgiKind::DataS { data } => self.up_grant(addr, data, Host::S, ctx),
            XgiKind::DataE { data } => self.up_grant(addr, data, Host::E, ctx),
            XgiKind::DataM { data } => self.up_grant(addr, data, Host::M, ctx),
            XgiKind::WbAck => {
                if matches!(self.busy.get(&addr), Some(Busy::EvictPut)) {
                    self.busy.remove(&addr);
                    self.drain(addr, ctx);
                } else {
                    self.violation();
                }
            }
            XgiKind::Inv => {
                // Invariant: a guard Inv must never end up waiting on a
                // transaction that itself waits on the guard — that is a
                // deadlock cycle (our request parks at the guard behind its
                // own inv_pending). Transactions that depend on the guard
                // are answered immediately; only guard-independent internal
                // recalls may briefly queue the Inv (and the drain pulls
                // guard Invs out with priority).
                match self.busy.get(&addr) {
                    // Our own Get crossed this Inv on the ordered link: we
                    // hold nothing yet (the Table 1 `B + Inv → InvAck` rule
                    // lifted to the L2).
                    Some(Busy::Fetch { .. }) => {
                        ctx.send(self.below, XgiMsg::new(addr, XgiKind::InvAck).into());
                    }
                    // Our eviction's Put crossed this Inv: the guard will
                    // consume the Put's data (the interface's one legal
                    // race) and the ordered link guarantees it sees the Put
                    // before this ack.
                    Some(Busy::EvictPut) => {
                        ctx.send(self.below, XgiMsg::new(addr, XgiKind::InvAck).into());
                    }
                    // A grant arrived but is parked waiting for a way: the
                    // Inv outranks it. Surrender the parked data and
                    // re-fetch for the waiting L1.
                    Some(Busy::InstallWait { .. }) => {
                        let Some(Busy::InstallWait {
                            requestor,
                            want_m,
                            data,
                            host,
                        }) = self.busy.remove(&addr)
                        else {
                            unreachable!("checked above")
                        };
                        let resp = match host {
                            Host::M => XgiKind::DirtyWb {
                                data: XgData::from_blocks(data),
                            },
                            Host::E => XgiKind::CleanWb {
                                data: XgData::from_blocks(data),
                            },
                            Host::S => XgiKind::InvAck,
                        };
                        ctx.send(self.below, XgiMsg::new(addr, resp).into());
                        self.stats.up_gets += 1;
                        self.fetch_started.insert(addr, ctx.now());
                        self.busy.insert(addr, Busy::Fetch { requestor, want_m });
                        self.stats.mshr_occupancy.record(self.busy.len() as u64);
                        let req = if want_m { XgiKind::GetM } else { XgiKind::GetS };
                        ctx.send(self.below, XgiMsg::new(addr, req).into());
                    }
                    Some(_) => {
                        // Internal recalls resolve without the guard.
                        self.queues
                            .entry(addr)
                            .or_default()
                            .push_back((self.below, XgiKind::Inv));
                    }
                    None => self.process_host_inv(addr, ctx),
                }
            }
            _ => self.violation(),
        }
    }

    // ----- L1-side flows ----------------------------------------------------

    fn process_l1_get(&mut self, from: NodeId, addr: BlockAddr, want_m: bool, ctx: &mut Ctx<'_>) {
        if want_m {
            self.stats.l1_getms += 1;
        } else {
            self.stats.l1_gets += 1;
        }
        let Some(line) = self.array.get(addr) else {
            self.stats.up_gets += 1;
            self.fetch_started.insert(addr, ctx.now());
            self.busy.insert(
                addr,
                Busy::Fetch {
                    requestor: from,
                    want_m,
                },
            );
            self.stats.mshr_occupancy.record(self.busy.len() as u64);
            let req = if want_m { XgiKind::GetM } else { XgiKind::GetS };
            ctx.send(self.below, XgiMsg::new(addr, req).into());
            return;
        };

        // Who has to give the block up before we can grant?
        let mut recall: Vec<NodeId> = Vec::new();
        let mut owner_rerequest = false;
        if let Some(owner) = line.owner {
            if owner != from {
                recall.push(owner);
            } else {
                // An owner re-requesting is a confused L1.
                owner_rerequest = true;
            }
        }
        if want_m && !self.cfg.weak_sharing {
            recall.extend(line.sharers.iter().copied().filter(|&s| s != from));
        }
        if owner_rerequest {
            self.violation();
        }
        if !recall.is_empty() {
            self.stats.recalls += 1;
            let pending = recall.len() as u32;
            for l1 in recall {
                ctx.send(l1, XgiMsg::new(addr, XgiKind::Inv).into());
            }
            self.busy.insert(
                addr,
                Busy::RecallForGrant {
                    requestor: from,
                    want_m,
                    pending,
                },
            );
            return;
        }
        self.grant_l1(from, addr, want_m, false, ctx);
    }

    /// Grants to an L1 once no conflicting holder remains. `prefer_shared`
    /// is set when a *read* just recalled the previous owner: granting S
    /// (instead of clean-exclusive) lets a reader community form instead of
    /// ping-ponging E between alternating readers.
    fn grant_l1(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        want_m: bool,
        prefer_shared: bool,
        ctx: &mut Ctx<'_>,
    ) {
        let below = self.below;
        let Some(line) = self.array.get_mut(addr) else {
            self.violation();
            return;
        };
        if want_m && line.host == Host::S {
            // Upgrade needed from the host before we can grant M.
            self.stats.up_gets += 1;
            self.fetch_started.insert(addr, ctx.now());
            self.busy.insert(
                addr,
                Busy::Fetch {
                    requestor: from,
                    want_m: true,
                },
            );
            self.stats.mshr_occupancy.record(self.busy.len() as u64);
            ctx.send(below, XgiMsg::new(addr, XgiKind::GetM).into());
            return;
        }
        let data = XgData::from_blocks(line.data.clone());
        let kind = if want_m {
            if !self.cfg.weak_sharing {
                line.sharers.clear();
            } else {
                // Weak sharing: siblings keep (possibly stale) S copies;
                // the new owner's writes become visible to them only after
                // both sides flush.
                line.sharers.remove(&from);
            }
            line.owner = Some(from);
            XgiKind::DataM { data }
        } else if !prefer_shared
            && line.sharers.is_empty()
            && line.host >= Host::E
            && line.owner.is_none()
        {
            line.owner = Some(from);
            if line.dirty || line.host == Host::M {
                XgiKind::DataM { data }
            } else {
                XgiKind::DataE { data }
            }
        } else {
            line.sharers.insert(from);
            XgiKind::DataS { data }
        };
        ctx.send(from, XgiMsg::new(addr, kind).into());
    }

    fn process_l1_put(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        data: Option<Vec<DataBlock>>,
        dirty: bool,
        ctx: &mut Ctx<'_>,
    ) {
        self.stats.l1_puts += 1;
        // Puts are never queued: the interface promises exactly one
        // response, and the only race (our Inv crossing this Put) is
        // resolved by absorbing or discarding the data.
        if let Some(line) = self.array.get_mut(addr) {
            if line.owner == Some(from) {
                if let Some(d) = data {
                    line.data = d;
                    line.dirty |= dirty;
                }
                line.owner = None;
            } else {
                line.sharers.remove(&from);
            }
        }
        ctx.send(from, XgiMsg::new(addr, XgiKind::WbAck).into());
    }

    fn recall_response(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        data: Option<Vec<DataBlock>>,
        dirty: bool,
        ctx: &mut Ctx<'_>,
    ) {
        // Absorb returned data into wherever the line currently lives.
        if let Some(d) = data {
            if let Some(line) = self.array.get_mut(addr) {
                line.data = d;
                line.dirty |= dirty;
                line.owner = None;
                line.sharers.remove(&from);
            } else if let Some(Busy::EvictRecall { line, .. }) = self.busy.get_mut(&addr) {
                line.data = d;
                line.dirty |= dirty;
            }
        } else if let Some(line) = self.array.get_mut(addr) {
            line.sharers.remove(&from);
            if line.owner == Some(from) {
                line.owner = None;
            }
        }

        let done = match self.busy.get_mut(&addr) {
            Some(
                Busy::RecallForGrant { pending, .. }
                | Busy::HostInv { pending }
                | Busy::EvictRecall { pending, .. },
            ) => {
                *pending -= 1;
                *pending == 0
            }
            _ => {
                self.violation();
                false
            }
        };
        if !done {
            return;
        }
        match self.busy.remove(&addr) {
            Some(Busy::RecallForGrant {
                requestor, want_m, ..
            }) => {
                self.grant_l1(requestor, addr, want_m, !want_m, ctx);
                // grant_l1 may have started an upgrade (busy again).
                self.drain(addr, ctx);
            }
            Some(Busy::HostInv { .. }) => {
                self.respond_host_inv(addr, ctx);
                self.drain(addr, ctx);
            }
            Some(Busy::EvictRecall { line, .. }) => {
                self.start_evict_put(addr, line, ctx);
            }
            _ => unreachable!("checked above"),
        }
    }

    // ----- XG-side flows ----------------------------------------------------

    fn up_grant(&mut self, addr: BlockAddr, data: XgData, host: Host, ctx: &mut Ctx<'_>) {
        let Some(data) = self.xg_data(&data) else {
            return;
        };
        if !matches!(self.busy.get(&addr), Some(Busy::Fetch { .. })) {
            self.violation();
            return;
        }
        let Some(Busy::Fetch { requestor, want_m }) = self.busy.remove(&addr) else {
            unreachable!("checked above")
        };
        if let Some(started) = self.fetch_started.remove(&addr) {
            self.stats
                .lat_up_get
                .record(ctx.now().saturating_since(started));
        }
        if let Some(line) = self.array.get_mut(addr) {
            // Upgrade completion for a resident S line.
            line.host = host.max(Host::E);
            line.data = data;
            self.grant_l1(requestor, addr, want_m, false, ctx);
            self.drain(addr, ctx);
            return;
        }
        self.busy.insert(
            addr,
            Busy::InstallWait {
                requestor,
                want_m,
                data,
                host,
            },
        );
        self.try_install(addr, ctx);
    }

    fn try_install(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        if !matches!(self.busy.get(&addr), Some(Busy::InstallWait { .. })) {
            return;
        }
        if self.array.needs_eviction(addr) {
            let busy = &self.busy;
            match self
                .array
                .take_victim_where(addr, |a, _| !busy.contains_key(&a))
            {
                Some((victim_addr, line)) => self.start_eviction(victim_addr, line, ctx),
                None => {
                    self.stats.install_retries += 1;
                    ctx.wake_in(4, addr.as_u64());
                    return;
                }
            }
        }
        if !matches!(self.busy.get(&addr), Some(Busy::InstallWait { .. })) {
            return;
        }
        let Some(Busy::InstallWait {
            requestor,
            want_m,
            data,
            host,
        }) = self.busy.remove(&addr)
        else {
            unreachable!("checked above")
        };
        self.array.insert(
            addr,
            L2Line {
                data,
                dirty: false,
                host,
                sharers: BTreeSet::new(),
                owner: None,
            },
        );
        self.grant_l1(requestor, addr, want_m, false, ctx);
        self.drain(addr, ctx);
    }

    fn process_host_inv(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        self.stats.host_invs += 1;
        let Some(line) = self.array.get(addr) else {
            // Nothing held (e.g. our Put crossed this Inv).
            ctx.send(self.below, XgiMsg::new(addr, XgiKind::InvAck).into());
            return;
        };
        let holders: Vec<NodeId> = line
            .owner
            .iter()
            .copied()
            .chain(line.sharers.iter().copied())
            .collect();
        if holders.is_empty() {
            self.respond_host_inv(addr, ctx);
            return;
        }
        self.stats.recalls += 1;
        self.busy.insert(
            addr,
            Busy::HostInv {
                pending: holders.len() as u32,
            },
        );
        for l1 in holders {
            ctx.send(l1, XgiMsg::new(addr, XgiKind::Inv).into());
        }
    }

    fn respond_host_inv(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        let Some(line) = self.array.remove(addr) else {
            self.violation();
            return;
        };
        let data = XgData::from_blocks(line.data);
        let resp = match (line.host, line.dirty) {
            (Host::M, _) | (_, true) => XgiKind::DirtyWb { data },
            (Host::E, false) => XgiKind::CleanWb { data },
            (Host::S, false) => XgiKind::InvAck,
        };
        ctx.send(self.below, XgiMsg::new(addr, resp).into());
        ctx.note_progress();
    }

    // ----- inclusive evictions ----------------------------------------------

    fn start_eviction(&mut self, addr: BlockAddr, line: L2Line, ctx: &mut Ctx<'_>) {
        let holders: Vec<NodeId> = line
            .owner
            .iter()
            .copied()
            .chain(line.sharers.iter().copied())
            .collect();
        if holders.is_empty() {
            self.start_evict_put(addr, line, ctx);
            return;
        }
        self.stats.recalls += 1;
        for &l1 in &holders {
            ctx.send(l1, XgiMsg::new(addr, XgiKind::Inv).into());
        }
        self.busy.insert(
            addr,
            Busy::EvictRecall {
                pending: holders.len() as u32,
                line,
            },
        );
    }

    fn start_evict_put(&mut self, addr: BlockAddr, line: L2Line, ctx: &mut Ctx<'_>) {
        self.stats.up_puts += 1;
        let data = XgData::from_blocks(line.data);
        let req = match (line.host, line.dirty) {
            (Host::M, _) | (_, true) => XgiKind::PutM { data },
            (Host::E, false) => XgiKind::PutE { data },
            (Host::S, false) => XgiKind::PutS,
        };
        self.busy.insert(addr, Busy::EvictPut);
        ctx.send(self.below, XgiMsg::new(addr, req).into());
    }

    fn drain(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        loop {
            // Guard Invs drain with priority even when a new busy state has
            // started, so they can never be trapped behind an L1 request
            // that turned into an upward fetch (see handle_from_xg::Inv).
            if self.busy.contains_key(&addr) {
                let below = self.below;
                let pending_inv = self.queues.get_mut(&addr).and_then(|q| {
                    q.iter()
                        .position(|(from, kind)| *from == below && matches!(kind, XgiKind::Inv))
                        .and_then(|i| q.remove(i))
                });
                if let Some((_, kind)) = pending_inv {
                    self.cover(addr, kind_event(&kind));
                    self.handle_from_xg(addr, kind, ctx);
                    continue;
                }
                return;
            }
            let Some(queue) = self.queues.get_mut(&addr) else {
                return;
            };
            let Some((from, kind)) = queue.pop_front() else {
                self.queues.remove(&addr);
                return;
            };
            self.cover(addr, kind_event(&kind));
            if from == self.below {
                self.handle_from_xg(addr, kind, ctx);
            } else {
                match kind {
                    XgiKind::GetS | XgiKind::GetM => {
                        self.process_l1_get(from, addr, matches!(kind, XgiKind::GetM), ctx)
                    }
                    _ => self.violation(),
                }
            }
        }
    }
}

fn kind_event(kind: &XgiKind) -> &'static str {
    kind.mnemonic()
}

impl Component<Message> for AccelL2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        match msg {
            Message::Xgi(x) => self.handle_xgi(from, x, ctx),
            _ => self.violation(),
        }
    }

    fn wake(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        self.try_install(BlockAddr::new(token), ctx);
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.l1_gets"), self.stats.l1_gets);
        out.add(format!("{n}.l1_getms"), self.stats.l1_getms);
        out.add(format!("{n}.l1_puts"), self.stats.l1_puts);
        out.add(format!("{n}.up_gets"), self.stats.up_gets);
        out.add(format!("{n}.up_puts"), self.stats.up_puts);
        out.add(format!("{n}.recalls"), self.stats.recalls);
        out.add(format!("{n}.host_invs"), self.stats.host_invs);
        out.add(format!("{n}.install_retries"), self.stats.install_retries);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        out.record_coverage(format!("accel_l2/{n}"), &self.coverage);
        out.record_hist(format!("{n}.lat.up_get"), &self.stats.lat_up_get);
        out.record_hist(format!("{n}.mshr_occupancy"), &self.stats.mshr_occupancy);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

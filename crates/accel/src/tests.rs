//! Accelerator-protocol tests, including the Table 1 conformance walk.

use std::collections::HashMap;

use xg_mem::{Addr, BlockAddr, DataBlock};
use xg_proto::{CoreKind, CoreMsg, Ctx, Message, XgData, XgiKind, XgiMsg};
use xg_sim::{Component, Link, NodeId, SimBuilder};

use crate::{AccelL1, AccelL1Config, AccelL2, AccelL2Config, AccelMode, Prefetch};

/// A scripted stand-in for Crossing Guard: records every interface message
/// and can answer requests from a trivial memory model.
struct MockGuard {
    name: String,
    /// Everything received, in order.
    log: Vec<XgiMsg>,
    /// When true, answer requests automatically from `memory`.
    auto: bool,
    /// Grant E (instead of S) for GetS when auto-responding.
    grant_e: bool,
    memory: HashMap<BlockAddr, Vec<DataBlock>>,
    blocks: usize,
}

impl MockGuard {
    fn new(auto: bool, grant_e: bool, blocks: usize) -> Self {
        MockGuard {
            name: "mock_xg".into(),
            log: Vec::new(),
            auto,
            grant_e,
            memory: HashMap::new(),
            blocks,
        }
    }

    fn mem(&mut self, addr: BlockAddr) -> Vec<DataBlock> {
        self.memory
            .entry(addr)
            .or_insert_with(|| vec![DataBlock::zeroed(); self.blocks])
            .clone()
    }

    fn kinds(&self) -> Vec<&'static str> {
        self.log.iter().map(|m| m.kind.mnemonic()).collect()
    }
}

impl Component<Message> for MockGuard {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Xgi(m) = msg else { return };
        self.log.push(m.clone());
        if !self.auto {
            return;
        }
        let addr = m.addr;
        match m.kind {
            XgiKind::GetS => {
                let data = XgData::from_blocks(self.mem(addr));
                let kind = if self.grant_e {
                    XgiKind::DataE { data }
                } else {
                    XgiKind::DataS { data }
                };
                ctx.send(from, XgiMsg::new(addr, kind).into());
            }
            XgiKind::GetM => {
                let data = XgData::from_blocks(self.mem(addr));
                ctx.send(from, XgiMsg::new(addr, XgiKind::DataM { data }).into());
            }
            XgiKind::PutM { ref data } | XgiKind::PutE { ref data } => {
                self.memory.insert(addr, data.blocks().to_vec());
                ctx.send(from, XgiMsg::new(addr, XgiKind::WbAck).into());
            }
            XgiKind::PutS => {
                ctx.send(from, XgiMsg::new(addr, XgiKind::WbAck).into());
            }
            XgiKind::DirtyWb { ref data } | XgiKind::CleanWb { ref data } => {
                self.memory.insert(addr, data.blocks().to_vec());
            }
            _ => {}
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Core probe recording responses.
struct Probe {
    name: String,
    responses: Vec<CoreMsg>,
}

impl Component<Message> for Probe {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        if let Message::Core(c) = msg {
            self.responses.push(c);
            ctx.note_progress();
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Rig {
    sim: xg_proto::Sim,
    core: NodeId,
    l1: NodeId,
    xg: NodeId,
    next_id: u64,
}

impl Rig {
    fn new(cfg: AccelL1Config, auto: bool, grant_e: bool) -> Self {
        let blocks = cfg.block_blocks;
        let mut b = SimBuilder::new(7);
        let core = b.add(Box::new(Probe {
            name: "core".into(),
            responses: Vec::new(),
        }));
        let xg_id = NodeId::from_index(2);
        let l1 = b.add(Box::new(AccelL1::new("accel_l1", xg_id, cfg)));
        let xg = b.add(Box::new(MockGuard::new(auto, grant_e, blocks)));
        assert_eq!(xg, xg_id);
        b.default_link(Link::ordered(1, 1));
        Rig {
            sim: b.build(),
            core,
            l1,
            xg,
            next_id: 0,
        }
    }

    fn op(&mut self, kind: CoreKind, addr: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.core,
            self.l1,
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind,
            }
            .into(),
        );
        id
    }

    fn run(&mut self) {
        assert!(self.sim.run_to_quiescence(10_000).quiescent);
    }

    fn state(&self, addr: u64) -> &'static str {
        self.sim
            .get::<AccelL1>(self.l1)
            .unwrap()
            .state_of(Addr::new(addr).block())
    }

    fn xg_kinds(&self) -> Vec<&'static str> {
        self.sim.get::<MockGuard>(self.xg).unwrap().kinds()
    }

    /// Send an interface message from the mock guard to the L1.
    fn xg_send(&mut self, addr: u64, kind: XgiKind) {
        self.sim.post(
            self.xg,
            self.l1,
            XgiMsg::new(Addr::new(addr).block(), kind).into(),
        );
    }

    fn load_value(&self, id: u64) -> Option<u64> {
        self.sim
            .get::<Probe>(self.core)
            .unwrap()
            .responses
            .iter()
            .find_map(|m| match (m.id == id, m.kind) {
                (true, CoreKind::LoadResp { value }) => Some(value),
                _ => None,
            })
    }
}

fn one_block() -> XgData {
    XgData::single(DataBlock::splat(9))
}

// ---------------------------------------------------------------------------
// Table 1 conformance: every (state, event) entry, checked directly.
// ---------------------------------------------------------------------------

#[test]
fn table1_row_i() {
    // I + Load → issue GetS / B
    let mut rig = Rig::new(AccelL1Config::default(), false, false);
    rig.op(CoreKind::Load, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS"]);
    assert_eq!(rig.state(0x100), "B");

    // I + Store → issue GetM / B
    let mut rig = Rig::new(AccelL1Config::default(), false, false);
    rig.op(CoreKind::Store { value: 1 }, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetM"]);
    assert_eq!(rig.state(0x100), "B");

    // I + Invalidate → send InvAck (stay I)
    let mut rig = Rig::new(AccelL1Config::default(), false, false);
    rig.xg_send(0x100, XgiKind::Inv);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["InvAck"]);
    assert_eq!(rig.state(0x100), "I");
}

#[test]
fn table1_row_b() {
    let mut rig = Rig::new(AccelL1Config::default(), false, false);
    rig.op(CoreKind::Load, 0x100);
    rig.run();
    assert_eq!(rig.state(0x100), "B");

    // B + Load/Store → stall (no new interface messages)
    rig.op(CoreKind::Load, 0x100);
    rig.op(CoreKind::Store { value: 2 }, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS"]);
    assert_eq!(rig.state(0x100), "B");

    // B + Invalidate → send InvAck, remain B
    rig.xg_send(0x100, XgiKind::Inv);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS", "InvAck"]);
    assert_eq!(rig.state(0x100), "B");

    // B + DataS → S (queued load served; queued store then upgrades)
    rig.xg_send(0x100, XgiKind::DataS { data: one_block() });
    rig.run();
    // The queued store found S and issued a GetM, so we are B again.
    assert_eq!(rig.xg_kinds(), vec!["GetS", "InvAck", "GetM"]);
    assert_eq!(rig.state(0x100), "B");
    rig.xg_send(0x100, XgiKind::DataM { data: one_block() });
    rig.run();
    assert_eq!(rig.state(0x100), "M");
}

#[test]
fn table1_grants_set_states() {
    for (kind, expect) in [
        (XgiKind::DataS { data: one_block() }, "S"),
        (XgiKind::DataE { data: one_block() }, "E"),
        (XgiKind::DataM { data: one_block() }, "M"),
    ] {
        let mut rig = Rig::new(AccelL1Config::default(), false, false);
        rig.op(CoreKind::Load, 0x100);
        rig.run();
        rig.xg_send(0x100, kind);
        rig.run();
        assert_eq!(rig.state(0x100), expect);
    }
}

#[test]
fn table1_row_s() {
    let fresh_s = || {
        let mut rig = Rig::new(AccelL1Config::default(), false, false);
        rig.op(CoreKind::Load, 0x100);
        rig.run();
        rig.xg_send(0x100, XgiKind::DataS { data: one_block() });
        rig.run();
        assert_eq!(rig.state(0x100), "S");
        rig
    };

    // S + Load → hit (no interface traffic)
    let mut rig = fresh_s();
    let id = rig.op(CoreKind::Load, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS"]);
    assert!(rig.load_value(id).is_some());

    // S + Store → issue GetM / B
    let mut rig = fresh_s();
    rig.op(CoreKind::Store { value: 3 }, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS", "GetM"]);
    assert_eq!(rig.state(0x100), "B");

    // S + Replacement → issue PutS / B   (1-set/1-way forces it)
    let cfg = AccelL1Config {
        sets: 1,
        ways: 1,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, false, false);
    rig.op(CoreKind::Load, 0x100);
    rig.run();
    rig.xg_send(0x100, XgiKind::DataS { data: one_block() });
    rig.run();
    rig.op(CoreKind::Load, 0x140);
    rig.run();
    rig.xg_send(0x140, XgiKind::DataS { data: one_block() });
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS", "GetS", "PutS"]);
    assert_eq!(rig.state(0x100), "B");

    // S + Invalidate → send InvAck / I
    let mut rig = fresh_s();
    rig.xg_send(0x100, XgiKind::Inv);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS", "InvAck"]);
    assert_eq!(rig.state(0x100), "I");
}

#[test]
fn table1_row_e() {
    let fresh_e = || {
        let mut rig = Rig::new(AccelL1Config::default(), false, false);
        rig.op(CoreKind::Load, 0x100);
        rig.run();
        rig.xg_send(0x100, XgiKind::DataE { data: one_block() });
        rig.run();
        assert_eq!(rig.state(0x100), "E");
        rig
    };

    // E + Store → hit / M (silent upgrade, no traffic)
    let mut rig = fresh_e();
    rig.op(CoreKind::Store { value: 4 }, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS"]);
    assert_eq!(rig.state(0x100), "M");

    // E + Invalidate → send Clean Writeback / I
    let mut rig = fresh_e();
    rig.xg_send(0x100, XgiKind::Inv);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS", "CleanWb"]);
    assert_eq!(rig.state(0x100), "I");

    // E + Replacement → issue PutE / B
    let cfg = AccelL1Config {
        sets: 1,
        ways: 1,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, false, false);
    rig.op(CoreKind::Load, 0x100);
    rig.run();
    rig.xg_send(0x100, XgiKind::DataE { data: one_block() });
    rig.run();
    rig.op(CoreKind::Load, 0x140);
    rig.run();
    rig.xg_send(0x140, XgiKind::DataS { data: one_block() });
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetS", "GetS", "PutE"]);
    assert_eq!(rig.state(0x100), "B");
}

#[test]
fn table1_row_m() {
    let fresh_m = || {
        let mut rig = Rig::new(AccelL1Config::default(), false, false);
        rig.op(CoreKind::Store { value: 5 }, 0x100);
        rig.run();
        rig.xg_send(0x100, XgiKind::DataM { data: one_block() });
        rig.run();
        assert_eq!(rig.state(0x100), "M");
        rig
    };

    // M + Load/Store → hit
    let mut rig = fresh_m();
    let id = rig.op(CoreKind::Load, 0x100);
    rig.op(CoreKind::Store { value: 6 }, 0x100);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetM"]);
    assert_eq!(rig.load_value(id), Some(5));

    // M + Invalidate → send Dirty Writeback / I
    let mut rig = fresh_m();
    rig.xg_send(0x100, XgiKind::Inv);
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetM", "DirtyWb"]);
    assert_eq!(rig.state(0x100), "I");

    // M + Replacement → issue PutM / B, then WbAck → I
    let cfg = AccelL1Config {
        sets: 1,
        ways: 1,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, false, false);
    rig.op(CoreKind::Store { value: 7 }, 0x100);
    rig.run();
    rig.xg_send(0x100, XgiKind::DataM { data: one_block() });
    rig.run();
    rig.op(CoreKind::Load, 0x140);
    rig.run();
    rig.xg_send(0x140, XgiKind::DataS { data: one_block() });
    rig.run();
    assert_eq!(rig.xg_kinds(), vec!["GetM", "GetS", "PutM"]);
    assert_eq!(rig.state(0x100), "B");
    rig.xg_send(0x100, XgiKind::WbAck);
    rig.run();
    assert_eq!(rig.state(0x100), "I");
}

// ---------------------------------------------------------------------------
// End-to-end behavior against the auto-responding mock guard.
// ---------------------------------------------------------------------------

#[test]
fn store_load_roundtrip_through_interface() {
    let mut rig = Rig::new(AccelL1Config::default(), true, false);
    rig.op(CoreKind::Store { value: 99 }, 0x200);
    rig.run();
    let id = rig.op(CoreKind::Load, 0x200);
    rig.run();
    assert_eq!(rig.load_value(id), Some(99));
    let l1 = rig.sim.get::<AccelL1>(rig.l1).unwrap();
    assert_eq!(l1.protocol_violations(), 0);
}

#[test]
fn eviction_writes_back_through_interface() {
    let cfg = AccelL1Config {
        sets: 1,
        ways: 1,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, true, false);
    rig.op(CoreKind::Store { value: 31 }, 0x100);
    rig.run();
    rig.op(CoreKind::Store { value: 32 }, 0x140);
    rig.run();
    let id = rig.op(CoreKind::Load, 0x100);
    rig.run();
    assert_eq!(rig.load_value(id), Some(31));
}

#[test]
fn msi_mode_treats_e_as_m() {
    let cfg = AccelL1Config {
        mode: AccelMode::Msi,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, true, true); // guard grants E
    let id = rig.op(CoreKind::Load, 0x300);
    rig.run();
    assert_eq!(rig.load_value(id), Some(0));
    // DataE was mapped to M locally.
    assert_eq!(rig.state(0x300), "M");
    // Inv must produce a *dirty* writeback (MSI never claims clean).
    rig.xg_send(0x300, XgiKind::Inv);
    rig.run();
    assert!(rig.xg_kinds().contains(&"DirtyWb"));
}

#[test]
fn vi_mode_issues_only_getm() {
    let cfg = AccelL1Config {
        mode: AccelMode::Vi,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, true, false);
    rig.op(CoreKind::Load, 0x400);
    rig.op(CoreKind::Store { value: 1 }, 0x440);
    rig.run();
    let kinds = rig.xg_kinds();
    assert!(kinds.iter().all(|&k| k == "GetM"), "{kinds:?}");
}

#[test]
fn multi_block_lines_round_trip() {
    let cfg = AccelL1Config {
        block_blocks: 4,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, true, false);
    // Two addresses inside the same 256 B accelerator block.
    rig.op(CoreKind::Store { value: 5 }, 0x1000);
    rig.run();
    rig.op(CoreKind::Store { value: 6 }, 0x10C0);
    rig.run();
    // One GetM covers the whole accelerator block.
    assert_eq!(rig.xg_kinds(), vec!["GetM"]);
    let a = rig.op(CoreKind::Load, 0x1000);
    let b = rig.op(CoreKind::Load, 0x10C0);
    rig.run();
    assert_eq!(rig.load_value(a), Some(5));
    assert_eq!(rig.load_value(b), Some(6));
}

#[test]
fn next_line_prefetch_hides_streaming_misses() {
    let cfg = AccelL1Config {
        prefetch: Prefetch::NextLine { degree: 2 },
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, true, false);
    // Stream sequentially: after the first miss, the prefetcher should
    // stay ahead of the demand stream.
    for i in 0..16u64 {
        rig.op(CoreKind::Load, 0x2000 + i * 64);
        rig.run();
    }
    let l1 = rig.sim.get::<AccelL1>(rig.l1).unwrap();
    assert_eq!(l1.protocol_violations(), 0);
    let report = rig.sim.report();
    assert!(
        report.get("accel_l1.prefetches_issued") >= 8,
        "prefetcher never trained"
    );
    assert!(
        report.get("accel_l1.prefetch_hits") >= 8,
        "prefetches never hit: {} issued / {} hits",
        report.get("accel_l1.prefetches_issued"),
        report.get("accel_l1.prefetch_hits")
    );
    // Demand misses are only a fraction of accesses.
    assert!(report.get("accel_l1.hits") > report.get("accel_l1.misses"));
}

#[test]
fn prefetch_off_by_default_issues_nothing() {
    let mut rig = Rig::new(AccelL1Config::default(), true, false);
    for i in 0..8u64 {
        rig.op(CoreKind::Load, 0x2000 + i * 64);
        rig.run();
    }
    assert_eq!(rig.sim.report().get("accel_l1.prefetches_issued"), 0);
}

// ---------------------------------------------------------------------------
// Two-level organization: L1s sharing through the accelerator L2.
// ---------------------------------------------------------------------------

struct TwoLevel {
    sim: xg_proto::Sim,
    cores: Vec<NodeId>,
    l1s: Vec<NodeId>,
    l2: NodeId,
    xg: NodeId,
    next_id: u64,
}

impl TwoLevel {
    fn new(n: usize) -> Self {
        Self::new_with(n, false)
    }

    fn new_with(n: usize, weak_sharing: bool) -> Self {
        let mut b = SimBuilder::new(11);
        let mut cores = Vec::new();
        let mut l1s = Vec::new();
        for i in 0..n {
            cores.push(b.add(Box::new(Probe {
                name: format!("acore{i}"),
                responses: Vec::new(),
            })));
        }
        let l2_id = NodeId::from_index(2 * n);
        let xg_id = NodeId::from_index(2 * n + 1);
        for i in 0..n {
            l1s.push(b.add(Box::new(AccelL1::new(
                format!("al1_{i}"),
                l2_id,
                AccelL1Config::default(),
            ))));
        }
        let l2 = b.add(Box::new(AccelL2::new(
            "al2",
            xg_id,
            AccelL2Config {
                weak_sharing,
                ..AccelL2Config::default()
            },
        )));
        let xg = b.add(Box::new(MockGuard::new(true, true, 1)));
        assert_eq!((l2, xg), (l2_id, xg_id));
        b.default_link(Link::ordered(1, 2));
        TwoLevel {
            sim: b.build(),
            cores,
            l1s,
            l2,
            xg,
            next_id: 0,
        }
    }

    fn store(&mut self, core: usize, addr: u64, value: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.cores[core],
            self.l1s[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Store { value },
            }
            .into(),
        );
        assert!(self.sim.run_to_quiescence(50_000).quiescent);
    }

    fn load(&mut self, core: usize, addr: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.cores[core],
            self.l1s[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Load,
            }
            .into(),
        );
        assert!(self.sim.run_to_quiescence(50_000).quiescent);
        self.sim
            .get::<Probe>(self.cores[core])
            .unwrap()
            .responses
            .iter()
            .find_map(|m| match (m.id == id, m.kind) {
                (true, CoreKind::LoadResp { value }) => Some(value),
                _ => None,
            })
            .expect("load response")
    }

    fn assert_clean(&self) {
        let report = self.sim.report();
        assert_eq!(report.sum_suffix(".protocol_violation"), 0);
    }
}

#[test]
fn two_level_shares_without_host_traffic() {
    let mut tl = TwoLevel::new(2);
    tl.store(0, 0x500, 77);
    assert_eq!(tl.load(1, 0x500), 77);
    // Data moved L1→L2→L1; the guard saw only the original fill.
    let guard = tl.sim.get::<MockGuard>(tl.xg).unwrap();
    let gets = guard
        .kinds()
        .iter()
        .filter(|k| k.starts_with("Get"))
        .count();
    assert_eq!(gets, 1, "sharing must not cross the interface again");
    tl.assert_clean();
}

#[test]
fn two_level_write_after_read_recalls_sharer() {
    let mut tl = TwoLevel::new(3);
    tl.store(0, 0x600, 1);
    assert_eq!(tl.load(1, 0x600), 1);
    assert_eq!(tl.load(2, 0x600), 1);
    tl.store(1, 0x600, 2);
    assert_eq!(tl.load(0, 0x600), 2);
    assert_eq!(tl.load(2, 0x600), 2);
    tl.assert_clean();
}

#[test]
fn two_level_host_inv_collects_dirty_data() {
    let mut tl = TwoLevel::new(2);
    tl.store(0, 0x700, 42);
    // Host demands the block back through the guard.
    tl.sim.post(
        tl.xg,
        tl.l2,
        XgiMsg::new(Addr::new(0x700).block(), XgiKind::Inv).into(),
    );
    assert!(tl.sim.run_to_quiescence(50_000).quiescent);
    let guard = tl.sim.get::<MockGuard>(tl.xg).unwrap();
    assert!(guard.kinds().contains(&"DirtyWb"));
    // The dirty value survived into guard memory.
    let mem = guard.memory.get(&Addr::new(0x700).block()).unwrap();
    assert_eq!(mem[0].read_u64(0), 42);
    // And a re-read misses all the way to the guard.
    assert_eq!(tl.load(1, 0x700), 42);
    tl.assert_clean();
}

#[test]
fn flush_writes_back_and_invalidates_locally() {
    let cfg = AccelL1Config {
        sets: 4,
        ways: 2,
        ..AccelL1Config::default()
    };
    let mut rig = Rig::new(cfg, true, false);
    rig.op(CoreKind::Store { value: 5 }, 0x100);
    rig.run();
    assert_eq!(rig.state(0x100), "M");
    rig.op(CoreKind::Flush, 0x100);
    rig.run();
    assert_eq!(rig.state(0x100), "I");
    // The dirty data reached the guard's memory model via PutM.
    let guard = rig.sim.get::<MockGuard>(rig.xg).unwrap();
    assert_eq!(
        guard.memory.get(&Addr::new(0x100).block()).unwrap()[0].read_u64(0),
        5
    );
    // A flush of an absent block is an immediate ack.
    rig.op(CoreKind::Flush, 0x900);
    rig.run();
    let probe = rig.sim.get::<Probe>(rig.core).unwrap();
    assert!(
        probe
            .responses
            .iter()
            .filter(|m| matches!(m.kind, CoreKind::FlushResp))
            .count()
            >= 2
    );
}

/// Weak sharing (§2.1): a writer does not invalidate its siblings; their
/// reads stay stale until *both* sides flush. The handoff protocol —
/// producer flushes, consumer flushes then reloads — works.
#[test]
fn weak_sharing_requires_explicit_flushes() {
    let mut tl = TwoLevelWeak::new(2);
    // Producer reads first (clean-exclusive), consumer's read then recalls
    // it and takes a *shared* copy.
    assert_eq!(tl.load(0, 0x500), 0);
    assert_eq!(tl.load(1, 0x500), 0);
    // Producer writes 7; in weak mode the consumer is NOT invalidated.
    tl.store(0, 0x500, 7);
    // Consumer still sees its stale copy: allowed by the model.
    assert_eq!(tl.load(1, 0x500), 0);
    // Handoff: producer flushes (data reaches the accel L2) ...
    tl.flush(0, 0x500);
    // ... consumer still holds its stale S copy ...
    assert_eq!(tl.load(1, 0x500), 0);
    // ... until it flushes too, and the reload observes the new value.
    tl.flush(1, 0x500);
    assert_eq!(tl.load(1, 0x500), 7);
    tl.assert_clean();
}

struct TwoLevelWeak(TwoLevel);

impl TwoLevelWeak {
    fn new(n: usize) -> Self {
        TwoLevelWeak(TwoLevel::new_with(n, true))
    }
    fn load(&mut self, core: usize, addr: u64) -> u64 {
        self.0.load(core, addr)
    }
    fn store(&mut self, core: usize, addr: u64, value: u64) {
        self.0.store(core, addr, value)
    }
    fn flush(&mut self, core: usize, addr: u64) {
        let id = self.0.next_id;
        self.0.next_id += 1;
        self.0.sim.post(
            self.0.cores[core],
            self.0.l1s[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Flush,
            }
            .into(),
        );
        assert!(self.0.sim.run_to_quiescence(50_000).quiescent);
    }
    fn assert_clean(&self) {
        self.0.assert_clean()
    }
}

#[test]
fn two_level_heavy_interleaving_converges() {
    let mut tl = TwoLevel::new(4);
    for i in 0..24u64 {
        let core = (i % 4) as usize;
        let addr = 0x800 + (i % 3) * 64;
        if i % 2 == 0 {
            tl.store(core, addr, i + 1);
        } else {
            let _ = tl.load(core, addr);
        }
    }
    for blk in 0..3u64 {
        let addr = 0x800 + blk * 64;
        let v = tl.load(0, addr);
        for core in 1..4 {
            assert_eq!(tl.load(core, addr), v);
        }
    }
    tl.assert_clean();
}

//! E8 — Guarantee 2c timeout recovery (§2.2).
//!
//! A scripted accelerator takes ownership of a block and then goes silent.
//! A CPU store to that block forces the host to demand the data back; the
//! guard forwards an invalidation, waits out the configured timeout,
//! fabricates a safe response, and reports the error. We measure the CPU
//! store's end-to-end latency as a function of the timeout setting: it
//! tracks `inv_timeout` plus a small protocol overhead, and the host never
//! hangs.

use xg_core::{OsPolicy, XgConfig, XgVariant};
use xg_harness::system::CoreSlot;
use xg_harness::{build_system, sweep, AccelOrg, HostProtocol, SystemConfig};
use xg_mem::Addr;
use xg_proto::{CoreKind, CoreMsg, Ctx, Message, XgiKind, XgiMsg};
use xg_sim::{Component, NodeId};

use crate::table::Table;
use crate::Scale;

/// A CPU core that issues one store after a delay and records its latency.
struct OneStore {
    cache: NodeId,
    addr: u64,
    delay: u64,
    issued_at: Option<u64>,
    latency: Option<u64>,
}

impl Component<Message> for OneStore {
    fn name(&self) -> &str {
        "one_store"
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        if let Message::Core(CoreMsg {
            kind: CoreKind::StoreResp,
            ..
        }) = msg
        {
            if let Some(t0) = self.issued_at {
                self.latency = Some(ctx.now().as_u64() - t0);
                ctx.note_progress();
            }
        }
    }
    fn wake(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token == 0 {
            ctx.wake_in(self.delay, 1);
            return;
        }
        self.issued_at = Some(ctx.now().as_u64());
        ctx.send(
            self.cache,
            CoreMsg {
                id: 1,
                addr: Addr::new(self.addr),
                kind: CoreKind::Store { value: 99 },
            }
            .into(),
        );
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One timeout setting's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configured 2c timeout in cycles.
    pub timeout: u64,
    /// CPU store latency in cycles (demand → fabricated recovery → done).
    pub store_latency: u64,
    /// Timeout errors reported to the OS.
    pub timeouts_reported: u64,
    /// Whether the host completed (it always must).
    pub completed: bool,
}

const BLOCK: u64 = 0x9000;

fn one(timeout: u64, host: HostProtocol, seed: u64) -> Row {
    // The fuzzing organization attaches a raw peer directly to the guard;
    // with zero fuzz messages it is a perfectly silent accelerator. We
    // post a single GetM from it (taking ownership) and never respond to
    // anything again.
    let raw_cfg = SystemConfig {
        host,
        cpu_cores: 1,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        xg: XgConfig {
            inv_timeout: timeout,
            ..XgConfig::default()
        },
        seed,
        ..SystemConfig::default()
    };
    let fuzz = xg_harness::FuzzOpts {
        messages: 0,
        ..xg_harness::FuzzOpts::default()
    };
    let mut system = build_system(
        &raw_cfg,
        OsPolicy::ReportOnly,
        Some(fuzz),
        |slot, cache, _| {
            match slot {
                CoreSlot::Cpu(_) => Box::new(OneStore {
                    cache,
                    addr: BLOCK,
                    delay: 400, // let the silent owner take M first
                    issued_at: None,
                    latency: None,
                }),
                CoreSlot::Accel(_) => unreachable!("fuzz orgs have no accel cores"),
            }
        },
    );
    // The raw peer takes M on the block, then goes silent forever.
    let fuzzer = system.fuzzer.expect("fuzz org has a raw peer");
    let xg = system.xg.expect("guarded org");
    system.sim.post(
        fuzzer,
        xg,
        XgiMsg::new(Addr::new(BLOCK).block(), XgiKind::GetM).into(),
    );
    system.start_cores();
    let out = system
        .sim
        .run_with_watchdog(10_000_000, timeout * 4 + 100_000);
    let report = system.sim.report();
    let store = system
        .sim
        .get::<OneStore>(system.cpu_cores[0])
        .expect("cpu core");
    Row {
        timeout,
        store_latency: store.latency.unwrap_or(0),
        timeouts_reported: report.get("os.errors.timeout"),
        completed: store.latency.is_some() && !out.stalled,
    }
}

/// Runs the timeout sweep at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the timeout sweep on `jobs` workers, one shard per setting.
pub fn run_jobs(_scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    sweep(vec![500u64, 2_000, 8_000], jobs, |t, _| {
        one(t, HostProtocol::Hammer, seed)
    })
}

/// Regression gate: a host that fails to complete fails the report.
pub fn failures(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .filter(|r| !r.completed)
        .map(|r| format!("E8 timeout={}: host did not complete", r.timeout))
        .collect()
}

/// Renders the E8 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E8 (§2.2, Guarantee 2c): recovery from a silent accelerator",
        &[
            "inv_timeout (cycles)",
            "cpu store latency",
            "timeouts reported",
            "host completed",
        ],
    );
    for r in rows {
        t.row(&[
            r.timeout.to_string(),
            r.store_latency.to_string(),
            r.timeouts_reported.to_string(),
            if r.completed { "yes" } else { "NO" }.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_tracks_timeout_and_host_always_completes() {
        let rows = run(Scale::Quick, 7);
        for r in &rows {
            assert!(r.completed, "timeout={}", r.timeout);
            assert!(r.timeouts_reported >= 1, "timeout={}", r.timeout);
            assert!(
                r.store_latency >= r.timeout,
                "latency {} below timeout {}",
                r.store_latency,
                r.timeout
            );
            assert!(
                r.store_latency < r.timeout + 5_000,
                "latency {} far beyond timeout {}",
                r.store_latency,
                r.timeout
            );
        }
        assert!(rows[2].store_latency > rows[0].store_latency);
    }
}

//! E6 — denial-of-service rate limiting (§2.5).
//!
//! A misbehaving-but-message-legal accelerator floods the host with
//! requests, consuming directory bandwidth; CPU latency suffers. The
//! token-bucket limiter at the guard throttles the flood and restores CPU
//! performance, at configurable sustained rates.

use xg_core::OsPolicy;
use xg_core::{RateLimit, XgConfig, XgVariant};
use xg_harness::system::CoreSlot;
use xg_harness::tester::word_pool;
use xg_harness::{
    build_system, sweep, AccelOrg, HostProtocol, Pattern, SystemConfig, TesterCfg, TesterCore,
    TesterShared, WorkloadCore,
};

use crate::table::Table;
use crate::Scale;

/// One rate-limit setting's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Limiter setting label.
    pub label: String,
    /// Cycles to finish the fixed CPU workload while flooded.
    pub cpu_finish_cycles: u64,
    /// Average CPU op latency.
    pub cpu_avg_latency: u64,
    /// Accelerator requests throttled at the guard.
    pub throttled: u64,
    /// Accelerator requests that did reach the host.
    pub accel_host_msgs: u64,
}

fn flood_once(limit: Option<RateLimit>, cpu_ops: u64, seed: u64, label: &str) -> Row {
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        },
        // A tiny accelerator cache over a huge streaming footprint: every
        // access misses, producing a legal request flood.
        accel_cache: (2, 1),
        xg: XgConfig {
            rate_limit: limit,
            ..XgConfig::default()
        },
        seed,
        ..SystemConfig::default()
    };
    let shared = TesterShared::new(cfg.cpu_cores, cpu_ops);
    let pool = word_pool(0x40_0000, 8, 2);
    let mut system = build_system(&cfg, OsPolicy::ReportOnly, None, |slot, cache, index| {
        match slot {
            CoreSlot::Cpu(i) => Box::new(TesterCore::new(
                format!("tester_cpu{i}"),
                cache,
                index,
                shared.clone(),
                pool.clone(),
                TesterCfg::default(),
            )),
            CoreSlot::Accel(_) => Box::new(WorkloadCore::new(
                "flooder",
                cache,
                Pattern::GraphWalk, // scrambled: every access misses
                0x80_0000,
                1 << 16,
                u64::MAX / 2, // effectively unbounded; run ends with the CPUs
            )),
        }
    });
    system.start_cores();
    let out = system.sim.run_with_watchdog(80_000_000, 500_000);
    assert!(
        shared.lock().unwrap().done(),
        "{label}: CPUs starved entirely"
    );
    let report = system.sim.report();
    let cpu_completed = report.sum_suffix(".ops_completed") - report.get("flooder.ops_completed");
    let latency_sum = report.get("tester_cpu0.latency_sum") + report.get("tester_cpu1.latency_sum");
    Row {
        label: label.to_string(),
        cpu_finish_cycles: out.now.as_u64(),
        cpu_avg_latency: latency_sum / cpu_completed.max(1),
        throttled: report.get("xg.throttled"),
        accel_host_msgs: report.get("xg.host_sent"),
    }
}

/// Runs the DoS experiment at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the DoS experiment on `jobs` workers, one shard per limiter
/// setting.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    let cpu_ops = scale.ops(1_500, 10_000);
    let shards: Vec<(Option<RateLimit>, &str)> = vec![
        (None, "no limit (flood unchecked)"),
        (
            Some(RateLimit {
                tokens_per_kilocycle: 50,
                burst: 4,
            }),
            "limit: 50 req / 1k cycles",
        ),
        (
            Some(RateLimit {
                tokens_per_kilocycle: 5,
                burst: 2,
            }),
            "limit: 5 req / 1k cycles",
        ),
    ];
    sweep(shards, jobs, |(limit, label), _| {
        flood_once(limit, cpu_ops, seed, label)
    })
}

/// Renders the E6 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E6 (§2.5): request-rate limiting against a flooding accelerator",
        &[
            "limiter",
            "cpu finish (cycles)",
            "cpu avg latency",
            "accel reqs throttled",
            "accel msgs at host",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.clone(),
            r.cpu_finish_cycles.to_string(),
            r.cpu_avg_latency.to_string(),
            r.throttled.to_string(),
            r.accel_host_msgs.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limiter_throttles_and_reduces_host_pressure() {
        let rows = run(Scale::Quick, 6);
        let unlimited = &rows[0];
        let tight = &rows[2];
        assert_eq!(unlimited.throttled, 0);
        assert!(tight.throttled > 0, "tight limiter never engaged");
        assert!(
            tight.accel_host_msgs < unlimited.accel_host_msgs,
            "limiter should cut accel traffic at the host: {} vs {}",
            tight.accel_host_msgs,
            unlimited.accel_host_msgs
        );
    }
}

//! E3 — the performance comparison (reconstructed from §1: "Crossing Guard
//! performs similarly to the unsafe, hard-to-design accelerator-side cache
//! and better than a safe but high-latency host-side cache").
//!
//! For every host protocol and every synthetic workload (Rodinia proxies —
//! see `xg_harness::workloads` and `DESIGN.md`), the accelerator runs the
//! workload under each organization; the figure plots runtime normalized
//! to the unsafe accelerator-side cache. Expected shape:
//!
//! * host-side is the slowest (every access pays the crossing latency),
//! * both Crossing Guard variants land near the accelerator-side baseline,
//! * the two-level organization helps sharing-heavy workloads.

use xg_core::XgVariant;
use xg_harness::{run_workload, sweep, AccelOrg, HostProtocol, Pattern, SystemConfig};

use crate::table::{ratio, Table};
use crate::Scale;

/// All organizations compared in the figure, in column order.
pub fn organizations() -> Vec<(&'static str, AccelOrg)> {
    vec![
        ("accel_side", AccelOrg::AccelSide),
        ("host_side", AccelOrg::HostSide),
        (
            "xg_full",
            AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: false,
            },
        ),
        (
            "xg_tx",
            AccelOrg::Xg {
                variant: XgVariant::Transactional,
                two_level: false,
            },
        ),
        (
            "xg_full_l2",
            AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: true,
            },
        ),
        (
            "xg_tx_l2",
            AccelOrg::Xg {
                variant: XgVariant::Transactional,
                two_level: true,
            },
        ),
    ]
}

/// One (host, workload) series of runtimes, one per organization.
#[derive(Debug, Clone)]
pub struct Series {
    /// Host protocol tag.
    pub host: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// `(organization, accel runtime cycles)` in [`organizations`] order.
    pub runtimes: Vec<(&'static str, u64)>,
}

impl Series {
    /// Runtime for an organization by name.
    pub fn runtime(&self, org: &str) -> u64 {
        self.runtimes
            .iter()
            .find(|(name, _)| *name == org)
            .map(|(_, rt)| *rt)
            .expect("organization present")
    }
}

/// Which patterns to sweep at each scale.
pub fn patterns(scale: Scale) -> Vec<Pattern> {
    match scale {
        Scale::Quick => vec![
            Pattern::Streaming,
            Pattern::Blocked,
            Pattern::ProducerConsumer,
        ],
        Scale::Full => Pattern::ALL.to_vec(),
    }
}

/// Runs the sweep at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Series> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the sweep on `jobs` workers. Every (host, workload, organization)
/// cell is an independent shard; cells fold back into series in the fixed
/// host-major, workload-minor presentation order for any `jobs`.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Series> {
    let ops = scale.ops(2_500, 10_000);
    let orgs = organizations();
    let mut shards = Vec::new();
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for pattern in patterns(scale) {
            for (name, accel) in orgs.clone() {
                let two_level = matches!(
                    accel,
                    AccelOrg::Xg {
                        two_level: true,
                        ..
                    }
                );
                let cfg = SystemConfig {
                    host,
                    accel,
                    accel_cores: if two_level { 2 } else { 1 },
                    seed,
                    ..SystemConfig::default()
                };
                shards.push((host, pattern, name, cfg));
            }
        }
    }
    let cells = sweep(shards, jobs, |(host, pattern, name, cfg), _| {
        let perf = run_workload(&cfg, pattern, ops);
        assert!(
            !perf.incomplete,
            "{} {} {name} did not finish",
            host.tag(),
            pattern.name()
        );
        (host, pattern, name, perf.accel_runtime)
    });
    cells
        .chunks(orgs.len())
        .map(|chunk| Series {
            host: chunk[0].0.tag(),
            workload: chunk[0].1.name(),
            runtimes: chunk.iter().map(|&(_, _, name, rt)| (name, rt)).collect(),
        })
        .collect()
}

/// Renders the E3 figure data (runtime normalized to accel_side).
pub fn table(series: &[Series]) -> String {
    let mut headers: Vec<&str> = vec!["host", "workload"];
    for (name, _) in organizations() {
        headers.push(name);
    }
    let mut t = Table::new(
        "E3 (§4.3 figure): accelerator runtime, normalized to the unsafe accelerator-side cache",
        &headers,
    );
    for s in series {
        let base = s.runtime("accel_side");
        let mut row = vec![s.host.to_string(), s.workload.to_string()];
        for (name, rt) in &s.runtimes {
            let _ = name;
            row.push(ratio(*rt, base));
        }
        t.row(&row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_host_side_slowest_and_xg_near_baseline() {
        // One host, two workloads at quick scale to keep CI fast.
        let ops = 2_500;
        for pattern in [Pattern::Blocked, Pattern::Streaming] {
            let mut rts = std::collections::HashMap::new();
            for (name, accel) in organizations().into_iter().take(4) {
                let cfg = SystemConfig {
                    host: HostProtocol::Hammer,
                    accel,
                    seed: 9,
                    ..SystemConfig::default()
                };
                let perf = run_workload(&cfg, pattern, ops);
                assert!(!perf.incomplete);
                rts.insert(name, perf.accel_runtime);
            }
            let base = rts["accel_side"];
            assert!(
                rts["host_side"] > rts["xg_full"],
                "{}: host-side must be slower than XG",
                pattern.name()
            );
            assert!(
                rts["xg_full"] < base * 2 && rts["xg_tx"] < base * 2,
                "{}: XG should be within 2x of the unsafe baseline",
                pattern.name()
            );
        }
    }
}

//! E2 — fuzz safety (reconstructed from §1/§4: "we then bombard the
//! Crossing Guard with a stream of random coherence messages ... this fuzz
//! testing never leads to a crash or deadlock"), plus the E10 host-mod
//! ablation (§3.2).
//!
//! Three groups of rows:
//!
//! 1. **Guarded, modified hosts** — the paper's claim: zero host protocol
//!    violations, zero CPU data corruption, the host keeps completing CPU
//!    work, and every injected violation class is reported to the OS.
//! 2. **Guarded, unmodified (strict) hosts** — only meaningful for the
//!    Transactional variant, which relies on the host modifications.
//! 3. **Unprotected** — the same garbage aimed directly at the host
//!    protocol, as a buggy accelerator-side cache could: the strict host's
//!    correctness envelope is pierced.

use xg_core::XgVariant;
use xg_harness::{run_fuzz, sweep, AccelOrg, FuzzOpts, HostProtocol, SystemConfig};

use crate::table::Table;
use crate::Scale;

/// One fuzzing outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub config: String,
    /// Fuzz messages injected.
    pub injected: u64,
    /// Host-controller protocol violations.
    pub host_violations: u64,
    /// Errors the guard reported to the OS.
    pub os_errors: u64,
    /// CPU tester ops completed during the bombardment.
    pub cpu_ops: u64,
    /// CPU value-check failures.
    pub cpu_errors: u64,
    /// Whether the host stopped making progress.
    pub deadlocked: bool,
}

/// Marker appended to the rows where fuzz damage is *expected* (the
/// unprotected baseline); [`failures`] skips them.
const NO_GUARD: &str = " (no guard)";

/// The fuzz campaign in presentation order: `(label, configuration)`.
fn campaign(seed: u64) -> Vec<(String, SystemConfig)> {
    let mut shards = Vec::new();
    // Group 1: guarded, modified hosts.
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for variant in [XgVariant::FullState, XgVariant::Transactional] {
            let cfg = SystemConfig {
                host,
                accel: AccelOrg::FuzzXg { variant },
                seed,
                ..SystemConfig::default()
            };
            shards.push((cfg.name(), cfg));
        }
    }
    // Group 2: guarded, *unmodified* hosts (the §3.2 ablation).
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for variant in [XgVariant::FullState, XgVariant::Transactional] {
            let cfg = SystemConfig {
                host,
                accel: AccelOrg::FuzzXg { variant },
                strict_host: true,
                seed,
                ..SystemConfig::default()
            };
            shards.push((format!("{} (strict host)", cfg.name()), cfg));
        }
    }
    // Group 3: unprotected strict hosts.
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        let cfg = SystemConfig {
            host,
            accel: AccelOrg::FuzzAccelSide,
            strict_host: true,
            seed,
            ..SystemConfig::default()
        };
        shards.push((format!("{}{NO_GUARD}", cfg.name()), cfg));
    }
    shards
}

/// Runs the fuzz suite at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the fuzz suite on `jobs` workers, one shard per attacked
/// configuration; row order is the fixed campaign order for any `jobs`.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    let messages = scale.ops(400, 3_000);
    let cpu_ops = scale.ops(800, 6_000);
    let fuzz = FuzzOpts {
        messages,
        ..FuzzOpts::default()
    };
    sweep(campaign(seed), jobs, |(label, cfg), _| {
        let out = run_fuzz(&cfg, &fuzz, cpu_ops);
        Row {
            config: label,
            injected: out.injected,
            host_violations: out.host_violations,
            os_errors: out.os_errors,
            cpu_ops: out.cpu_ops_completed,
            cpu_errors: out.cpu_data_errors,
            deadlocked: out.deadlocked,
        }
    })
}

/// Regression gate: damage on any *guarded* row fails the report. The
/// unprotected "(no guard)" baseline rows are expected to be disturbed and
/// are exempt.
pub fn failures(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| !r.config.ends_with(NO_GUARD)) {
        if r.host_violations > 0 {
            out.push(format!(
                "E2 {}: {} host protocol violations",
                r.config, r.host_violations
            ));
        }
        if r.cpu_errors > 0 {
            out.push(format!(
                "E2 {}: {} cpu data errors under fuzzing",
                r.config, r.cpu_errors
            ));
        }
        if r.deadlocked {
            out.push(format!("E2 {}: host deadlocked under fuzzing", r.config));
        }
    }
    out
}

/// Renders the E2/E10 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E2 (§4.2) + E10 (§3.2): fuzz safety and the host-modification ablation",
        &[
            "config",
            "injected",
            "host violations",
            "OS error reports",
            "cpu ops done",
            "cpu data errors",
            "deadlock",
        ],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            r.injected.to_string(),
            r.host_violations.to_string(),
            r.os_errors.to_string(),
            r.cpu_ops.to_string(),
            r.cpu_errors.to_string(),
            if r.deadlocked { "YES" } else { "no" }.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_modified_hosts_are_safe_and_unprotected_is_not() {
        let rows = run(Scale::Quick, 5);
        // Group 1 (first four rows): the paper's safety claim.
        for r in &rows[0..4] {
            assert_eq!(r.host_violations, 0, "{}", r.config);
            assert_eq!(r.cpu_errors, 0, "{}", r.config);
            assert!(!r.deadlocked, "{}", r.config);
            // Count-only here; crates/core/tests/guarantee_classes.rs
            // asserts the reported errors span every guarantee class
            // (0a/0b/1a/1b/2a/2b/2c) per host persona.
            assert!(r.os_errors > 0, "{}", r.config);
        }
        // Group 3 (last two rows): raw fuzzing disturbs an unguarded host.
        let pierced = rows[rows.len() - 2..]
            .iter()
            .any(|r| r.host_violations > 0 || r.deadlocked || r.cpu_errors > 0);
        assert!(pierced, "unguarded strict hosts should be disturbed");
    }
}

//! E11 — accelerator prefetching behind the guard (an extension the paper
//! motivates in §1: streaming accelerators "may prefetch aggressively",
//! and the whole point of the standardized interface is that such
//! customizations need no host-side changes).
//!
//! We run the streaming workload with next-line prefetching off / degree 1
//! / degree 2 and report runtime, average access latency, and prefetch
//! accuracy. Everything crosses the same unmodified Crossing Guard.

use xg_accel::Prefetch;
use xg_core::XgVariant;
use xg_harness::{run_workload, sweep, AccelOrg, HostProtocol, Pattern, SystemConfig};

use crate::table::{percent, Table};
use crate::Scale;

/// One prefetch setting's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Setting label.
    pub label: String,
    /// Accelerator runtime in cycles.
    pub runtime: u64,
    /// Average accelerator access latency.
    pub avg_latency: u64,
    /// Prefetches issued.
    pub issued: u64,
    /// Prefetched lines that served a later demand access.
    pub useful: u64,
    /// Guard errors (prefetches are ordinary interface traffic; zero).
    pub errors: u64,
}

/// Runs the prefetch sweep at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the prefetch sweep on `jobs` workers, one shard per setting.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    let ops = scale.ops(4_000, 12_000);
    let shards = vec![
        ("off", Prefetch::Off),
        ("next-line, degree 1", Prefetch::NextLine { degree: 1 }),
        ("next-line, degree 2", Prefetch::NextLine { degree: 2 }),
    ];
    sweep(shards, jobs, |(label, prefetch), _| {
        let cfg = SystemConfig {
            host: HostProtocol::Hammer,
            accel: AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: false,
            },
            // Small cache + large streaming footprint: misses dominate
            // without prefetching.
            accel_cache: (16, 2),
            prefetch,
            seed,
            ..SystemConfig::default()
        };
        let out = run_workload(&cfg, Pattern::Streaming, ops);
        assert!(!out.incomplete, "prefetch={label} hung");
        Row {
            label: label.to_string(),
            runtime: out.accel_runtime,
            avg_latency: out.accel_avg_latency,
            issued: out.report.get("accel_l1.prefetches_issued"),
            useful: out.report.get("accel_l1.prefetch_hits"),
            errors: out.report.get("os.errors_total"),
        }
    })
}

/// Regression gate: guard errors from prefetch traffic fail the report.
pub fn failures(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .filter(|r| r.errors > 0)
        .map(|r| format!("E11 prefetch={}: {} errors", r.label, r.errors))
        .collect()
}

/// Renders the E11 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E11 (extension, §1): next-line prefetching at the accelerator L1",
        &[
            "prefetch",
            "runtime (cycles)",
            "avg latency",
            "issued",
            "useful",
            "accuracy",
            "errors",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.clone(),
            r.runtime.to_string(),
            r.avg_latency.to_string(),
            r.issued.to_string(),
            r.useful.to_string(),
            percent(r.useful, r.issued.max(1)),
            r.errors.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetching_cuts_streaming_latency_without_errors() {
        let rows = run(Scale::Quick, 5);
        let off = &rows[0];
        let deg2 = &rows[2];
        assert_eq!(off.issued, 0);
        assert!(deg2.issued > 0);
        for r in &rows {
            assert_eq!(r.errors, 0, "{}", r.label);
        }
        assert!(
            deg2.avg_latency < off.avg_latency,
            "prefetching should cut latency: {} vs {}",
            deg2.avg_latency,
            off.avg_latency
        );
        assert!(
            deg2.runtime < off.runtime,
            "prefetching should cut runtime: {} vs {}",
            deg2.runtime,
            off.runtime
        );
        // Streaming prefetches are mostly useful.
        assert!(deg2.useful * 2 >= deg2.issued);
    }
}

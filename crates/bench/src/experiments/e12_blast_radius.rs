//! E12 — blast radius: fuzz one guard's accelerator while a correct
//! sibling hierarchy shares the host.
//!
//! The paper argues (§2.2) that a Crossing Guard confines a misbehaving
//! accelerator's damage to the pages it may legally write. The
//! single-accelerator fuzz experiments (E2) check the *host* survives; this
//! experiment checks the claim that matters once several accelerators
//! share one host protocol: a sibling hierarchy behind its *own* guard
//! must neither observe corruption nor starve while its neighbor is
//! bombarding the interface.
//!
//! Setup, per guarded configuration: slot 0 is a fuzzed guard
//! (`FuzzXg`), slot 1 a correct one-level guarded accelerator whose
//! tester cores share the CPU pool. The attacker holds *no* write
//! permission on that pool, so any sibling value-check failure is a
//! containment breach, never legal traffic. Each cell runs twice — once
//! attacked, once with a zero-message fuzzer — and the cycle ratio bounds
//! the collateral slowdown.

use xg_core::XgVariant;
use xg_harness::{run_fuzz, AccelOrg, AccelSlot, FuzzOpts, HostProtocol, SystemConfig};
use xg_sim::Report;

use crate::table::Table;
use crate::Scale;

/// Report label of the attacked guard (instance 0).
pub const ATTACKED_GUARD: &str = "xg";
/// Report label of the correct sibling guard (instance 1).
pub const SIBLING_GUARD: &str = "a1_xg";

/// Collateral slowdown bound, in percent of the unattacked baseline
/// (1000 = the attacked system may take at most 10x the baseline cycles).
/// The attack adds real contention — guard timeouts on withheld
/// invalidation responses stall shared blocks for whole timeout windows —
/// so the bound is a blast-radius ceiling, not a perf target.
pub const MAX_SLOWDOWN_PCT: u64 = 1000;

/// One attacked-vs-baseline cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label (`hammer/fuzz_xg_full+xg_full_l1`, ...).
    pub config: String,
    /// Fuzz messages injected at guard 0's interface.
    pub injected: u64,
    /// Errors guard 0 (the attacked one) reported to the OS — evidence
    /// the attack engaged.
    pub attacked_os_errors: u64,
    /// Errors the *sibling* guard reported (must stay 0: a correct
    /// hierarchy gives its guard nothing to reject).
    pub sibling_os_errors: u64,
    /// Sibling tester value-check failures (must stay 0).
    pub sibling_data_errors: u64,
    /// Sibling tester operations completed under attack (liveness).
    pub sibling_ops: u64,
    /// Host protocol violations (must stay 0).
    pub host_violations: u64,
    /// CPU-side value-check failures (must stay 0).
    pub cpu_data_errors: u64,
    /// True if anything wedged under attack.
    pub deadlocked: bool,
    /// Cycles to completion under attack.
    pub attacked_cycles: u64,
    /// Cycles to completion with a silent fuzzer (same topology).
    pub baseline_cycles: u64,
}

impl Row {
    /// Attacked cycles as a percentage of baseline cycles (100 = no
    /// collateral slowdown).
    pub fn slowdown_pct(&self) -> u64 {
        self.attacked_cycles * 100 / self.baseline_cycles.max(1)
    }
}

/// The four guarded two-accelerator configurations: each fuzzed guard
/// variant rides with a correct one-level sibling of the same variant.
pub fn configs(seed: u64) -> Vec<SystemConfig> {
    let mut out = Vec::new();
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for variant in [XgVariant::FullState, XgVariant::Transactional] {
            out.push(SystemConfig {
                host,
                accel: AccelOrg::FuzzXg { variant },
                accels: vec![
                    AccelSlot::from(AccelOrg::FuzzXg { variant }),
                    AccelSlot::from(AccelOrg::Xg {
                        variant,
                        two_level: false,
                    }),
                ],
                seed,
                ..SystemConfig::default()
            });
        }
    }
    out
}

/// Runs the experiment at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> (Vec<Row>, Report) {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs every cell (4 configurations x {attacked, baseline}) on `jobs`
/// workers. The returned [`Report`] carries the per-configuration numbers
/// in its `fuzz` section under `<config>.{sibling_data_errors,
/// sibling_os_errors, attacked_os_errors, slowdown_pct}` keys.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> (Vec<Row>, Report) {
    let messages = scale.ops(300, 3_000);
    let cpu_ops = scale.ops(200, 2_000);
    let cells: Vec<(SystemConfig, bool)> = configs(seed)
        .into_iter()
        .flat_map(|cfg| [(cfg.clone(), true), (cfg, false)])
        .collect();
    let outcomes = xg_harness::sweep(cells.clone(), jobs, move |(cfg, attacked), _| {
        let fuzz = FuzzOpts {
            messages: if attacked { messages } else { 0 },
            ..FuzzOpts::default()
        };
        run_fuzz(&cfg, &fuzz, cpu_ops)
    });
    let mut rows = Vec::new();
    let mut summary = Report::new();
    // Cells alternate attacked/baseline per config (sweep preserves
    // submission order).
    for pair in cells.chunks(2).zip(outcomes.chunks(2)) {
        let ((cfg, _), [attacked, baseline]) = (&pair.0[0], pair.1) else {
            unreachable!("cells come in attacked/baseline pairs");
        };
        let label = cfg.name();
        let row = Row {
            config: label.clone(),
            injected: attacked.injected,
            attacked_os_errors: attacked.report.guard_get(ATTACKED_GUARD, "os_errors"),
            sibling_os_errors: attacked.report.guard_get(SIBLING_GUARD, "os_errors"),
            sibling_data_errors: attacked.report.guard_get(SIBLING_GUARD, "data_errors"),
            sibling_ops: attacked.report.guard_get(SIBLING_GUARD, "ops_completed"),
            host_violations: attacked.host_violations,
            cpu_data_errors: attacked.cpu_data_errors,
            deadlocked: attacked.deadlocked || baseline.deadlocked,
            attacked_cycles: attacked.cycles,
            baseline_cycles: baseline.cycles,
        };
        summary.fuzz_set(
            format!("{label}.sibling_data_errors"),
            row.sibling_data_errors,
        );
        summary.fuzz_set(format!("{label}.sibling_os_errors"), row.sibling_os_errors);
        summary.fuzz_set(
            format!("{label}.attacked_os_errors"),
            row.attacked_os_errors,
        );
        summary.fuzz_set(format!("{label}.slowdown_pct"), row.slowdown_pct());
        rows.push(row);
    }
    (rows, summary)
}

/// Regression gate: the blast radius of a fuzzed guard must not reach its
/// sibling — no corruption anywhere, no sibling guard errors, no host
/// violations, no deadlock, bounded collateral slowdown — while the attack
/// demonstrably engaged (guard 0 rejected traffic, sibling made progress).
pub fn failures(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.sibling_data_errors > 0 {
            out.push(format!(
                "E12 {}: {} sibling data errors — containment breached",
                r.config, r.sibling_data_errors
            ));
        }
        if r.sibling_os_errors > 0 {
            out.push(format!(
                "E12 {}: sibling guard reported {} errors for a correct hierarchy",
                r.config, r.sibling_os_errors
            ));
        }
        if r.cpu_data_errors > 0 {
            out.push(format!(
                "E12 {}: {} cpu data errors under attack",
                r.config, r.cpu_data_errors
            ));
        }
        if r.host_violations > 0 {
            out.push(format!(
                "E12 {}: {} host protocol violations",
                r.config, r.host_violations
            ));
        }
        if r.deadlocked {
            out.push(format!("E12 {}: deadlocked", r.config));
        }
        if r.attacked_os_errors == 0 {
            out.push(format!(
                "E12 {}: attacked guard reported no errors — attack never engaged",
                r.config
            ));
        }
        if r.sibling_ops == 0 {
            out.push(format!(
                "E12 {}: sibling completed no operations under attack",
                r.config
            ));
        }
        if r.slowdown_pct() > MAX_SLOWDOWN_PCT {
            out.push(format!(
                "E12 {}: attacked run took {}% of baseline cycles (bound {}%)",
                r.config,
                r.slowdown_pct(),
                MAX_SLOWDOWN_PCT
            ));
        }
    }
    out
}

/// Renders the blast-radius table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E12: blast radius — fuzzed guard vs correct sibling hierarchy",
        &[
            "config",
            "injected",
            "guard0 errs",
            "sib errs",
            "sib data errs",
            "sib ops",
            "violations",
            "slowdown",
            "deadlock",
        ],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            r.injected.to_string(),
            r.attacked_os_errors.to_string(),
            r.sibling_os_errors.to_string(),
            r.sibling_data_errors.to_string(),
            r.sibling_ops.to_string(),
            r.host_violations.to_string(),
            format!("{}%", r.slowdown_pct()),
            if r.deadlocked { "YES" } else { "no" }.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claim: one fuzzed guard plus a correct sibling on
    /// all four guarded configurations — the sibling sees zero errors of
    /// any kind, the host stays whole, every OS error is attributed to the
    /// attacked guard, and the collateral slowdown stays bounded.
    #[test]
    fn blast_radius_stops_at_the_attacked_guard() {
        let (rows, summary) = run(Scale::Quick, 0xB1A57);
        assert_eq!(rows.len(), 4);
        let gate = failures(&rows);
        assert!(gate.is_empty(), "{gate:?}");
        for r in &rows {
            assert!(r.attacked_os_errors > 0, "{}: attack engaged", r.config);
            assert_eq!(r.sibling_data_errors, 0, "{}", r.config);
            assert_eq!(r.sibling_os_errors, 0, "{}", r.config);
            assert_eq!(
                summary.fuzz_get(&format!("{}.sibling_data_errors", r.config)),
                0
            );
            assert_eq!(
                summary.fuzz_get(&format!("{}.attacked_os_errors", r.config)),
                r.attacked_os_errors
            );
        }
    }
}

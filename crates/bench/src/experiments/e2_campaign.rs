//! E2b — coverage-guided campaign vs. blind fuzzing at an equal message
//! budget, on the four guarded configurations of E2's group 1.
//!
//! The paper's fuzz claim (§1, §4) is about *blind* random traffic; the
//! campaign layer ([`xg_harness::campaign`]) adds AFL-style feedback
//! (per-machine `TransitionCoverage` deltas), structural schedule
//! mutation, link fault injection, and permission-window attacks. This
//! experiment quantifies what that buys: for every guarded configuration
//! the guided campaign must fire strictly more distinct `(state, event)`
//! pairs than the blind E2 fuzzer given *at least* as many messages —
//! while still producing zero violations, zero data corruption, and zero
//! deadlocks.

use xg_core::XgVariant;
use xg_harness::{run_blind, run_campaign, AccelOrg, CampaignOpts, HostProtocol, SystemConfig};
use xg_sim::Report;

use crate::table::Table;
use crate::Scale;

/// One guided-vs-blind comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub config: String,
    /// Campaign runs executed.
    pub runs: u64,
    /// Messages the campaign injected — the blind budget.
    pub budget: u64,
    /// Distinct `(state, event)` pairs the guided campaign fired.
    pub guided_pairs: u64,
    /// Messages the blind fuzzer injected (≥ `budget` by construction).
    pub blind_injected: u64,
    /// Distinct `(state, event)` pairs the blind fuzzer fired.
    pub blind_pairs: u64,
    /// Corpus entries that discovered new coverage.
    pub corpus: u64,
    /// Host protocol violations across the campaign (must stay 0).
    pub violations: u64,
    /// CPU data corruption events across the campaign (must stay 0).
    pub data_errors: u64,
    /// Deadlocked runs across the campaign (must stay 0).
    pub deadlocks: u64,
}

/// The four guarded configurations (E2 group 1).
pub fn configs() -> Vec<SystemConfig> {
    let mut out = Vec::new();
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for variant in [XgVariant::FullState, XgVariant::Transactional] {
            out.push(SystemConfig {
                host,
                accel: AccelOrg::FuzzXg { variant },
                ..SystemConfig::default()
            });
        }
    }
    out
}

/// Campaign sizing per scale. Quick stays a smoke (a few seconds per
/// configuration on one core); Full is the nightly depth.
pub fn opts(scale: Scale, seed: u64) -> CampaignOpts {
    CampaignOpts {
        seed,
        generations: scale.ops(2, 5) as usize,
        batch: scale.ops(3, 6) as usize,
        run_len: scale.ops(25, 40) as usize,
        cpu_ops: scale.ops(200, 400),
        ..CampaignOpts::default()
    }
}

/// Runs the comparison at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> (Vec<Row>, Report) {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the comparison on `jobs` workers. Configurations run serially
/// (each campaign parallelizes its own generation batches); the returned
/// [`Report`] carries the per-configuration numbers in its `fuzz` section
/// under `<config>.{budget, guided_pairs, blind_injected, blind_pairs}`
/// keys.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> (Vec<Row>, Report) {
    let mut rows = Vec::new();
    let mut summary = Report::new();
    for base in configs() {
        let label = base.name();
        let mut o = opts(scale, seed);
        o.jobs = Some(jobs);
        let guided = run_campaign(&base, &o);
        let blind = run_blind(&base, &o, guided.injected);
        let (mut violations, mut data_errors, mut deadlocks) = (0u64, 0u64, 0u64);
        for f in &guided.failures {
            match f.kind {
                xg_harness::FailureKind::HostViolation => violations += 1,
                xg_harness::FailureKind::DataError => data_errors += 1,
                xg_harness::FailureKind::Deadlock => deadlocks += 1,
            }
        }
        summary.fuzz_set(format!("{label}.budget"), guided.injected);
        summary.fuzz_set(format!("{label}.guided_pairs"), guided.distinct_pairs());
        summary.fuzz_set(format!("{label}.blind_injected"), blind.injected);
        summary.fuzz_set(format!("{label}.blind_pairs"), blind.distinct_pairs());
        rows.push(Row {
            config: label,
            runs: guided.runs,
            budget: guided.injected,
            guided_pairs: guided.distinct_pairs(),
            blind_injected: blind.injected,
            blind_pairs: blind.distinct_pairs(),
            corpus: guided.corpus.len() as u64,
            violations,
            data_errors,
            deadlocks,
        });
    }
    (rows, summary)
}

/// Regression gate: every guarded configuration must stay safe under the
/// full campaign (faults on) *and* the guidance must pay for itself —
/// strictly more distinct pairs than blind fuzzing at the same budget.
pub fn failures(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.violations > 0 {
            out.push(format!(
                "E2b {}: {} host protocol violations under campaign",
                r.config, r.violations
            ));
        }
        if r.data_errors > 0 {
            out.push(format!(
                "E2b {}: {} cpu data errors under campaign",
                r.config, r.data_errors
            ));
        }
        if r.deadlocks > 0 {
            out.push(format!(
                "E2b {}: {} deadlocked runs under campaign",
                r.config, r.deadlocks
            ));
        }
        if r.guided_pairs <= r.blind_pairs {
            out.push(format!(
                "E2b {}: guided campaign fired {} distinct pairs vs blind {} at budget {} — \
                 guidance did not pay",
                r.config, r.guided_pairs, r.blind_pairs, r.budget
            ));
        }
    }
    out
}

/// Renders the guided-vs-blind table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E2b: coverage-guided campaign vs blind fuzzing (equal message budget)",
        &[
            "config",
            "runs",
            "budget",
            "guided pairs",
            "blind pairs",
            "corpus",
            "violations",
            "data errors",
            "deadlocks",
        ],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            r.runs.to_string(),
            r.budget.to_string(),
            r.guided_pairs.to_string(),
            r.blind_pairs.to_string(),
            r.corpus.to_string(),
            r.violations.to_string(),
            r.data_errors.to_string(),
            r.deadlocks.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claim: on all four guarded configurations the guided
    /// campaign beats blind fuzzing at an equal budget, with zero safety
    /// breaks, and the numbers land in the Report `fuzz` section.
    #[test]
    fn guided_beats_blind_on_every_guarded_config() {
        let (rows, summary) = run(Scale::Quick, 0xC4A55);
        assert_eq!(rows.len(), 4);
        let gate = failures(&rows);
        assert!(gate.is_empty(), "{gate:?}");
        for r in &rows {
            assert!(
                r.guided_pairs > r.blind_pairs,
                "{}: guided {} <= blind {}",
                r.config,
                r.guided_pairs,
                r.blind_pairs
            );
            assert!(
                r.blind_injected >= r.budget,
                "{}: blind short-changed",
                r.config
            );
            assert_eq!(
                summary.fuzz_get(&format!("{}.guided_pairs", r.config)),
                r.guided_pairs
            );
            assert_eq!(
                summary.fuzz_get(&format!("{}.blind_pairs", r.config)),
                r.blind_pairs
            );
        }
    }
}

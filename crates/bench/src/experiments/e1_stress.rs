//! E1 — the §4.1 protocol stress test, across all twelve configurations.
//!
//! Paper claim: running the random value-checking tester over every
//! configuration finds **no data errors and no deadlocks**, while visiting
//! broad state/event coverage at every controller. (The paper ran 240 M —
//! 82 B load/check pairs per configuration over 22 compute-years; the op
//! counts here are scaled to seconds — crank [`crate::Scale`] or the
//! `ops` knob to scale up.)

use xg_harness::{run_stress, StressOpts, SystemConfig};

use crate::table::Table;
use crate::Scale;

/// One configuration's stress outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration name (`host/org`).
    pub config: String,
    /// Operations completed.
    pub completed: u64,
    /// Distinct (state, event) pairs visited across all controllers.
    pub transitions: usize,
    /// Value-check failures — the headline number; must be zero.
    pub data_errors: u64,
    /// Whether the run deadlocked — must be false.
    pub deadlocked: bool,
    /// Simulated cycles.
    pub cycles: u64,
}

/// Runs the stress test over the full configuration matrix.
pub fn run(scale: Scale, seeds: &[u64]) -> Vec<Row> {
    let ops = scale.ops(800, 10_000);
    let mut rows = Vec::new();
    for base in SystemConfig::matrix(1) {
        let mut completed = 0;
        let mut transitions = 0;
        let mut data_errors = 0;
        let mut deadlocked = false;
        let mut cycles = 0;
        for &seed in seeds {
            let cfg = SystemConfig {
                seed,
                ..base.clone()
            };
            let out = run_stress(
                &cfg,
                &StressOpts {
                    ops,
                    ..StressOpts::default()
                },
            );
            completed += out.completed;
            transitions = transitions.max(out.transitions);
            data_errors += out.data_errors;
            deadlocked |= out.deadlocked;
            cycles += out.cycles;
        }
        rows.push(Row {
            config: base.name(),
            completed,
            transitions,
            data_errors,
            deadlocked,
            cycles,
        });
    }
    rows
}

/// Renders the E1 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E1 (§4.1): random stress test — correctness with a correct accelerator",
        &[
            "config",
            "ops",
            "state/event pairs",
            "data errors",
            "deadlock",
            "cycles",
        ],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            r.completed.to_string(),
            r.transitions.to_string(),
            r.data_errors.to_string(),
            if r.deadlocked { "YES" } else { "no" }.into(),
            r.cycles.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_clean_everywhere() {
        let rows = run(Scale::Quick, &[3]);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert_eq!(r.data_errors, 0, "{}", r.config);
            assert!(!r.deadlocked, "{}", r.config);
            assert!(r.transitions > 10, "{}", r.config);
        }
        let rendered = table(&rows);
        assert!(rendered.contains("hammer/accel_side"));
        assert!(rendered.contains("mesi/xg_tx_l2"));
    }
}

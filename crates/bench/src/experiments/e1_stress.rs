//! E1 — the §4.1 protocol stress test, across all twelve configurations.
//!
//! Paper claim: running the random value-checking tester over every
//! configuration finds **no data errors and no deadlocks**, while visiting
//! broad state/event coverage at every controller. (The paper ran 240 M —
//! 82 B load/check pairs per configuration over 22 compute-years; the op
//! counts here are scaled to seconds — crank [`crate::Scale`] or the
//! `ops` knob to scale up.)

use xg_harness::{run_stress, sweep, StressOpts, SystemConfig};

use crate::table::Table;
use crate::Scale;

/// One configuration's stress outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration name (`host/org`).
    pub config: String,
    /// Operations completed.
    pub completed: u64,
    /// Distinct (state, event) pairs visited across all controllers.
    pub transitions: usize,
    /// Value-check failures — the headline number; must be zero.
    pub data_errors: u64,
    /// Whether the run deadlocked — must be false.
    pub deadlocked: bool,
    /// Simulated cycles.
    pub cycles: u64,
}

/// Runs the stress test over the full configuration matrix, using the
/// resolved default worker count (`XG_JOBS` or one per core).
pub fn run(scale: Scale, seeds: &[u64]) -> Vec<Row> {
    run_jobs(scale, seeds, xg_harness::resolve_jobs(None))
}

/// Runs the stress test over the full configuration matrix on `jobs`
/// workers. Every `(configuration, seed)` pair is an independent shard;
/// shard outcomes fold back per configuration in matrix order, so the rows
/// are identical for any `jobs`.
pub fn run_jobs(scale: Scale, seeds: &[u64], jobs: usize) -> Vec<Row> {
    let ops = scale.ops(800, 10_000);
    let matrix = SystemConfig::matrix(1);
    let shards: Vec<SystemConfig> = matrix
        .iter()
        .flat_map(|base| {
            seeds.iter().map(|&seed| SystemConfig {
                seed,
                ..base.clone()
            })
        })
        .collect();
    let outcomes = sweep(shards, jobs, |cfg, _| {
        run_stress(
            &cfg,
            &StressOpts {
                ops,
                ..StressOpts::default()
            },
        )
    });
    matrix
        .iter()
        .zip(outcomes.chunks(seeds.len()))
        .map(|(base, outs)| Row {
            config: base.name(),
            completed: outs.iter().map(|o| o.completed).sum(),
            transitions: outs.iter().map(|o| o.transitions).max().unwrap_or(0),
            data_errors: outs.iter().map(|o| o.data_errors).sum(),
            deadlocked: outs.iter().any(|o| o.deadlocked),
            cycles: outs.iter().map(|o| o.cycles).sum(),
        })
        .collect()
}

/// Regression gate: the lines that make the report exit nonzero.
pub fn failures(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.data_errors > 0 {
            out.push(format!("E1 {}: {} data errors", r.config, r.data_errors));
        }
        if r.deadlocked {
            out.push(format!("E1 {}: deadlocked", r.config));
        }
    }
    out
}

/// Renders the E1 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E1 (§4.1): random stress test — correctness with a correct accelerator",
        &[
            "config",
            "ops",
            "state/event pairs",
            "data errors",
            "deadlock",
            "cycles",
        ],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            r.completed.to_string(),
            r.transitions.to_string(),
            r.data_errors.to_string(),
            if r.deadlocked { "YES" } else { "no" }.into(),
            r.cycles.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_clean_everywhere() {
        let rows = run(Scale::Quick, &[3]);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert_eq!(r.data_errors, 0, "{}", r.config);
            assert!(!r.deadlocked, "{}", r.config);
            assert!(r.transitions > 10, "{}", r.config);
        }
        let rendered = table(&rows);
        assert!(rendered.contains("hammer/accel_side"));
        assert!(rendered.contains("mesi/xg_tx_l2"));
    }
}

//! E5 — `PutS` bandwidth on the XG→host link (§2.1).
//!
//! Paper claim: "unnecessary PutS messages comprised about 1–4 % of
//! Crossing-Guard-to-host bandwidth", and a suppression knob removes them
//! when the host tolerates silent shared eviction. We measure two
//! workloads:
//!
//! * a **read-only shared** microworkload (every accelerator eviction is a
//!   shared copy) — the worst case, bounding the PutS fraction from above;
//! * the **mixed** producer-consumer workload — the realistic case, where
//!   the fraction lands in the paper's low-single-digit range.
//!
//! On the Hammer host no PutS exists at all; the guard suppresses every
//! one. On MESI the suppression knob removes them from the link.

use xg_core::{OsPolicy, XgConfig, XgVariant};
use xg_harness::system::CoreSlot;
use xg_harness::{
    build_system, sweep, AccelOrg, HostProtocol, Pattern, SystemConfig, WorkloadCore,
};

use crate::table::{percent, Table};
use crate::Scale;

/// One measurement row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label.
    pub label: String,
    /// Messages sent by the guard to the host network.
    pub host_sent: u64,
    /// Put-class messages among them.
    pub puts_sent: u64,
    /// `PutS` suppressed at the guard.
    pub suppressed: u64,
    /// Shared-eviction (`PutS`) messages that reached the host L2.
    pub put_s_at_host: u64,
}

/// Runs one read-only-shared measurement: CPUs and the accelerator all
/// walk the same region with loads only, so every accelerator grant is a
/// *shared* copy and every accelerator eviction is a `PutS`.
fn measure(
    host: HostProtocol,
    suppress: bool,
    pattern: Pattern,
    ops: u64,
    seed: u64,
    label: &str,
) -> Row {
    const BASE: u64 = 0x20_0000;
    const FOOTPRINT: u64 = 2_048;
    let cfg = SystemConfig {
        host,
        accel: AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        },
        accel_cache: (8, 2),
        xg: XgConfig {
            suppress_put_s: suppress,
            ..XgConfig::default()
        },
        seed,
        ..SystemConfig::default()
    };
    let mut system = build_system(&cfg, OsPolicy::ReportOnly, None, |slot, cache, _| {
        let name = match slot {
            CoreSlot::Cpu(i) => format!("wl_cpu{i}"),
            CoreSlot::Accel(i) => format!("wl_acc{i}"),
        };
        Box::new(WorkloadCore::new(
            name, cache, pattern, BASE, FOOTPRINT, ops,
        ))
    });
    system.start_cores();
    let out = system.sim.run_with_watchdog(100_000_000, 500_000);
    assert!(!out.stalled, "{label} hung");
    let report = system.sim.report();
    Row {
        label: label.to_string(),
        host_sent: report.get("xg.host_sent"),
        puts_sent: report.get("xg.host_puts_sent"),
        suppressed: report.get("xg.puts_suppressed"),
        put_s_at_host: report.get("host_l2.put_s"),
    }
}

/// Runs the PutS bandwidth measurement at the resolved default worker
/// count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the PutS bandwidth measurement on `jobs` workers, one shard per
/// measured configuration.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    let ops = scale.ops(4_000, 12_000);
    let shards: Vec<(HostProtocol, bool, Pattern, &str)> = vec![
        (
            HostProtocol::Hammer,
            false,
            Pattern::GraphWalk,
            "hammer, read-only shared (always suppressed)",
        ),
        (
            HostProtocol::Mesi,
            false,
            Pattern::GraphWalk,
            "mesi, read-only shared, forwarded (worst case)",
        ),
        (
            HostProtocol::Mesi,
            true,
            Pattern::GraphWalk,
            "mesi, read-only shared, suppressed",
        ),
        (
            HostProtocol::Mesi,
            false,
            Pattern::ProducerConsumer,
            "mesi, mixed workload, forwarded (typical)",
        ),
    ];
    sweep(shards, jobs, |(host, suppress, pattern, label), _| {
        measure(host, suppress, pattern, ops, seed, label)
    })
}

/// Renders the E5 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E5 (§2.1): PutS share of XG-to-host traffic (paper: 1-4%)",
        &[
            "configuration",
            "XG->host msgs",
            "puts sent",
            "PutS share",
            "PutS suppressed",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.clone(),
            r.host_sent.to_string(),
            r.puts_sent.to_string(),
            percent(r.put_s_at_host, r.host_sent.max(1)),
            r.suppressed.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puts_share_is_small_and_suppression_works() {
        let rows = run(Scale::Quick, 4);
        let hammer = &rows[0];
        let fwd = &rows[1];
        let sup = &rows[2];
        let mixed = &rows[3];
        // Hammer: no PutS ever reaches the host; suppression counts them.
        assert!(hammer.suppressed > 0);
        // MESI forwarding (worst case): PutS reaches the L2.
        assert!(fwd.put_s_at_host > 0, "no shared evictions generated");
        // Suppression removes them from the link.
        assert_eq!(sup.put_s_at_host, 0);
        assert!(sup.suppressed > 0);
        // The mixed workload's PutS share is far below the read-only worst
        // case (the paper's 1-4% regime).
        let frac = |r: &Row| r.put_s_at_host as f64 / r.host_sent.max(1) as f64;
        assert!(
            frac(mixed) < frac(fwd) / 2.0,
            "mixed {}% vs worst-case {}%",
            100.0 * frac(mixed),
            100.0 * frac(fwd)
        );
    }
}

//! E9 — block-size translation (§2.5).
//!
//! The accelerator may use blocks that are multiples of the 64 B host
//! block; Crossing Guard merges Gets/grants and splits Puts. We run the
//! same blocked workload with accelerator blocks of 64, 128, and 256 bytes
//! and report runtime, interface traffic (which shrinks — fewer, larger
//! messages), and host traffic (which stays proportional to data moved).

use xg_core::{XgConfig, XgVariant};
use xg_harness::{run_workload, sweep, AccelOrg, HostProtocol, Pattern, SystemConfig};

use crate::table::Table;
use crate::Scale;

/// One block-size setting's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Accelerator block size in host blocks.
    pub k: usize,
    /// Accelerator runtime in cycles.
    pub runtime: u64,
    /// Messages crossing the accelerator↔guard interface.
    pub interface_msgs: u64,
    /// Messages on the guard↔host network.
    pub host_msgs: u64,
    /// Errors (must be zero).
    pub errors: u64,
}

/// Runs the block-size sweep at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the block-size sweep on `jobs` workers, one shard per block size.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    let ops = scale.ops(3_000, 10_000);
    sweep(vec![1usize, 2, 4], jobs, |k, _| {
        let cfg = SystemConfig {
            host: HostProtocol::Hammer,
            accel: AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: false,
            },
            xg: XgConfig {
                block_blocks: k,
                ..XgConfig::default()
            },
            seed,
            ..SystemConfig::default()
        };
        let out = run_workload(&cfg, Pattern::Blocked, ops);
        assert!(!out.incomplete, "k={k} hung");
        Row {
            k,
            runtime: out.accel_runtime,
            interface_msgs: out.report.get("xg.accel_received") + out.report.get("xg.accel_sent"),
            host_msgs: out.report.get("xg.host_sent") + out.report.get("xg.host_received"),
            errors: out.report.get("os.errors_total"),
        }
    })
}

/// Regression gate: any translation error fails the report.
pub fn failures(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .filter(|r| r.errors > 0)
        .map(|r| format!("E9 k={}: {} errors", r.k, r.errors))
        .collect()
}

/// Renders the E9 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E9 (§2.5): accelerator block-size translation (blocked workload)",
        &[
            "accel block",
            "runtime (cycles)",
            "interface msgs",
            "host msgs",
            "errors",
        ],
    );
    for r in rows {
        t.row(&[
            format!("{} B", r.k * 64),
            r.runtime.to_string(),
            r.interface_msgs.to_string(),
            r.host_msgs.to_string(),
            r.errors.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_blocks_cut_interface_traffic_without_errors() {
        let rows = run(Scale::Quick, 8);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.errors, 0, "k={}", r.k);
            assert!(r.runtime > 0);
        }
        // A blocked (high-spatial-locality) workload needs fewer interface
        // messages per byte with larger accelerator blocks.
        assert!(
            rows[2].interface_msgs < rows[0].interface_msgs,
            "256 B blocks should reduce interface messages: {} vs {}",
            rows[2].interface_msgs,
            rows[0].interface_msgs
        );
    }
}

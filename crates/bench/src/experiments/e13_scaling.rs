//! E13 — intra-run scaling: sharded home nodes × parallel execution.
//!
//! The sharded-home tentpole splits one simulation along its natural
//! partition — M address-interleaved home banks, one shard per
//! accelerator hierarchy, one per CPU core/cache pair — and runs the
//! shards on W workers under conservative time-window barriers. This
//! experiment sweeps the whole shape product (CPU cores × accelerator
//! slots × home banks × worker threads) and pins the two claims that
//! make the feature shippable:
//!
//! * **Safety at every point**: no cell may deadlock, corrupt data,
//!   raise a protocol violation, or report a spurious guard error —
//!   banking and partitioning must never change what the protocols do.
//! * **Worker-count invariance**: for a fixed partition, every
//!   `threads ≥ 2` cell must be *byte-identical* (same cycles, same
//!   completed ops, same report JSON) to its `threads = 1` oracle.
//!   The table carries a fingerprint column so the gate is visible.
//!
//! Simulated metrics only — no wall-clock fields — so the table and the
//! summary report are deterministic and safe to diff across machines.
//! Wall-clock speedup lives in `BENCH_sweep.json`'s `intra_run` section
//! (see `xg-sweep-bench`), which is never drift-gated.

use xg_harness::{run_stress_with, HostProtocol, Instrumentation, StressOpts, SystemConfig};
use xg_sim::Report;

use crate::table::Table;
use crate::Scale;

/// One (shape × banks × threads) cell.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label with `@bM`/`@tW` execution suffixes.
    pub config: String,
    /// CPU core count.
    pub cpus: usize,
    /// Accelerator slot count.
    pub accels: usize,
    /// Address-interleaved home banks.
    pub banks: usize,
    /// Parallel worker threads (≥ 1: the partitioned executor).
    pub threads: usize,
    /// Tester operations completed.
    pub ops: u64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Host protocol violations (must stay 0).
    pub violations: u64,
    /// Guard errors reported to the OS (must stay 0 — nothing fuzzes).
    pub os_errors: u64,
    /// Value-check failures (must stay 0).
    pub data_errors: u64,
    /// True if the watchdog fired or ops were left hanging.
    pub deadlocked: bool,
    /// FNV-1a over (cycles, completed, report JSON): rows sharing a
    /// partition must share this at every worker count.
    pub fingerprint: u64,
}

impl Row {
    /// Simulated throughput: operations per thousand cycles.
    pub fn ops_per_kcycle(&self) -> u64 {
        self.ops * 1_000 / self.cycles.max(1)
    }

    /// The partition key: rows agreeing here must agree on `fingerprint`.
    pub fn partition(&self) -> (usize, usize, usize) {
        (self.cpus, self.accels, self.banks)
    }
}

/// FNV-1a, 64-bit: stable, dependency-free fingerprinting.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// System shapes crossed with the bank/thread sweep: a small guarded
/// system on each host protocol, and a wider one with two hierarchies.
const SHAPES: [(HostProtocol, usize, usize); 2] =
    [(HostProtocol::Hammer, 2, 1), (HostProtocol::Mesi, 4, 2)];
/// Home-bank counts swept per shape.
const BANKS: [usize; 3] = [1, 2, 4];
/// Worker counts swept per partition; 1 is the invariance oracle.
const THREADS: [usize; 3] = [1, 2, 4];

/// Every cell of the sweep, in table order.
pub fn configs(seed: u64) -> Vec<SystemConfig> {
    let mut out = Vec::new();
    for (host, cpus, accels) in SHAPES {
        for banks in BANKS {
            for threads in THREADS {
                out.push(SystemConfig {
                    host,
                    cpu_cores: cpus,
                    num_accels: accels,
                    home_banks: banks,
                    threads,
                    seed,
                    ..SystemConfig::default()
                });
            }
        }
    }
    out
}

/// Runs the experiment at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> (Vec<Row>, Report) {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs every cell on `jobs` workers. The returned [`Report`] carries
/// per-cell simulated throughput and the partition fingerprints under
/// `e13.<config>.*` scalar keys.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> (Vec<Row>, Report) {
    let ops = scale.ops(150, 1_500);
    let cells = configs(seed);
    let outcomes = xg_harness::sweep(cells.clone(), jobs, move |cfg, _| {
        run_stress_with(
            &cfg,
            &StressOpts {
                ops,
                ..StressOpts::default()
            },
            &Instrumentation::off(),
        )
    });
    let mut rows = Vec::new();
    let mut summary = Report::new();
    for (cfg, out) in cells.iter().zip(outcomes) {
        let json = out.report.to_json();
        let mut tagged = json.into_bytes();
        tagged.extend_from_slice(&out.cycles.to_le_bytes());
        tagged.extend_from_slice(&out.completed.to_le_bytes());
        let row = Row {
            config: cfg.exec_name(),
            cpus: cfg.cpu_cores,
            accels: cfg.num_accels,
            banks: cfg.home_banks,
            threads: cfg.threads,
            ops: out.completed,
            cycles: out.cycles,
            violations: out.report.sum_suffix(".protocol_violation"),
            os_errors: out.report.get("os.errors_total"),
            data_errors: out.data_errors,
            deadlocked: out.deadlocked,
            fingerprint: fnv1a(&tagged),
        };
        summary.set(
            format!("e13.{}.ops_per_kcycle", row.config),
            row.ops_per_kcycle(),
        );
        summary.set(format!("e13.{}.cycles", row.config), row.cycles);
        summary.set(format!("e13.{}.fingerprint", row.config), row.fingerprint);
        rows.push(row);
    }
    (rows, summary)
}

/// Regression gate: every cell clean, and every partition worker-count
/// invariant against its `threads = 1` oracle.
pub fn failures(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for r in rows {
        if r.deadlocked {
            out.push(format!("E13 {}: deadlocked", r.config));
        }
        if r.data_errors > 0 {
            out.push(format!("E13 {}: {} data errors", r.config, r.data_errors));
        }
        if r.violations > 0 {
            out.push(format!(
                "E13 {}: {} protocol violations",
                r.config, r.violations
            ));
        }
        if r.os_errors > 0 {
            out.push(format!(
                "E13 {}: {} spurious guard errors",
                r.config, r.os_errors
            ));
        }
    }
    for r in rows {
        if r.threads == 1 {
            continue;
        }
        let Some(oracle) = rows
            .iter()
            .find(|o| o.threads == 1 && o.partition() == r.partition())
        else {
            out.push(format!("E13 {}: no threads=1 oracle in sweep", r.config));
            continue;
        };
        if r.fingerprint != oracle.fingerprint {
            out.push(format!(
                "E13 {}: diverged from {} — worker-count invariance broken",
                r.config, oracle.config
            ));
        }
    }
    out
}

/// Renders the scaling table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E13: intra-run scaling — home banks x worker threads",
        &[
            "config",
            "cpus",
            "accels",
            "banks",
            "threads",
            "ops",
            "cycles",
            "ops/kcyc",
            "viol",
            "deadlock",
            "fingerprint",
        ],
    );
    for r in rows {
        t.row(&[
            r.config.clone(),
            r.cpus.to_string(),
            r.accels.to_string(),
            r.banks.to_string(),
            r.threads.to_string(),
            r.ops.to_string(),
            r.cycles.to_string(),
            r.ops_per_kcycle().to_string(),
            r.violations.to_string(),
            if r.deadlocked { "YES" } else { "no" }.to_string(),
            format!("{:016x}", r.fingerprint),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance claim: the whole (shape × banks × threads) product
    /// runs clean, and within every partition the parallel cells are
    /// byte-identical to the single-worker oracle.
    #[test]
    fn every_partition_scales_clean_and_invariant() {
        let (rows, summary) = run(Scale::Quick, 0x5CA1E);
        assert_eq!(rows.len(), SHAPES.len() * BANKS.len() * THREADS.len());
        let gate = failures(&rows);
        assert!(gate.is_empty(), "{gate:?}");
        for r in &rows {
            assert!(r.ops > 0, "{}: no progress", r.config);
            assert_eq!(
                summary.get(&format!("e13.{}.fingerprint", r.config)),
                r.fingerprint
            );
        }
        // Spot-check the invariance gate actually compares something:
        // each partition must appear at every worker count.
        for r in rows.iter().filter(|r| r.threads == 1) {
            let siblings = rows
                .iter()
                .filter(|o| o.partition() == r.partition())
                .count();
            assert_eq!(siblings, THREADS.len());
        }
    }
}

//! The experiment index (see `DESIGN.md` §4): one module per table/figure.

pub mod e11_prefetch;
pub mod e12_blast_radius;
pub mod e13_scaling;
pub mod e1_stress;
pub mod e2_campaign;
pub mod e2_fuzz;
pub mod e3_performance;
pub mod e4_storage;
pub mod e5_puts;
pub mod e6_rate_limit;
pub mod e8_timeout;
pub mod e9_blocksize;

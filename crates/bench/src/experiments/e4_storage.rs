//! E4 — Crossing Guard storage: Full State vs. Transactional (§2.3), plus
//! the E7 GetSOnly-vs-shadow ablation (§2.3.1).
//!
//! Paper numbers: a Full State guard needs tag+state storage for every
//! block the accelerator holds (~16 kB for a 256 kB accelerator cache),
//! plus data shadows for read-only blocks held exclusively unless the host
//! offers a non-upgradable `GetSOnly`; a Transactional guard needs only
//! open-transaction storage, independent of accelerator cache size.

use xg_core::{XgConfig, XgVariant};
use xg_harness::{run_workload, sweep, AccelOrg, HostProtocol, Pattern, SystemConfig};
use xg_mem::{Addr, PagePerm, PermissionTable};

use crate::table::{bytes, Table};
use crate::Scale;

/// One measurement row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label (variant + accel cache size / ablation setting).
    pub label: String,
    /// Accelerator cache capacity in 64 B blocks.
    pub accel_blocks: u64,
    /// Peak Crossing Guard storage observed, in bytes.
    pub peak_bytes: u64,
    /// The paper's back-of-envelope model for Full State (tag+state per
    /// resident block): `blocks * 10 B`; 0 for Transactional.
    pub model_bytes: u64,
}

fn measure(cfg: &SystemConfig, pattern: Pattern, ops: u64) -> u64 {
    let out = run_workload(cfg, pattern, ops);
    assert!(!out.incomplete, "{} hung", cfg.name());
    out.report.get("xg.peak_storage_bytes")
}

/// Runs the storage sweep at the resolved default worker count.
pub fn run(scale: Scale, seed: u64) -> Vec<Row> {
    run_jobs(scale, seed, xg_harness::resolve_jobs(None))
}

/// Runs the storage sweep on `jobs` workers: one shard per measured
/// configuration, rows in the fixed presentation order for any `jobs`.
pub fn run_jobs(scale: Scale, seed: u64, jobs: usize) -> Vec<Row> {
    let ops = scale.ops(4_000, 12_000);
    // Each shard carries the finished row minus the measured peak.
    let mut shards: Vec<(SystemConfig, Pattern, Row)> = Vec::new();
    // Sweep accelerator cache sizes; the streaming footprint (256 blocks)
    // exceeds every size here, so Full State tracks a full cache's worth.
    for (sets, ways) in [(8usize, 2usize), (32, 2), (64, 4)] {
        let blocks = (sets * ways) as u64;
        for variant in [XgVariant::FullState, XgVariant::Transactional] {
            let cfg = SystemConfig {
                host: HostProtocol::Hammer,
                accel: AccelOrg::Xg {
                    variant,
                    two_level: false,
                },
                accel_cache: (sets, ways),
                seed,
                ..SystemConfig::default()
            };
            let row = Row {
                label: format!(
                    "{} / {} blocks ({} KiB cache)",
                    match variant {
                        XgVariant::FullState => "full_state",
                        XgVariant::Transactional => "transactional",
                    },
                    blocks,
                    blocks * 64 / 1024
                ),
                accel_blocks: blocks,
                peak_bytes: 0,
                model_bytes: match variant {
                    XgVariant::FullState => blocks * 10,
                    XgVariant::Transactional => 0,
                },
            };
            shards.push((cfg, Pattern::Streaming, row));
        }
    }
    // E7 ablation: read-only footprint, Full State, with vs. without the
    // GetSOnly host request. Without it the guard must shadow-store data.
    let mut perms = PermissionTable::new();
    // The workload footprint starts at 0x10_0000 (see runner): mark those
    // pages read-only for the accelerator.
    for page in 0..8 {
        perms.set(Addr::new(0x10_0000 + page * 4096).page(), PagePerm::Read);
    }
    for (label, use_gets_only) in [
        ("full_state + GetSOnly (no shadows)", true),
        ("full_state shadow-store (no GetSOnly)", false),
    ] {
        let cfg = SystemConfig {
            host: HostProtocol::Hammer,
            accel: AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: false,
            },
            accel_cache: (64, 4),
            xg: XgConfig {
                use_gets_only,
                perms: perms.clone(),
                ..XgConfig::default()
            },
            seed,
            ..SystemConfig::default()
        };
        let row = Row {
            label: format!("E7: {label}"),
            accel_blocks: 256,
            peak_bytes: 0,
            model_bytes: 0,
        };
        // Graph walk: read-only, data-dependent — the §2.3.1 scenario.
        shards.push((cfg, Pattern::GraphWalk, row));
    }
    sweep(shards, jobs, |(cfg, pattern, mut row), _| {
        row.peak_bytes = measure(&cfg, pattern, ops);
        row
    })
}

/// Renders the E4/E7 table.
pub fn table(rows: &[Row]) -> String {
    let mut t = Table::new(
        "E4 (§2.3) + E7 (§2.3.1): Crossing Guard storage, Full State vs. Transactional",
        &[
            "configuration",
            "accel blocks",
            "peak XG storage",
            "model (tags+state)",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.clone(),
            r.accel_blocks.to_string(),
            bytes(r.peak_bytes),
            if r.model_bytes > 0 {
                bytes(r.model_bytes)
            } else {
                "—".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_state_scales_with_cache_and_transactional_does_not() {
        let rows = run(Scale::Quick, 3);
        let fs: Vec<&Row> = rows
            .iter()
            .filter(|r| r.label.starts_with("full_state /"))
            .collect();
        let tx: Vec<&Row> = rows
            .iter()
            .filter(|r| r.label.starts_with("transactional"))
            .collect();
        assert_eq!(fs.len(), 3);
        assert_eq!(tx.len(), 3);
        // Full State grows with the cache; Transactional stays flat-ish
        // and far below Full State at the largest size.
        assert!(fs[2].peak_bytes > fs[0].peak_bytes);
        assert!(fs[2].peak_bytes > 4 * tx[2].peak_bytes);
        // Shadow ablation: shadows cost strictly more storage.
        let gets_only = rows
            .iter()
            .find(|r| r.label.contains("GetSOnly (no"))
            .unwrap();
        let shadows = rows
            .iter()
            .find(|r| r.label.contains("shadow-store"))
            .unwrap();
        assert!(shadows.peak_bytes > gets_only.peak_bytes);
    }
}

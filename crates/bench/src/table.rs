//! Minimal plain-text table rendering for experiment output.

/// A simple left-aligned text table with a title and column headers.
///
/// ```rust
/// use xg_bench::table::Table;
/// let mut t = Table::new("demo", &["config", "value"]);
/// t.row(&["a".into(), "1".into()]);
/// let s = t.render();
/// assert!(s.contains("config"));
/// assert!(s.contains("a"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the number of cells differs from the number of headers.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as e.g. `1.34x`.
pub fn ratio(value: u64, baseline: u64) -> String {
    if baseline == 0 {
        "n/a".into()
    } else {
        format!("{:.2}x", value as f64 / baseline as f64)
    }
}

/// Formats a percentage with one decimal.
pub fn percent(part: u64, whole: u64) -> String {
    if whole == 0 {
        "0.0%".into()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Formats a byte count human-readably.
pub fn bytes(n: u64) -> String {
    if n >= 1024 * 1024 {
        format!("{:.1} MiB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 1024 {
        format!("{:.1} KiB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", &["a", "long_header"]);
        t.row(&["xxxx".into(), "1".into()]);
        t.row(&["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("== t =="));
        assert!(lines[1].starts_with("a     long_header"));
        assert!(lines[3].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(150, 100), "1.50x");
        assert_eq!(ratio(1, 0), "n/a");
        assert_eq!(percent(1, 8), "12.5%");
        assert_eq!(percent(0, 0), "0.0%");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
    }
}

//! Hot-path attribution: profiled runs, the table behind
//! `xg-report --profile`, and timeline capture for `--timeline`.
//!
//! Everything here consumes the report's `profile` section (see
//! `xg_prof`): `dispatch.<component>.<class>` counters, the paired
//! `host_ns.<component>.<class>` sampled host-time attribution, queue
//! high-water marks, and the epoch time-series.

use std::collections::BTreeMap;
use std::fmt::Write;

use xg_harness::{run_stress_with, sweep, Instrumentation, StressOpts, SystemConfig};
use xg_sim::{Report, TimelineConfig};

use crate::table::{percent, Table};
use crate::Scale;

/// Runs the full 12-configuration stress matrix with kernel profiling
/// enabled and merges the shard reports. Dispatch counters and host-time
/// samples sum across shards; `.hwm` keys take the max (see
/// [`Report::merge`]), so the merged attribution covers every host
/// protocol and accelerator organization at once.
pub fn collect_profile_jobs(scale: Scale, jobs: usize) -> Report {
    let ops = scale.ops(400, 4_000);
    let shards: Vec<(SystemConfig, u64)> = SystemConfig::matrix(13)
        .into_iter()
        .map(|cfg| (cfg, 13))
        .collect();
    let reports = sweep(shards, jobs, |(cfg, _), _| {
        run_stress_with(
            &cfg,
            &StressOpts {
                ops,
                ..StressOpts::default()
            },
            &Instrumentation::profiled(),
        )
        .report
    });
    Report::merge_shards(&reports)
}

/// Captures one transaction timeline: a representative guarded stress run
/// with timeline recording on, returned as Chrome trace-event JSON
/// (loadable in Perfetto or `chrome://tracing`).
pub fn capture_timeline(scale: Scale, seed: u64) -> String {
    let cfg = SystemConfig {
        seed,
        ..SystemConfig::default()
    };
    let instr = Instrumentation {
        timeline: Some(TimelineConfig::default()),
        ..Instrumentation::off()
    };
    let out = run_stress_with(
        &cfg,
        &StressOpts {
            ops: scale.ops(400, 4_000),
            ..StressOpts::default()
        },
        &instr,
    );
    out.timeline.expect("timeline instrumentation was enabled")
}

/// Renders the hot-path attribution table of a profiled report: the top
/// `top` `component.class` event types by dispatch count, with their share
/// of all dispatches, estimated host time (sampled wall-clock, scaled by
/// the sampling interval), and mean host nanoseconds per event. Backs
/// `xg-report --profile`.
pub fn profile_table(report: &Report, top: usize) -> String {
    // Pair dispatch.<comp>.<class> with host_ns.<comp>.<class>.
    let mut rows: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (k, v) in report.profile_entries() {
        if let Some(rest) = k.strip_prefix("dispatch.") {
            rows.entry(rest.to_owned()).or_insert((0, 0)).0 += v;
        } else if let Some(rest) = k.strip_prefix("host_ns.") {
            rows.entry(rest.to_owned()).or_insert((0, 0)).1 += v;
        }
    }
    let total: u64 = rows.values().map(|&(count, _)| count).sum();
    let mut sorted: Vec<(String, (u64, u64))> = rows.into_iter().collect();
    // Hottest first; ties broken by name so the table is deterministic.
    sorted.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));

    let mut t = Table::new(
        "hot event types (by dispatch count)",
        &[
            "component.class",
            "dispatches",
            "share",
            "host us",
            "ns/event",
        ],
    );
    for (key, (count, ns)) in sorted.iter().take(top) {
        t.row(&[
            key.clone(),
            count.to_string(),
            percent(*count, total),
            (ns / 1_000).to_string(),
            (ns / count.max(&1)).to_string(),
        ]);
    }
    let mut out = t.render();
    let epochs = report
        .profile_entries()
        .filter(|(k, _)| k.starts_with("epoch.") && k.ends_with(".events"))
        .count();
    let _ = writeln!(
        out,
        "events dispatched: {} (showing {} of {} event types)",
        report.profile_get("events.total"),
        sorted.len().min(top),
        sorted.len(),
    );
    let _ = writeln!(
        out,
        "event-queue high-water mark: {}",
        report.profile_get("queue.hwm"),
    );
    let _ = writeln!(out, "epoch samples: {epochs}");
    out
}

/// Runs one representative guarded stress simulation on the *partitioned*
/// executor (`home_banks = banks`, `threads`) with kernel profiling on and
/// returns the profiled report — the input to [`shard_table`]. Backs
/// `xg-report --shards`.
pub fn collect_shard_profile(scale: Scale, banks: usize, threads: usize) -> Report {
    let cfg = SystemConfig {
        home_banks: banks.max(1),
        threads: threads.max(1),
        seed: 14,
        ..SystemConfig::default()
    };
    run_stress_with(
        &cfg,
        &StressOpts {
            ops: scale.ops(400, 4_000),
            ..StressOpts::default()
        },
        &Instrumentation::profiled(),
    )
    .report
}

/// Renders the shard-occupancy table of a partitioned profiled run: one
/// row per shard with its dispatched events, share of all work, and
/// cross-shard messages sent, followed by the window/barrier summary
/// (window count, conservative lookahead δ, total cross-shard traffic,
/// and wall-clock barrier stall). Backs `xg-report --shards`.
pub fn shard_table(report: &Report) -> String {
    let shards = report.profile_get("par.shards");
    if shards == 0 {
        return "no par.* counters in report — run with threads >= 1 and profiling on\n".to_owned();
    }
    let events: Vec<u64> = (0..shards)
        .map(|s| report.profile_get(&format!("par.shard{s}.events")))
        .collect();
    let total: u64 = events.iter().sum();
    let mut t = Table::new(
        "shard occupancy (partitioned executor)",
        &["shard", "events", "share", "xshard sent"],
    );
    for (s, ev) in events.iter().enumerate() {
        t.row(&[
            s.to_string(),
            ev.to_string(),
            percent(*ev, total),
            report
                .profile_get(&format!("par.shard{s}.xshard.sent"))
                .to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "windows: {} (lookahead delta = {} cycles)",
        report.profile_get("par.windows"),
        report.profile_get("par.delta"),
    );
    let _ = writeln!(
        out,
        "cross-shard messages: {}",
        report.profile_get("par.xshard.sent"),
    );
    let _ = writeln!(
        out,
        "barrier stall: {} us (host wall-clock, informational)",
        report.profile_get("par.barrier_wait_ns") / 1_000,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_table_ranks_by_dispatch_count() {
        let mut r = Report::default();
        r.profile_set("dispatch.guard.Hammer.GetM", 70);
        r.profile_set("host_ns.guard.Hammer.GetM", 7_000);
        r.profile_set("dispatch.home.Hammer.GetS", 30);
        r.profile_set("events.total", 100);
        r.profile_set("queue.hwm", 9);
        let table = profile_table(&r, 8);
        let getm = table.find("guard.Hammer.GetM").unwrap();
        let gets = table.find("home.Hammer.GetS").unwrap();
        assert!(getm < gets, "hotter event type must rank first:\n{table}");
        assert!(table.contains("events dispatched: 100"));
        assert!(table.contains("high-water mark: 9"));
        // 7000 ns over 70 dispatches = 100 ns/event.
        assert!(table.contains("100"), "{table}");
    }

    #[test]
    fn shard_table_shows_every_shard_and_the_window_summary() {
        let report = collect_shard_profile(Scale::Quick, 2, 2);
        // Default shape with 2 banks: 2 banks + 1 slot + 2 CPU pairs.
        assert_eq!(report.profile_get("par.shards"), 5);
        let table = shard_table(&report);
        for shard in 0..5 {
            assert!(table.contains(&format!("\n{shard} ")), "{table}");
        }
        assert!(table.contains("windows:"), "{table}");
        assert!(table.contains("cross-shard messages:"), "{table}");
    }

    #[test]
    fn shard_table_degrades_gracefully_without_par_counters() {
        let table = shard_table(&Report::default());
        assert!(table.contains("no par.* counters"), "{table}");
    }

    #[test]
    fn quick_profile_run_attributes_protocol_classes() {
        let report = collect_profile_jobs(Scale::Quick, xg_harness::resolve_jobs(None));
        assert!(report.profile_get("events.total") > 0);
        // Both host protocols ran, so both protocol families must appear.
        let has = |p: &str| report.profile_entries().any(|(k, _)| k.contains(p));
        assert!(has(".Hammer."), "no Hammer dispatch keys");
        assert!(has(".Mesi."), "no Mesi dispatch keys");
        assert!(has("Wake"), "no Wake dispatch keys");
    }
}

//! Regenerates every table and figure of the Crossing Guard evaluation.
//!
//! ```text
//! cargo run --release -p xg-bench --bin xg-report                      # full scale
//! cargo run --release -p xg-bench --bin xg-report -- quick             # CI scale
//! cargo run --release -p xg-bench --bin xg-report -- quick --json out.json
//! ```
//!
//! Output feeds `EXPERIMENTS.md`. With `--json <path>`, a machine-readable
//! run report (scalars, coverage, latency histograms) is also written.

use xg_bench::experiments::*;
use xg_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("--json requires a path argument");
                std::process::exit(2);
            })
            .clone()
    });
    println!("Crossing Guard evaluation report (scale: {scale:?})");
    println!("====================================================\n");

    let rows = e1_stress::run(scale, &[1, 2]);
    println!("{}", e1_stress::table(&rows));

    let rows = e2_fuzz::run(scale, 5);
    println!("{}", e2_fuzz::table(&rows));

    let series = e3_performance::run(scale, 9);
    println!("{}", e3_performance::table(&series));

    let rows = e4_storage::run(scale, 3);
    println!("{}", e4_storage::table(&rows));

    let rows = e5_puts::run(scale, 4);
    println!("{}", e5_puts::table(&rows));

    let rows = e6_rate_limit::run(scale, 6);
    println!("{}", e6_rate_limit::table(&rows));

    let rows = e8_timeout::run(scale, 7);
    println!("{}", e8_timeout::table(&rows));

    let rows = e9_blocksize::run(scale, 8);
    println!("{}", e9_blocksize::table(&rows));

    let rows = e11_prefetch::run(scale, 5);
    println!("{}", e11_prefetch::table(&rows));

    if let Some(path) = json_path {
        let report = xg_bench::collect_report(scale);
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("machine-readable report written to {path}");
    }
}

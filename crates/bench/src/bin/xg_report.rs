//! Regenerates every table and figure of the Crossing Guard evaluation.
//!
//! ```text
//! cargo run --release -p xg-bench --bin xg-report                      # full scale
//! cargo run --release -p xg-bench --bin xg-report -- quick             # CI scale
//! cargo run --release -p xg-bench --bin xg-report -- quick --json out.json
//! cargo run --release -p xg-bench --bin xg-report -- quick --jobs 4
//! cargo run --release -p xg-bench --bin xg-report -- quick --coverage
//! cargo run --release -p xg-bench --bin xg-report -- quick --profile
//! cargo run --release -p xg-bench --bin xg-report -- quick --shards --banks 2 --threads 4
//! cargo run --release -p xg-bench --bin xg-report -- quick --timeline trace.json
//! ```
//!
//! Output feeds `EXPERIMENTS.md`. With `--json <path>`, a machine-readable
//! run report (scalars, coverage, latency histograms) is also written.
//!
//! `--coverage` skips the experiment suite and instead prints the
//! per-machine transition-coverage tables of the merged stress report: how
//! many declared `(state, event)` rows of each table-driven controller
//! fired, and which never did. Combine with `--json` to also write the
//! machine-readable report (the same data under its `fsm` key).
//!
//! `--profile` runs the 12-configuration stress matrix with kernel
//! profiling enabled and prints the hot-path attribution table: the top
//! event types by dispatch count, with sampled host-time attribution.
//! Combine with `--json` to write the full profiled report.
//!
//! `--shards` runs one representative stress simulation on the
//! *partitioned* executor (`--banks M` home banks, `--threads W` workers;
//! defaults 2 and 4) with profiling on and prints the shard-occupancy
//! table: per-shard dispatched events and cross-shard traffic, plus the
//! window/barrier summary.
//!
//! `--timeline PATH` records one representative guarded stress run with
//! per-address transaction timelines on and writes Chrome trace-event
//! JSON to PATH — load it in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! `--jobs N` (or `XG_JOBS=N`) fans the independent simulations of each
//! experiment across N worker threads; `0` or omitted means all available
//! cores, `1` is the exact legacy serial path. Output is byte-identical at
//! any worker count.
//!
//! Exit status: `0` only if every regression gate passes. Deadlocked
//! stress cells, protected-configuration fuzz violations, incomplete
//! timeout recoveries, or nonzero error counters exit `1` so CI fails.

use xg_bench::experiments::*;
use xg_bench::Scale;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a value argument");
                std::process::exit(2);
            })
            .clone()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let json_path = arg_value(&args, "--json");
    let jobs = match arg_value(&args, "--jobs") {
        Some(raw) => xg_harness::resolve_jobs(Some(xg_harness::sweep::parse_jobs(&raw))),
        None => xg_harness::resolve_jobs(None),
    };
    if args.iter().any(|a| a == "--profile") {
        let report = xg_bench::profile::collect_profile_jobs(scale, jobs);
        print!("{}", xg_bench::profile::profile_table(&report, 12));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("machine-readable report written to {path}");
        }
        return;
    }
    if args.iter().any(|a| a == "--shards") {
        let parse = |flag: &str, default: usize| {
            arg_value(&args, flag)
                .map(|raw| {
                    raw.trim().parse::<usize>().unwrap_or_else(|_| {
                        eprintln!("{flag} requires a positive integer, got {raw:?}");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(default)
        };
        let banks = parse("--banks", 2);
        let threads = parse("--threads", 4);
        let report = xg_bench::profile::collect_shard_profile(scale, banks, threads);
        print!("{}", xg_bench::profile::shard_table(&report));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("machine-readable report written to {path}");
        }
        return;
    }
    if let Some(path) = arg_value(&args, "--timeline") {
        let trace = xg_bench::profile::capture_timeline(scale, 11);
        if let Err(e) = std::fs::write(&path, &trace) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("timeline written to {path} — open it in Perfetto (ui.perfetto.dev) or chrome://tracing");
        return;
    }
    if args.iter().any(|a| a == "--coverage") {
        let report = xg_bench::collect_report_jobs(scale, jobs);
        print!("{}", xg_bench::coverage_tables(&report));
        if let Some(path) = json_path {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("machine-readable report written to {path}");
        }
        return;
    }
    println!("Crossing Guard evaluation report (scale: {scale:?}, jobs: {jobs})");
    println!("====================================================\n");

    let mut gate_failures: Vec<String> = Vec::new();

    let rows = e1_stress::run_jobs(scale, &[1, 2], jobs);
    println!("{}", e1_stress::table(&rows));
    gate_failures.extend(e1_stress::failures(&rows));

    let rows = e2_fuzz::run_jobs(scale, 5, jobs);
    println!("{}", e2_fuzz::table(&rows));
    gate_failures.extend(e2_fuzz::failures(&rows));

    let (rows, campaign_summary) = e2_campaign::run_jobs(scale, 0xC4A55, jobs);
    println!("{}", e2_campaign::table(&rows));
    gate_failures.extend(e2_campaign::failures(&rows));

    let series = e3_performance::run_jobs(scale, 9, jobs);
    println!("{}", e3_performance::table(&series));

    let rows = e4_storage::run_jobs(scale, 3, jobs);
    println!("{}", e4_storage::table(&rows));

    let rows = e5_puts::run_jobs(scale, 4, jobs);
    println!("{}", e5_puts::table(&rows));

    let rows = e6_rate_limit::run_jobs(scale, 6, jobs);
    println!("{}", e6_rate_limit::table(&rows));

    let rows = e8_timeout::run_jobs(scale, 7, jobs);
    println!("{}", e8_timeout::table(&rows));
    gate_failures.extend(e8_timeout::failures(&rows));

    let rows = e9_blocksize::run_jobs(scale, 8, jobs);
    println!("{}", e9_blocksize::table(&rows));
    gate_failures.extend(e9_blocksize::failures(&rows));

    let rows = e11_prefetch::run_jobs(scale, 5, jobs);
    println!("{}", e11_prefetch::table(&rows));
    gate_failures.extend(e11_prefetch::failures(&rows));

    let (rows, blast_summary) = e12_blast_radius::run_jobs(scale, 12, jobs);
    println!("{}", e12_blast_radius::table(&rows));
    gate_failures.extend(e12_blast_radius::failures(&rows));

    let (rows, scaling_summary) = e13_scaling::run_jobs(scale, 13, jobs);
    println!("{}", e13_scaling::table(&rows));
    gate_failures.extend(e13_scaling::failures(&rows));

    if let Some(path) = json_path {
        let mut report = xg_bench::collect_report_jobs(scale, jobs);
        report.merge(&campaign_summary);
        report.merge(&blast_summary);
        report.merge(&scaling_summary);
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("machine-readable report written to {path}");
    }

    if !gate_failures.is_empty() {
        eprintln!("\nREGRESSION GATES FAILED ({}):", gate_failures.len());
        for f in &gate_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

//! Coverage-guided fuzz campaign driver for the Crossing Guard simulator.
//!
//! ```text
//! cargo run --release -p xg-bench --bin xg-fuzz -- --campaign quick
//! cargo run --release -p xg-bench --bin xg-fuzz -- --campaign --host mesi --variant tx
//! cargo run --release -p xg-bench --bin xg-fuzz -- --campaign --corpus out/corpus
//! cargo run --release -p xg-bench --bin xg-fuzz -- --minimize failing.xgsched --seed 0x51ab
//! ```
//!
//! `--campaign` runs the AFL-style campaign of [`xg_harness::campaign`]
//! (transition-coverage feedback, structural schedule mutation, link fault
//! injection) on the guarded configurations — all four by default, or one
//! selected with `--host hammer|mesi` and `--variant full|tx`. With
//! `--accels N` (N ≥ 2) every run adds N−1 *correct* guarded sibling
//! hierarchies sharing the host, so the campaign simultaneously checks
//! blast-radius containment: sibling corruption or starvation fails a run
//! exactly like host corruption does. Every
//! failure is automatically ddmin-minimized and emitted as a
//! self-contained `#[test]` plus a JSON artifact; with `--corpus DIR` the
//! interesting schedules, coverage summary, and repro artifacts are
//! written there (one subdirectory per configuration). Exit status is `0`
//! only if every configuration finishes with zero violations, zero data
//! corruption, and zero deadlocks.
//!
//! `--minimize PATH` reads an `xg-schedule v1` text file (e.g. a corpus
//! entry or a failure dumped by `--campaign`), replays it under `--seed`,
//! shrinks it to a minimal failing reproducer, and prints the regression
//! test; `--out DIR` also writes the `.rs`/`.json` artifacts, and
//! `--timeline PATH` writes the failure replay's transaction timeline as
//! Perfetto-loadable Chrome trace-event JSON. Exits `2` if the schedule
//! does not fail in the first place. (Campaign repros written to a
//! `--corpus` directory get a `.trace.json` timeline automatically.)

use std::path::{Path, PathBuf};

use xg_bench::experiments::e2_campaign;
use xg_bench::Scale;
use xg_core::XgVariant;
use xg_harness::campaign::{
    minimize, repro_json, repro_test_source, run_schedule, CampaignFailure, CampaignOpts,
    CampaignOutcome, FailureKind,
};
use xg_harness::{run_campaign, AccelOrg, HostProtocol, Schedule, SystemConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a value argument");
                std::process::exit(2);
            })
            .clone()
    })
}

fn parse_seed(raw: &str) -> u64 {
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("unparseable seed: {raw}");
        std::process::exit(2);
    })
}

/// Filters the four guarded configurations down to the requested subset.
fn selected_configs(host: Option<&str>, variant: Option<&str>) -> Vec<SystemConfig> {
    let want_host = host.map(|h| match h {
        "hammer" => HostProtocol::Hammer,
        "mesi" => HostProtocol::Mesi,
        other => {
            eprintln!("unknown --host {other} (want hammer|mesi)");
            std::process::exit(2);
        }
    });
    let want_variant = variant.map(|v| match v {
        "full" | "full_state" => XgVariant::FullState,
        "tx" | "transactional" => XgVariant::Transactional,
        other => {
            eprintln!("unknown --variant {other} (want full|tx)");
            std::process::exit(2);
        }
    });
    e2_campaign::configs()
        .into_iter()
        .filter(|c| want_host.is_none_or(|h| c.host == h))
        .filter(|c| match (&c.accel, want_variant) {
            (_, None) => true,
            (AccelOrg::FuzzXg { variant }, Some(v)) => *variant == v,
            _ => false,
        })
        .collect()
}

fn write_or_die(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// Minimizes one campaign failure and renders/writes its repro artifacts.
/// With `timeline_path` set (or an `--corpus`/`--out` directory), the
/// minimized schedule is replayed once more and the failure replay's
/// transaction timeline (Chrome trace-event JSON, Perfetto-loadable) is
/// written alongside the repro.
fn emit_repro(
    base: &SystemConfig,
    opts: &CampaignOpts,
    failure: &CampaignFailure,
    index: usize,
    out_dir: Option<&Path>,
    timeline_path: Option<&Path>,
) {
    let shrunk = minimize(&failure.schedule, |s| {
        let out = run_schedule(base, opts, s, failure.seed);
        match failure.kind {
            FailureKind::HostViolation => out.host_violations > 0,
            FailureKind::DataError => out.cpu_data_errors > 0,
            FailureKind::Deadlock => out.deadlocked,
        }
    });
    let minimized = CampaignFailure {
        schedule: shrunk,
        ..failure.clone()
    };
    let name = format!("repro_{}_{index}", failure.kind.tag().replace('-', "_"));
    let test_src = repro_test_source(&name, base, opts, &minimized);
    let json = repro_json(base, opts, &minimized);
    println!(
        "  {}: minimized {} -> {} step(s), seed {:#x}",
        failure.kind.tag(),
        failure.schedule.steps.len(),
        minimized.schedule.steps.len(),
        failure.seed
    );
    match out_dir {
        Some(dir) => {
            write_or_die(&dir.join(format!("{name}.rs")), &test_src);
            write_or_die(&dir.join(format!("{name}.json")), &json);
            println!("  repro artifacts written to {}", dir.display());
        }
        None => print!("{test_src}"),
    }
    let trace_dest = timeline_path
        .map(Path::to_path_buf)
        .or_else(|| out_dir.map(|d| d.join(format!("{name}.trace.json"))));
    if let Some(dest) = trace_dest {
        // The failure replay inside run_schedule re-runs the failing seed
        // with ring tracing and timelines on; its trace is the artifact.
        let replay = run_schedule(base, opts, &minimized.schedule, failure.seed);
        match replay.timeline {
            Some(trace) => {
                write_or_die(&dest, &trace);
                println!("  failure timeline written to {}", dest.display());
            }
            None => eprintln!("  minimized schedule no longer fails; no timeline recorded"),
        }
    }
}

/// Writes the interesting corpus plus a coverage summary for one config.
fn dump_corpus(dir: &Path, out: &CampaignOutcome) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("failed to create {}: {e}", dir.display());
        std::process::exit(1);
    }
    for (i, entry) in out.corpus.iter().enumerate() {
        let path = dir.join(format!("{i:03}_seed{:x}.xgsched", entry.seed));
        write_or_die(&path, &entry.schedule.to_text());
    }
    let mut cov = String::new();
    cov.push_str(&format!("distinct pairs: {}\n", out.distinct_pairs()));
    for (machine, c) in &out.coverage {
        cov.push_str(&format!(
            "{machine}: {}/{} rows fired\n",
            c.fired_rows(),
            c.total_rows()
        ));
    }
    write_or_die(&dir.join("coverage.txt"), &cov);
}

fn campaign_mode(args: &[String]) -> i32 {
    let scale = if args.iter().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let seed = arg_value(args, "--seed").map_or(0xC4A55, |s| parse_seed(&s));
    let jobs = match arg_value(args, "--jobs") {
        Some(raw) => xg_harness::resolve_jobs(Some(xg_harness::sweep::parse_jobs(&raw))),
        None => xg_harness::resolve_jobs(None),
    };
    let corpus_dir = arg_value(args, "--corpus").map(PathBuf::from);
    let num_accels = arg_value(args, "--accels").map_or(1, |raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("unparseable --accels {raw} (want a count >= 1)");
            std::process::exit(2);
        })
    });
    if num_accels == 0 {
        eprintln!("--accels must be >= 1");
        return 2;
    }
    let configs = selected_configs(
        arg_value(args, "--host").as_deref(),
        arg_value(args, "--variant").as_deref(),
    );
    if configs.is_empty() {
        eprintln!("no configuration matches the --host/--variant filter");
        return 2;
    }

    println!(
        "xg-fuzz campaign (scale: {scale:?}, seed: {seed:#x}, jobs: {jobs}, accels: {num_accels})"
    );
    let mut total_failures = 0usize;
    for base in configs {
        let mut opts = e2_campaign::opts(scale, seed);
        opts.jobs = Some(jobs);
        opts.num_accels = num_accels;
        let label = if num_accels > 1 {
            format!("{}+{}sib", base.name(), num_accels - 1)
        } else {
            base.name()
        };
        let out = run_campaign(&base, &opts);
        println!(
            "{label}: {} runs, {} messages injected, {} distinct (state, event) pairs, \
             corpus {}, failures {}",
            out.runs,
            out.injected,
            out.distinct_pairs(),
            out.corpus.len(),
            out.failures.len()
        );
        let config_dir = corpus_dir.as_ref().map(|d| d.join(label.replace('/', "_")));
        if let Some(dir) = &config_dir {
            dump_corpus(dir, &out);
        }
        for (i, failure) in out.failures.iter().enumerate() {
            emit_repro(&base, &opts, failure, i, config_dir.as_deref(), None);
        }
        total_failures += out.failures.len();
    }
    if total_failures > 0 {
        eprintln!("\ncampaign found {total_failures} failure(s)");
        1
    } else {
        0
    }
}

fn minimize_mode(args: &[String], path: &str) -> i32 {
    let seed = arg_value(args, "--seed").map_or(0xC4A55, |s| parse_seed(&s));
    let out_dir = arg_value(args, "--out").map(PathBuf::from);
    let timeline = arg_value(args, "--timeline").map(PathBuf::from);
    let configs = selected_configs(
        arg_value(args, "--host").as_deref(),
        arg_value(args, "--variant").as_deref(),
    );
    let base = configs.into_iter().next().unwrap_or_else(|| {
        eprintln!("no configuration matches the --host/--variant filter");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("failed to read {path}: {e}");
        std::process::exit(2);
    });
    let schedule = Schedule::from_text(&text).unwrap_or_else(|e| {
        eprintln!("failed to parse {path}: {e}");
        std::process::exit(2);
    });
    let opts = e2_campaign::opts(Scale::Quick, seed);

    let replay = run_schedule(&base, &opts, &schedule, seed);
    let kind = if replay.deadlocked {
        FailureKind::Deadlock
    } else if replay.cpu_data_errors > 0 {
        FailureKind::DataError
    } else if replay.host_violations > 0 {
        FailureKind::HostViolation
    } else {
        eprintln!(
            "{path} does not fail on {} under seed {seed:#x} — nothing to minimize",
            base.name()
        );
        return 2;
    };
    let failure = CampaignFailure {
        kind,
        seed,
        schedule,
        summary: format!("replayed from {path}"),
    };
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            return 1;
        }
    }
    println!("xg-fuzz minimize ({}, seed {seed:#x})", base.name());
    emit_repro(
        &base,
        &opts,
        &failure,
        0,
        out_dir.as_deref(),
        timeline.as_deref(),
    );
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = if let Some(path) = arg_value(&args, "--minimize") {
        minimize_mode(&args, &path)
    } else if args.iter().any(|a| a == "--campaign") {
        campaign_mode(&args)
    } else {
        eprintln!("usage: xg-fuzz --campaign [quick] [--host H] [--variant V] [--seed N] [--jobs N] [--accels N] [--corpus DIR]");
        eprintln!("       xg-fuzz --minimize PATH [--host H] [--variant V] [--seed N] [--out DIR] [--timeline PATH]");
        2
    };
    std::process::exit(code);
}

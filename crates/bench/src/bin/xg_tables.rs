//! Dumps the validated transition tables of every table-driven coherence
//! machine (guard personas + modified host controllers) as markdown and
//! Graphviz DOT.
//!
//! ```text
//! cargo run -p xg-bench --bin xg-tables -- --out docs/tables    # regenerate goldens
//! cargo run -p xg-bench --bin xg-tables -- --check docs/tables  # CI drift gate
//! cargo run -p xg-bench --bin xg-tables                         # markdown to stdout
//! ```
//!
//! The dumps are deterministic, so the written files double as golden
//! files: `--check` exits `1` if any committed table differs from what the
//! code builds, forcing table drift through review instead of letting it
//! slip in silently.

use std::path::Path;

/// `(file stem, markdown, dot)` for every table-driven machine.
fn dumps() -> Vec<(&'static str, String, String)> {
    let hammer_persona = xg_core::tables::hammer_persona();
    let mesi_persona = xg_core::tables::mesi_persona();
    let hammer_dir = xg_host_hammer::directory::table();
    let mesi_l2 = xg_host_mesi::l2::table();
    vec![
        (
            "hammer_persona",
            hammer_persona.to_markdown(),
            hammer_persona.to_dot(),
        ),
        (
            "mesi_persona",
            mesi_persona.to_markdown(),
            mesi_persona.to_dot(),
        ),
        ("hammer_dir", hammer_dir.to_markdown(), hammer_dir.to_dot()),
        ("mesi_l2", mesi_l2.to_markdown(), mesi_l2.to_dot()),
    ]
}

fn write_all(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (stem, md, dot) in dumps() {
        std::fs::write(dir.join(format!("{stem}.md")), md)?;
        std::fs::write(dir.join(format!("{stem}.dot")), dot)?;
    }
    Ok(())
}

fn check_all(dir: &Path) -> Vec<String> {
    let mut drifted = Vec::new();
    for (stem, md, dot) in dumps() {
        for (ext, expected) in [("md", md), ("dot", dot)] {
            let path = dir.join(format!("{stem}.{ext}"));
            match std::fs::read_to_string(&path) {
                Ok(on_disk) if on_disk == expected => {}
                Ok(_) => drifted.push(format!("{} differs from the code", path.display())),
                Err(e) => drifted.push(format!("{}: {e}", path.display())),
            }
        }
    }
    drifted
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a directory argument");
                std::process::exit(2);
            })
        })
    };
    if let Some(dir) = value_of("--check") {
        let drifted = check_all(Path::new(&dir));
        if drifted.is_empty() {
            println!("golden tables up to date in {dir}");
            return;
        }
        eprintln!("GOLDEN TABLE DRIFT ({}):", drifted.len());
        for d in &drifted {
            eprintln!("  {d}");
        }
        eprintln!("regenerate with: cargo run -p xg-bench --bin xg-tables -- --out {dir}");
        std::process::exit(1);
    }
    if let Some(dir) = value_of("--out") {
        if let Err(e) = write_all(Path::new(&dir)) {
            eprintln!("failed to write tables to {dir}: {e}");
            std::process::exit(1);
        }
        println!("tables written to {dir}");
        return;
    }
    for (_, md, _) in dumps() {
        println!("{md}");
    }
}

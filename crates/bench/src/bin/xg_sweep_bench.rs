//! Self-measuring speedup benchmark for the parallel sweep executor, and
//! the keeper of the in-tree perf trajectory (`BENCH_sweep.json`).
//!
//! Runs the *same* profiled stress sweep (the full 12-configuration
//! [`SystemConfig::matrix`] crossed with several seeds) twice — once at
//! `jobs=1` (the exact legacy serial path) and once at `jobs=N` — then:
//!
//! * asserts the merged machine-readable reports are **byte-identical**
//!   once the wall-clock-derived `host_ns.*` profile keys are set aside
//!   (every other profile counter — dispatch counts, queue high-water
//!   marks, epoch series — must match exactly too: the determinism
//!   guarantee the sweep executor makes);
//! * writes `BENCH_sweep.json` with wall-clock times, aggregate
//!   simulated-op and dispatched-event throughput, the parallel speedup,
//!   and a `profile` section (total dispatches, queue high-water mark,
//!   scheduler operation counters, top event types) so the repo carries a
//!   reviewable perf trajectory.
//!
//! It then measures *intra-run* parallelism — ONE simulation partitioned
//! across home-bank/hierarchy/CPU shards on the time-window executor —
//! at `threads=1` vs `threads=W`, asserts the two runs are byte-identical
//! (report and deterministic `par.*` counters), and records the result in
//! an `intra_run` section: partition shape, window/cross-shard counters
//! (drift-gated), and wall-clock speedup (informational).
//!
//! ```text
//! cargo run --release -p xg-bench --bin xg-sweep-bench -- --out BENCH_sweep.json
//! cargo run --release -p xg-bench --bin xg-sweep-bench -- --jobs 8
//! cargo run --release -p xg-bench --bin xg-sweep-bench -- --check
//! ```
//!
//! `--check` regenerates the numbers and compares the *machine-independent*
//! fields (`shards`, `ops_per_shard`, everything under `profile` and
//! `intra_run`) against the committed file instead of overwriting it.
//! Drift beyond 20% on any field fails with a per-key diff and a
//! regeneration hint, so CI catches when a code change silently changes
//! how much work the sweep does. Wall-clock fields — every `*_ns`/`*_ms`
//! key plus the derived speedups and throughputs — are informational and
//! never gated; they differ per runner by design.

use std::collections::BTreeMap;
use std::time::Instant;

use xg_harness::{run_stress_with, sweep, Instrumentation, StressOpts, SystemConfig};
use xg_sim::{JsonValue, Report};

/// Ops per shard. Sized so the serial pass takes seconds, long enough to
/// amortize thread startup yet quick enough for a per-commit CI job.
const OPS: u64 = 800;
/// Seeds crossed with the 12-configuration matrix: 48 shards total.
const SEEDS: [u64; 4] = [1, 2, 3, 4];
/// Hot event types kept in the committed profile section.
const TOP_EVENTS: usize = 8;
/// Relative drift tolerance of `--check`, in percent.
const DRIFT_PCT: u64 = 20;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a value argument");
                std::process::exit(2);
            })
            .clone()
    })
}

/// Runs the whole sweep at one worker count with kernel profiling on,
/// returning the merged report and the wall-clock milliseconds it took.
fn run_once(shards: &[(SystemConfig, u64)], jobs: usize) -> (Report, f64) {
    let t0 = Instant::now();
    let reports = sweep(shards.to_vec(), jobs, |(cfg, _), _| {
        run_stress_with(
            &cfg,
            &StressOpts {
                ops: OPS,
                ..StressOpts::default()
            },
            &Instrumentation::profiled(),
        )
        .report
    });
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    (Report::merge_shards(&reports), wall)
}

/// The deterministic profile subset: everything except sampled wall clock
/// — `host_ns.*` attribution and any other `*_ns` counter (e.g. the
/// partitioned executor's `par.barrier_wait_ns`) — which legitimately
/// varies run to run and machine to machine.
fn deterministic_profile(report: &Report) -> Vec<(String, u64)> {
    report
        .profile_entries()
        .filter(|(k, _)| !k.starts_with("host_ns.") && !k.ends_with("_ns"))
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
}

/// Ops for the intra-run measurement: one simulation, so it needs to be
/// long enough that per-window barrier costs amortize.
const INTRA_OPS: u64 = 6_000;
/// Home banks for the intra-run partition (banks + hierarchies + CPU
/// pairs = the shard count the executor can spread across workers).
const INTRA_BANKS: usize = 4;

/// Runs the representative guarded config ONCE on the partitioned
/// executor with `threads` workers, returning the profiled report and
/// wall-clock milliseconds.
fn run_intra(threads: usize) -> (Report, f64) {
    let cfg = SystemConfig {
        home_banks: INTRA_BANKS,
        threads,
        seed: 21,
        ..SystemConfig::default()
    };
    let t0 = Instant::now();
    let out = run_stress_with(
        &cfg,
        &StressOpts {
            ops: INTRA_OPS,
            ..StressOpts::default()
        },
        &Instrumentation::profiled(),
    );
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        !out.deadlocked && out.data_errors == 0,
        "intra-run bench config must run clean (threads={threads})"
    );
    (out.report, wall)
}

/// Measures intra-run scaling at `threads=1` vs `threads=workers`, gates
/// byte-identity, and renders the `intra_run` section. Deterministic
/// partition counters (shards, windows, delta, cross-shard messages) are
/// drift-gated; `*_ms` wall clock and the derived speedup are not.
fn intra_run_section(workers: usize) -> JsonValue {
    let (oracle, serial_ms) = run_intra(1);
    let (parallel, parallel_ms) = run_intra(workers);
    assert_eq!(
        oracle.without_profile().to_json(),
        parallel.without_profile().to_json(),
        "determinism violated: threads=1 and threads={workers} reports differ"
    );
    assert_eq!(
        deterministic_profile(&oracle),
        deterministic_profile(&parallel),
        "determinism violated: threads=1 and threads={workers} par counters differ"
    );
    let speedup_milli = (serial_ms / parallel_ms.max(1e-9) * 1e3) as u64;
    let mut section = BTreeMap::new();
    section.insert("banks".to_owned(), JsonValue::Num(INTRA_BANKS as u64));
    section.insert("threads".to_owned(), JsonValue::Num(workers as u64));
    section.insert("ops".to_owned(), JsonValue::Num(INTRA_OPS));
    section.insert(
        "shards".to_owned(),
        JsonValue::Num(oracle.profile_get("par.shards")),
    );
    section.insert(
        "windows".to_owned(),
        JsonValue::Num(oracle.profile_get("par.windows")),
    );
    section.insert(
        "delta".to_owned(),
        JsonValue::Num(oracle.profile_get("par.delta")),
    );
    section.insert(
        "xshard_sent".to_owned(),
        JsonValue::Num(oracle.profile_get("par.xshard.sent")),
    );
    section.insert(
        "serial_wall_ms".to_owned(),
        JsonValue::Num(serial_ms as u64),
    );
    section.insert(
        "parallel_wall_ms".to_owned(),
        JsonValue::Num(parallel_ms as u64),
    );
    section.insert("speedup_milli".to_owned(), JsonValue::Num(speedup_milli));
    JsonValue::Obj(section)
}

/// Builds the committed `profile` section: total dispatches, the
/// event-queue high-water mark, and the top event types by dispatch count
/// aggregated by protocol-qualified class (summed across components).
fn profile_section(report: &Report) -> JsonValue {
    let mut by_class: BTreeMap<String, u64> = BTreeMap::new();
    for (k, v) in report.profile_entries() {
        if let Some(rest) = k.strip_prefix("dispatch.") {
            // dispatch.<component>.<class>: the class starts after the
            // component segment.
            let class = rest.split_once('.').map_or(rest, |(_, c)| c);
            *by_class.entry(class.to_owned()).or_insert(0) += v;
        }
    }
    let mut ranked: Vec<(String, u64)> = by_class.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(TOP_EVENTS);
    let mut top = BTreeMap::new();
    for (class, count) in ranked {
        top.insert(class, JsonValue::Num(count));
    }
    let mut sched = BTreeMap::new();
    for key in ["pushes", "pops", "overflow", "migrated", "rebases"] {
        sched.insert(
            key.to_owned(),
            JsonValue::Num(report.profile_get(&format!("sched.{key}"))),
        );
    }
    let mut section = BTreeMap::new();
    section.insert(
        "events_total".to_owned(),
        JsonValue::Num(report.profile_get("events.total")),
    );
    section.insert(
        "queue_hwm".to_owned(),
        JsonValue::Num(report.profile_get("queue.hwm")),
    );
    section.insert("sched".to_owned(), JsonValue::Obj(sched));
    section.insert("top_events".to_owned(), JsonValue::Obj(top));
    JsonValue::Obj(section)
}

/// Renders the whole benchmark result as a (integer-only, deterministic
/// key order) JSON document.
#[allow(clippy::too_many_arguments)]
fn bench_json(
    shards: usize,
    jobs: usize,
    serial_ms: f64,
    parallel_ms: f64,
    total_ops: u64,
    total_events: u64,
    profile: JsonValue,
    intra_run: JsonValue,
) -> JsonValue {
    let ops_per_sec = |ms: f64| (total_ops as f64 / (ms / 1e3).max(1e-9)) as u64;
    let events_per_sec = |ms: f64| (total_events as f64 / (ms / 1e3).max(1e-9)) as u64;
    let speedup_milli = (serial_ms / parallel_ms.max(1e-9) * 1e3) as u64;
    let mut doc = BTreeMap::new();
    doc.insert(
        "bench".to_owned(),
        JsonValue::Str("sweep_speedup".to_owned()),
    );
    doc.insert("deterministic".to_owned(), JsonValue::Num(1));
    doc.insert("shards".to_owned(), JsonValue::Num(shards as u64));
    doc.insert("ops_per_shard".to_owned(), JsonValue::Num(OPS));
    doc.insert("jobs".to_owned(), JsonValue::Num(jobs as u64));
    doc.insert(
        "serial_wall_ms".to_owned(),
        JsonValue::Num(serial_ms as u64),
    );
    doc.insert(
        "parallel_wall_ms".to_owned(),
        JsonValue::Num(parallel_ms as u64),
    );
    doc.insert(
        "serial_ops_per_sec".to_owned(),
        JsonValue::Num(ops_per_sec(serial_ms)),
    );
    doc.insert(
        "parallel_ops_per_sec".to_owned(),
        JsonValue::Num(ops_per_sec(parallel_ms)),
    );
    // Kernel throughput in dispatched events (the figure the hot-path
    // work moves): machine-dependent, informational, never gated.
    doc.insert(
        "serial_events_per_sec".to_owned(),
        JsonValue::Num(events_per_sec(serial_ms)),
    );
    doc.insert(
        "parallel_events_per_sec".to_owned(),
        JsonValue::Num(events_per_sec(parallel_ms)),
    );
    doc.insert("speedup_milli".to_owned(), JsonValue::Num(speedup_milli));
    doc.insert(
        "profile".to_owned(),
        JsonValue::Obj(profile.as_obj().cloned().unwrap_or_default()),
    );
    doc.insert(
        "intra_run".to_owned(),
        JsonValue::Obj(intra_run.as_obj().cloned().unwrap_or_default()),
    );
    JsonValue::Obj(doc)
}

/// Flattens the gated (machine-independent) numeric fields of a benchmark
/// document to dotted keys.
fn gated_fields(doc: &JsonValue) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(obj) = doc.as_obj() else { return out };
    for key in ["shards", "ops_per_shard"] {
        if let Some(n) = obj.get(key).and_then(JsonValue::as_num) {
            out.insert(key.to_owned(), n);
        }
    }
    fn flatten(prefix: &str, v: &JsonValue, out: &mut BTreeMap<String, u64>) {
        // Wall clock and anything derived from it (speedups, throughput
        // rates) differ per runner by design — never gate them.
        if prefix.ends_with("_ns")
            || prefix.ends_with("_ms")
            || prefix.contains("speedup")
            || prefix.contains("per_sec")
        {
            return;
        }
        match v {
            JsonValue::Num(n) => {
                out.insert(prefix.to_owned(), *n);
            }
            JsonValue::Obj(m) => {
                for (k, v) in m {
                    flatten(&format!("{prefix}.{k}"), v, out);
                }
            }
            _ => {}
        }
    }
    if let Some(profile) = obj.get("profile") {
        flatten("profile", profile, &mut out);
    }
    if let Some(intra) = obj.get("intra_run") {
        flatten("intra_run", intra, &mut out);
    }
    out
}

/// Compares fresh numbers against the committed file: every gated field
/// must exist on both sides and agree within [`DRIFT_PCT`] percent.
fn check_drift(committed: &JsonValue, fresh: &JsonValue) -> Vec<String> {
    let old = gated_fields(committed);
    let new = gated_fields(fresh);
    let keys: std::collections::BTreeSet<&String> = old.keys().chain(new.keys()).collect();
    let mut drifts = Vec::new();
    for key in keys {
        match (old.get(key), new.get(key)) {
            (Some(&o), Some(&n)) => {
                if o.abs_diff(n) * 100 > o.max(1) * DRIFT_PCT {
                    drifts.push(format!("{key}: committed {o}, measured {n}"));
                }
            }
            (Some(&o), None) => drifts.push(format!("{key}: committed {o}, now missing")),
            (None, Some(&n)) => drifts.push(format!("{key}: not committed, now {n}")),
            (None, None) => unreachable!("key came from one of the maps"),
        }
    }
    drifts
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let check = args.iter().any(|a| a == "--check");
    let jobs = match arg_value(&args, "--jobs") {
        Some(raw) => xg_harness::resolve_jobs(Some(xg_harness::sweep::parse_jobs(&raw))),
        None => xg_harness::resolve_jobs(None),
    };

    let mut shards: Vec<(SystemConfig, u64)> = Vec::new();
    for seed in SEEDS {
        for cfg in SystemConfig::matrix(seed) {
            shards.push((cfg, seed));
        }
    }
    let total_ops = OPS * shards.len() as u64;
    eprintln!(
        "sweep bench: {} shards x {} ops, serial then jobs={jobs}",
        shards.len(),
        OPS
    );

    let (serial_report, serial_ms) = run_once(&shards, 1);
    let (parallel_report, parallel_ms) = run_once(&shards, jobs);

    // Determinism gate. The profile's host-time attribution is sampled
    // wall clock — the one legitimately nondeterministic thing a profiled
    // run records — so it is set aside; everything else must be
    // byte-identical, including the deterministic profile counters.
    let serial_json = serial_report.without_profile().to_json();
    let parallel_json = parallel_report.without_profile().to_json();
    assert_eq!(
        serial_json, parallel_json,
        "determinism violated: jobs=1 and jobs={jobs} merged reports differ"
    );
    assert_eq!(
        deterministic_profile(&serial_report),
        deterministic_profile(&parallel_report),
        "determinism violated: jobs=1 and jobs={jobs} profile counters differ"
    );

    // Intra-run scaling: ONE simulation spread across its shard partition.
    let intra_workers = jobs.clamp(2, 8);
    eprintln!(
        "intra-run bench: 1 sim x {INTRA_OPS} ops, {INTRA_BANKS} banks, \
         threads=1 then threads={intra_workers}"
    );
    let intra = intra_run_section(intra_workers);
    let intra_speedup = intra
        .as_obj()
        .and_then(|m| m.get("speedup_milli"))
        .and_then(JsonValue::as_num)
        .unwrap_or(0) as f64
        / 1e3;

    let speedup = serial_ms / parallel_ms.max(1e-9);
    let doc = bench_json(
        shards.len(),
        jobs,
        serial_ms,
        parallel_ms,
        total_ops,
        serial_report.profile_get("events.total"),
        profile_section(&serial_report),
        intra,
    );

    if check {
        let committed_text = std::fs::read_to_string(&out_path).unwrap_or_else(|e| {
            eprintln!("--check: failed to read {out_path}: {e}");
            std::process::exit(1);
        });
        let committed = JsonValue::parse(&committed_text).unwrap_or_else(|e| {
            eprintln!("--check: failed to parse {out_path}: {e}");
            std::process::exit(1);
        });
        let drifts = check_drift(&committed, &doc);
        if drifts.is_empty() {
            println!(
                "{out_path} is fresh: all gated fields within {DRIFT_PCT}% \
                 (serial {serial_ms:.0} ms, jobs={jobs} {parallel_ms:.0} ms, \
                 speedup {speedup:.2}x)"
            );
            return;
        }
        eprintln!(
            "{out_path} drifted beyond {DRIFT_PCT}% on {} field(s):",
            drifts.len()
        );
        for d in &drifts {
            eprintln!("  {d}");
        }
        eprintln!(
            "regenerate it with `cargo run --release -p xg-bench --bin xg-sweep-bench -- \
             --out {out_path}` and commit the result"
        );
        std::process::exit(1);
    }

    let json = format!("{doc}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "sweep: serial {serial_ms:.0} ms, jobs={jobs} {parallel_ms:.0} ms, speedup {speedup:.2}x \
         (merged reports byte-identical); intra-run: threads={intra_workers} speedup \
         {intra_speedup:.2}x (reports byte-identical); written to {out_path}"
    );
}

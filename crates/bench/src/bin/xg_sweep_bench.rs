//! Self-measuring speedup benchmark for the parallel sweep executor.
//!
//! Runs the *same* stress sweep (the full 12-configuration
//! [`SystemConfig::matrix`] crossed with several seeds) twice — once at
//! `jobs=1` (the exact legacy serial path) and once at `jobs=N` — then:
//!
//! * asserts the merged machine-readable reports are **byte-identical**,
//!   the determinism guarantee the sweep executor makes;
//! * writes a `BENCH_sweep.json` with wall-clock times, aggregate
//!   simulated-op throughput, and the parallel speedup, so CI can publish
//!   the number per runner.
//!
//! ```text
//! cargo run --release -p xg-bench --bin xg-sweep-bench -- --out BENCH_sweep.json
//! cargo run --release -p xg-bench --bin xg-sweep-bench -- --jobs 8
//! ```

use std::time::Instant;

use xg_harness::{run_stress, sweep, StressOpts, SystemConfig};
use xg_sim::Report;

/// Ops per shard. Sized so the serial pass takes seconds, long enough to
/// amortize thread startup yet quick enough for a per-commit CI job.
const OPS: u64 = 800;
/// Seeds crossed with the 12-configuration matrix: 48 shards total.
const SEEDS: [u64; 4] = [1, 2, 3, 4];

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} requires a value argument");
                std::process::exit(2);
            })
            .clone()
    })
}

/// Runs the whole sweep at one worker count, returning the merged report
/// and the wall-clock milliseconds it took.
fn run_once(shards: &[(SystemConfig, u64)], jobs: usize) -> (Report, f64) {
    let t0 = Instant::now();
    let reports = sweep(shards.to_vec(), jobs, |(cfg, _), _| {
        run_stress(
            &cfg,
            &StressOpts {
                ops: OPS,
                ..StressOpts::default()
            },
        )
        .report
    });
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    (Report::merge_shards(&reports), wall)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_sweep.json".into());
    let jobs = match arg_value(&args, "--jobs") {
        Some(raw) => xg_harness::resolve_jobs(Some(xg_harness::sweep::parse_jobs(&raw))),
        None => xg_harness::resolve_jobs(None),
    };

    let mut shards: Vec<(SystemConfig, u64)> = Vec::new();
    for seed in SEEDS {
        for cfg in SystemConfig::matrix(seed) {
            shards.push((cfg, seed));
        }
    }
    let total_ops = OPS * shards.len() as u64;
    eprintln!(
        "sweep bench: {} shards x {} ops, serial then jobs={jobs}",
        shards.len(),
        OPS
    );

    let (serial_report, serial_ms) = run_once(&shards, 1);
    let (parallel_report, parallel_ms) = run_once(&shards, jobs);

    let serial_json = serial_report.to_json();
    let parallel_json = parallel_report.to_json();
    assert_eq!(
        serial_json, parallel_json,
        "determinism violated: jobs=1 and jobs={jobs} merged reports differ"
    );

    let speedup = serial_ms / parallel_ms.max(1e-9);
    let ops_per_sec_serial = total_ops as f64 / (serial_ms / 1e3).max(1e-9);
    let ops_per_sec_parallel = total_ops as f64 / (parallel_ms / 1e3).max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"sweep_speedup\",\n  \"shards\": {},\n  \"ops_per_shard\": {},\n  \"jobs\": {},\n  \"serial_wall_ms\": {:.3},\n  \"parallel_wall_ms\": {:.3},\n  \"serial_ops_per_sec\": {:.1},\n  \"parallel_ops_per_sec\": {:.1},\n  \"speedup\": {:.3},\n  \"deterministic\": true\n}}\n",
        shards.len(),
        OPS,
        jobs,
        serial_ms,
        parallel_ms,
        ops_per_sec_serial,
        ops_per_sec_parallel,
        speedup
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!(
        "serial {serial_ms:.0} ms, jobs={jobs} {parallel_ms:.0} ms, speedup {speedup:.2}x \
         (merged reports byte-identical; written to {out_path})"
    );
}

//! # xg-bench — the evaluation harness
//!
//! One module per experiment in `DESIGN.md`'s experiment index; each
//! regenerates a table or figure of the Crossing Guard evaluation. The
//! same code backs three entry points:
//!
//! * `cargo run -p xg-bench --bin xg-report` — regenerate everything at
//!   full scale (feeds `EXPERIMENTS.md`).
//! * `cargo bench -p xg-bench` — print each table at bench scale and
//!   time a representative simulation with Criterion.
//! * Unit tests asserting the *shape* claims (who wins, what stays zero).
//!
//! Scale is a knob, not a fork: [`Scale::Quick`] for CI, [`Scale::Full`]
//! for the report.

pub mod experiments;
pub mod table;

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per experiment (CI, criterion preamble).
    Quick,
    /// Tens of seconds per experiment (the shipped report).
    Full,
}

impl Scale {
    /// Scales a base count.
    pub fn ops(self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

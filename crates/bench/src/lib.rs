//! # xg-bench — the evaluation harness
//!
//! One module per experiment in `DESIGN.md`'s experiment index; each
//! regenerates a table or figure of the Crossing Guard evaluation. The
//! same code backs three entry points:
//!
//! * `cargo run -p xg-bench --bin xg-report` — regenerate everything at
//!   full scale (feeds `EXPERIMENTS.md`).
//! * `cargo bench -p xg-bench` — print each table at bench scale and
//!   time a representative simulation with Criterion.
//! * Unit tests asserting the *shape* claims (who wins, what stays zero).
//!
//! Scale is a knob, not a fork: [`Scale::Quick`] for CI, [`Scale::Full`]
//! for the report.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod profile;
pub mod table;

/// Runs one representative stress configuration per host protocol and
/// merges the full per-component statistics into a single machine-readable
/// [`xg_sim::Report`] — scalars, coverage, and the latency histograms from
/// the guard, the host controllers, and the accelerator hierarchy. This is
/// what `xg-report --json` serializes.
pub fn collect_report(scale: Scale) -> xg_sim::Report {
    collect_report_jobs(scale, xg_harness::resolve_jobs(None))
}

/// [`collect_report`] on `jobs` workers: each host protocol runs as an
/// independent shard and the shard reports are merged in submission order.
/// [`xg_sim::Report::merge`] is commutative, so the merged JSON is
/// byte-identical at any worker count.
pub fn collect_report_jobs(scale: Scale, jobs: usize) -> xg_sim::Report {
    use xg_harness::{run_stress, sweep, HostProtocol, StressOpts, SystemConfig};
    let ops = scale.ops(800, 10_000);
    let shards = vec![(HostProtocol::Hammer, 11), (HostProtocol::Mesi, 12)];
    let reports = sweep(shards, jobs, |(host, seed), _| {
        let cfg = SystemConfig {
            host,
            seed,
            ..SystemConfig::default()
        };
        run_stress(
            &cfg,
            &StressOpts {
                ops,
                ..StressOpts::default()
            },
        )
        .report
    });
    xg_sim::Report::merge_shards(&reports)
}

/// Renders the per-machine transition-coverage sections of a merged
/// report: one table per table-driven machine (see `xg-fsm`), each followed
/// by a fired/total summary and the declared rows the run never exercised.
/// Backs `xg-report --coverage`.
pub fn coverage_tables(report: &xg_sim::Report) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (machine, cov) in report.fsms() {
        let mut t = table::Table::new(
            format!("transition coverage: {machine}"),
            &["state", "event", "fired"],
        );
        for (s, e, n) in cov.iter() {
            t.row(&[s.to_string(), e.to_string(), n.to_string()]);
        }
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "rows fired: {}/{} ({})",
            cov.fired_rows(),
            cov.total_rows(),
            table::percent(cov.fired_rows() as u64, cov.total_rows() as u64),
        );
        let never: Vec<String> = cov
            .never_fired()
            .map(|(s, e)| format!("{s} x {e}"))
            .collect();
        if never.is_empty() {
            let _ = writeln!(out, "never fired: none");
        } else {
            let _ = writeln!(out, "never fired: {}", never.join(", "));
        }
        out.push('\n');
    }
    if out.is_empty() {
        out.push_str("no transition-coverage data in report\n");
    }
    out
}

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per experiment (CI, criterion preamble).
    Quick,
    /// Tens of seconds per experiment (the shipped report).
    Full,
}

impl Scale {
    /// Scales a base count.
    pub fn ops(self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

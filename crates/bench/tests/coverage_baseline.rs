//! Transition-coverage regression baseline: the seed stress configurations
//! (the shards behind `xg-report --json` / `--coverage`) must keep
//! exercising at least the recorded `(state, event)` rows of both guard
//! personas. Coverage regressing below this baseline means a table
//! migration or workload change silently stopped driving part of the
//! protocol — exactly the drift these counters exist to catch.
//!
//! The baseline is the recorded behaviour of `collect_report` at
//! `Scale::Quick` (Hammer seed 11, Mesi seed 12), which is byte-identical
//! at any worker count.

use xg_bench::{collect_report_jobs, Scale};

const HAMMER_PERSONA_BASELINE: &[(&str, &str)] = &[
    ("Get", "FwdRead"),
    ("Get", "FwdWrite"),
    ("Get", "MemData"),
    ("Get", "RespAck"),
    ("Get", "RespData"),
    ("Idle", "FwdRead"),
    ("Idle", "FwdWrite"),
    ("Put_Clean", "WbAck"),
];

const MESI_PERSONA_BASELINE: &[(&str, &str)] = &[
    ("Get", "AckIn"),
    ("Get", "DataE"),
    ("Get", "DataM"),
    ("Get", "DataS"),
    ("Get", "FwdData_M"),
    ("Get", "FwdData_S"),
    ("Get", "OwnerRead"),
    ("Get_Acks", "AckIn"),
    ("Idle", "Inv"),
    ("Idle", "OwnerRead"),
    ("Idle", "OwnerWrite"),
    ("Put_Shared", "WbAck"),
];

#[test]
fn stress_sweep_reaches_persona_coverage_baseline() {
    let report = collect_report_jobs(Scale::Quick, 1);
    for (machine, baseline) in [
        ("hammer_persona", HAMMER_PERSONA_BASELINE),
        ("mesi_persona", MESI_PERSONA_BASELINE),
    ] {
        let cov = report
            .fsm(machine)
            .unwrap_or_else(|| panic!("{machine} coverage missing from report"));
        let missing: Vec<_> = baseline
            .iter()
            .filter(|(s, e)| cov.count(s, e) == 0)
            .collect();
        assert!(
            missing.is_empty(),
            "{machine} coverage regressed below baseline; rows no longer fired: \
             {missing:?} (fired {}/{})",
            cov.fired_rows(),
            cov.total_rows(),
        );
        // Every fired row must be a declared row of the table — firing an
        // undeclared row would mean the coverage instrument lies.
        for (s, e, n) in cov.iter() {
            assert!(
                n == 0 || cov.is_declared(s, e),
                "{machine} fired undeclared row ({s}, {e})"
            );
        }
    }
}

//! Profiling-overhead micro-benchmark, with an optional CI gate.
//!
//! Times the E1 stress configuration (hammer/xg_full_l1) three ways:
//!
//! * `baseline` — the legacy [`run_stress`] entry point;
//! * `disabled` — [`run_stress_with`] carrying [`Instrumentation::off`],
//!   i.e. the new plumbing with every probe dark (one branch per event);
//! * `profiled` — the same run with kernel profiling on (dispatch
//!   counters, sampled host-time attribution, epoch series).
//!
//! With `XG_PROF_GATE=1` in the environment, the bench *asserts* the
//! overhead contract the observability subsystem makes: disabled
//! instrumentation costs at most 1% over baseline, and enabled profiling
//! costs at most 10% over disabled. Minimum-of-N wall times are compared
//! (the minimum is the estimator least sensitive to scheduler noise), with
//! a small absolute slack so sub-millisecond timer jitter cannot trip the
//! gate on very fast runs.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xg_harness::{run_stress, run_stress_with, Instrumentation, StressOpts, SystemConfig};

/// Ops per timed run: long enough that per-event overhead dominates setup.
const OPS: u64 = 500;
/// Timed samples per variant when gating.
const GATE_SAMPLES: usize = 15;
/// Absolute slack absorbing timer jitter, in seconds (0.5 ms).
const GATE_SLACK: f64 = 0.0005;

fn e1_cfg() -> SystemConfig {
    SystemConfig::matrix(1)[2].clone() // hammer/xg_full_l1
}

fn opts() -> StressOpts {
    StressOpts {
        ops: OPS,
        ..StressOpts::default()
    }
}

/// Minimum wall-clock seconds over `samples` runs of `f` (after one
/// warm-up run).
fn min_secs(mut f: impl FnMut(), samples: usize) -> f64 {
    f();
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    let cfg = e1_cfg();
    c.bench_function("prof_overhead/baseline_500ops", |b| {
        b.iter(|| run_stress(&cfg, &opts()).cycles)
    });
    c.bench_function("prof_overhead/disabled_500ops", |b| {
        b.iter(|| run_stress_with(&cfg, &opts(), &Instrumentation::off()).cycles)
    });
    c.bench_function("prof_overhead/profiled_500ops", |b| {
        b.iter(|| run_stress_with(&cfg, &opts(), &Instrumentation::profiled()).cycles)
    });

    if std::env::var("XG_PROF_GATE").as_deref() == Ok("1") {
        let baseline = min_secs(
            || {
                black_box(run_stress(&cfg, &opts()).cycles);
            },
            GATE_SAMPLES,
        );
        let disabled = min_secs(
            || {
                black_box(run_stress_with(&cfg, &opts(), &Instrumentation::off()).cycles);
            },
            GATE_SAMPLES,
        );
        let profiled = min_secs(
            || {
                black_box(run_stress_with(&cfg, &opts(), &Instrumentation::profiled()).cycles);
            },
            GATE_SAMPLES,
        );
        println!(
            "gate: baseline {:.3} ms, disabled {:.3} ms ({:+.2}%), profiled {:.3} ms ({:+.2}% over disabled)",
            baseline * 1e3,
            disabled * 1e3,
            (disabled / baseline - 1.0) * 100.0,
            profiled * 1e3,
            (profiled / disabled - 1.0) * 100.0,
        );
        assert!(
            disabled <= baseline * 1.01 + GATE_SLACK,
            "disabled-instrumentation overhead gate failed: {:.3} ms vs baseline {:.3} ms (limit 1%)",
            disabled * 1e3,
            baseline * 1e3,
        );
        assert!(
            profiled <= disabled * 1.10 + GATE_SLACK,
            "enabled-profiling overhead gate failed: {:.3} ms vs disabled {:.3} ms (limit 10%)",
            profiled * 1e3,
            disabled * 1e3,
        );
        println!("gate: overhead within limits (disabled <= 1%, profiled <= 10%)");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! Profiling-overhead micro-benchmark, with an optional CI gate.
//!
//! Times the E1 stress configuration (hammer/xg_full_l1) three ways:
//!
//! * `baseline` — the legacy [`run_stress`] entry point;
//! * `disabled` — [`run_stress_with`] carrying [`Instrumentation::off`],
//!   i.e. the new plumbing with every probe dark (one branch per event);
//! * `profiled` — the same run with kernel profiling on (dispatch
//!   counters, sampled host-time attribution, epoch series).
//!
//! With `XG_PROF_GATE=1` in the environment, the bench *asserts* the
//! overhead contract the observability subsystem makes: disabled
//! instrumentation costs at most 5% over baseline (on a passing run the
//! two entry points execute the *same* code — `run_stress` forwards to
//! `run_stress_with(off)` — so this bound is really a sanity check that
//! the dark-probe path hasn't forked; the measured delta is runner
//! noise), and enabled profiling costs at most 25% over disabled — the
//! probe-cost contract proper. (The bounds were 1%/10% against the
//! pre-overhaul kernel; the hot-path rework cut the per-event baseline
//! ~2.5x, so the profiler's unchanged absolute cost — a few ns per
//! sampled event — is a larger *fraction* of a much cheaper event, and
//! the shorter wall times leave less room under scheduler noise.)
//! Minimum-of-N wall times over interleaved sampling rounds are compared
//! (the minimum is the estimator least sensitive to scheduler noise), with
//! a small absolute slack so sub-millisecond timer jitter cannot trip the
//! gate on very fast runs.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xg_harness::{run_stress, run_stress_with, Instrumentation, StressOpts, SystemConfig};

/// Ops per timed run: long enough that per-event overhead dominates setup.
const OPS: u64 = 2000;
/// Timed samples per variant when gating.
const GATE_SAMPLES: usize = 15;
/// Disabled-instrumentation limit over baseline (same code path on a
/// passing run, so this absorbs runner noise, not probe cost).
const DISABLED_LIMIT: f64 = 1.05;
/// Enabled-profiling limit over disabled instrumentation.
const PROFILED_LIMIT: f64 = 1.25;
/// Absolute slack absorbing timer jitter, in seconds (0.5 ms).
const GATE_SLACK: f64 = 0.0005;

fn e1_cfg() -> SystemConfig {
    SystemConfig::matrix(1)[2].clone() // hammer/xg_full_l1
}

fn opts() -> StressOpts {
    StressOpts {
        ops: OPS,
        ..StressOpts::default()
    }
}

/// Per-variant minimum wall-clock seconds over `samples` *interleaved*
/// rounds (after one warm-up round). Interleaving matters: the variants
/// are compared against each other, and sampling them in separate
/// sequential blocks lets minutes-scale machine drift (frequency
/// scaling, noisy neighbors) masquerade as an overhead difference.
/// Round-robin sampling exposes every variant to the same drift, so the
/// minima stay comparable.
fn min_secs_interleaved<const N: usize>(
    fns: &mut [&mut dyn FnMut(); N],
    samples: usize,
) -> [f64; N] {
    for f in fns.iter_mut() {
        f();
    }
    let mut mins = [f64::INFINITY; N];
    for _ in 0..samples {
        for (min, f) in mins.iter_mut().zip(fns.iter_mut()) {
            let t0 = Instant::now();
            f();
            *min = min.min(t0.elapsed().as_secs_f64());
        }
    }
    mins
}

fn bench(c: &mut Criterion) {
    let cfg = e1_cfg();
    c.bench_function("prof_overhead/baseline_2000ops", |b| {
        b.iter(|| run_stress(&cfg, &opts()).cycles)
    });
    c.bench_function("prof_overhead/disabled_2000ops", |b| {
        b.iter(|| run_stress_with(&cfg, &opts(), &Instrumentation::off()).cycles)
    });
    c.bench_function("prof_overhead/profiled_2000ops", |b| {
        b.iter(|| run_stress_with(&cfg, &opts(), &Instrumentation::profiled()).cycles)
    });

    if std::env::var("XG_PROF_GATE").as_deref() == Ok("1") {
        let [baseline, disabled, profiled] = min_secs_interleaved(
            &mut [
                &mut || {
                    black_box(run_stress(&cfg, &opts()).cycles);
                },
                &mut || {
                    black_box(run_stress_with(&cfg, &opts(), &Instrumentation::off()).cycles);
                },
                &mut || {
                    black_box(run_stress_with(&cfg, &opts(), &Instrumentation::profiled()).cycles);
                },
            ],
            GATE_SAMPLES,
        );
        println!(
            "gate: baseline {:.3} ms, disabled {:.3} ms ({:+.2}%), profiled {:.3} ms ({:+.2}% over disabled)",
            baseline * 1e3,
            disabled * 1e3,
            (disabled / baseline - 1.0) * 100.0,
            profiled * 1e3,
            (profiled / disabled - 1.0) * 100.0,
        );
        assert!(
            disabled <= baseline * DISABLED_LIMIT + GATE_SLACK,
            "disabled-instrumentation overhead gate failed: {:.3} ms vs baseline {:.3} ms (limit 5%)",
            disabled * 1e3,
            baseline * 1e3,
        );
        assert!(
            profiled <= disabled * PROFILED_LIMIT + GATE_SLACK,
            "enabled-profiling overhead gate failed: {:.3} ms vs disabled {:.3} ms (limit 25%)",
            profiled * 1e3,
            disabled * 1e3,
        );
        println!("gate: overhead within limits (disabled <= 5%, profiled <= 25%)");
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! E1: prints the stress table (quick scale) and times one stress run.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e1_stress;
use xg_bench::Scale;
use xg_harness::{run_stress, StressOpts, SystemConfig};

fn bench(c: &mut Criterion) {
    let rows = e1_stress::run(Scale::Quick, &[1]);
    println!("{}", e1_stress::table(&rows));
    assert!(rows.iter().all(|r| r.data_errors == 0 && !r.deadlocked));

    let cfg = SystemConfig::matrix(1)[2].clone(); // hammer/xg_full_l1
    c.bench_function("e1_stress/hammer_xg_full_l1_500ops", |b| {
        b.iter(|| {
            let out = run_stress(
                &cfg,
                &StressOpts {
                    ops: 500,
                    ..StressOpts::default()
                },
            );
            assert_eq!(out.data_errors, 0);
            out.cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! E4/E7: prints the storage comparison table and times one measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e4_storage;
use xg_bench::Scale;

fn bench(c: &mut Criterion) {
    let rows = e4_storage::run(Scale::Quick, 3);
    println!("{}", e4_storage::table(&rows));

    c.bench_function("e4_storage/quick_sweep", |b| {
        b.iter(|| e4_storage::run(Scale::Quick, 3).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

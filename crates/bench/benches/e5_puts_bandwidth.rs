//! E5: prints the PutS bandwidth table and times one measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e5_puts;
use xg_bench::Scale;

fn bench(c: &mut Criterion) {
    let rows = e5_puts::run(Scale::Quick, 4);
    println!("{}", e5_puts::table(&rows));

    c.bench_function("e5_puts/quick_sweep", |b| {
        b.iter(|| e5_puts::run(Scale::Quick, 4).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! E6: prints the DoS rate-limiting table and times one flood run.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e6_rate_limit;
use xg_bench::Scale;

fn bench(c: &mut Criterion) {
    let rows = e6_rate_limit::run(Scale::Quick, 6);
    println!("{}", e6_rate_limit::table(&rows));

    c.bench_function("e6_rate_limit/quick_sweep", |b| {
        b.iter(|| e6_rate_limit::run(Scale::Quick, 6).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! E3: prints the performance figure data and times one workload run.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e3_performance;
use xg_bench::Scale;
use xg_core::XgVariant;
use xg_harness::{run_workload, AccelOrg, HostProtocol, Pattern, SystemConfig};

fn bench(c: &mut Criterion) {
    let series = e3_performance::run(Scale::Quick, 9);
    println!("{}", e3_performance::table(&series));

    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        },
        seed: 9,
        ..SystemConfig::default()
    };
    c.bench_function("e3_perf/hammer_xg_full_blocked_2k", |b| {
        b.iter(|| {
            let out = run_workload(&cfg, Pattern::Blocked, 2_000);
            assert!(!out.incomplete);
            out.accel_runtime
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

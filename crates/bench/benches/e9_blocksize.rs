//! E9: prints the block-size translation table and times one sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e9_blocksize;
use xg_bench::Scale;

fn bench(c: &mut Criterion) {
    let rows = e9_blocksize::run(Scale::Quick, 8);
    println!("{}", e9_blocksize::table(&rows));
    assert!(rows.iter().all(|r| r.errors == 0));

    c.bench_function("e9_blocksize/sweep", |b| {
        b.iter(|| e9_blocksize::run(Scale::Quick, 8).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! E2/E10: prints the fuzz-safety table and times one fuzz run.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e2_fuzz;
use xg_bench::Scale;
use xg_core::XgVariant;
use xg_harness::{run_fuzz, AccelOrg, FuzzOpts, HostProtocol, SystemConfig};

fn bench(c: &mut Criterion) {
    let rows = e2_fuzz::run(Scale::Quick, 5);
    println!("{}", e2_fuzz::table(&rows));

    let cfg = SystemConfig {
        host: HostProtocol::Mesi,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::Transactional,
        },
        seed: 5,
        ..SystemConfig::default()
    };
    let fuzz = FuzzOpts {
        messages: 300,
        ..FuzzOpts::default()
    };
    c.bench_function("e2_fuzz/mesi_tx_300msgs", |b| {
        b.iter(|| {
            let out = run_fuzz(&cfg, &fuzz, 500);
            assert_eq!(out.host_violations, 0);
            out.cycles
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

//! E11: prints the prefetch ablation table and times one sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e11_prefetch;
use xg_bench::Scale;

fn bench(c: &mut Criterion) {
    let rows = e11_prefetch::run(Scale::Quick, 5);
    println!("{}", e11_prefetch::table(&rows));
    assert!(rows.iter().all(|r| r.errors == 0));

    c.bench_function("e11_prefetch/sweep", |b| {
        b.iter(|| e11_prefetch::run(Scale::Quick, 5).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

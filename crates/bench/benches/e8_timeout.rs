//! E8: prints the timeout-recovery table and times one recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use xg_bench::experiments::e8_timeout;
use xg_bench::Scale;

fn bench(c: &mut Criterion) {
    let rows = e8_timeout::run(Scale::Quick, 7);
    println!("{}", e8_timeout::table(&rows));
    assert!(rows.iter().all(|r| r.completed));

    c.bench_function("e8_timeout/sweep", |b| {
        b.iter(|| e8_timeout::run(Scale::Quick, 7).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);

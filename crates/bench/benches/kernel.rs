//! Kernel hot-path micro-benchmarks, with a CI perf-regression gate.
//!
//! Times the three data structures the simulator kernel's event loop
//! lives in, each against the reference implementation it replaced:
//!
//! * **scheduler** — [`CalendarQueue`] push/pop versus a `BinaryHeap`
//!   ordered by `(time, seq)`, at three horizons: *dense* (deltas 1–8,
//!   everything in the wheel, heavy same-slot FIFO traffic), *sparse*
//!   (deltas 1–512, wheel still covers the window but slots are cold),
//!   and *overflow* (deltas beyond the wheel window, exercising the
//!   overflow heap and migrate path);
//! * **slab** — [`Slab`] insert/take recycling versus `Box::new`/drop of
//!   the same payload (the per-hop allocation the slab eliminated);
//! * **fsm** — packed-table [`Machine::resolve`] dispatch versus a
//!   hand-written match over the same toy protocol.
//!
//! With `XG_PERF_GATE=1` in the environment, the bench *asserts* against
//! the committed integer baselines in `BENCH_kernel.json`. The gated keys
//! are speedup ratios (optimized vs reference, in parts-per-thousand), so
//! they transfer across machines; a ratio more than [`GATE_TOLERANCE_PCT`]
//! percent below its committed value fails the run. Raw ns/op numbers are
//! recorded alongside for humans but never gated. With `XG_PERF_REGEN=1`
//! the bench rewrites `BENCH_kernel.json` in place.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_fsm::{alphabet, Alphabet, Machine, Resolution, Table, TableBuilder};
use xg_sim::{CalendarQueue, Cycle, Slab};

/// Events per timed scheduler run.
const SCHED_OPS: usize = 20_000;
/// Alloc/free pairs per timed slab run.
const SLAB_OPS: usize = 20_000;
/// Lookups per timed FSM run.
const FSM_OPS: usize = 20_000;
/// Timed samples per measurement when gating or regenerating (the
/// minimum over samples is the estimator least sensitive to noise).
const GATE_SAMPLES: usize = 30;
/// Allowed regression of any gated ratio, in percent.
const GATE_TOLERANCE_PCT: u64 = 25;
/// Committed baseline file, relative to the workspace root.
const BASELINE: &str = "BENCH_kernel.json";

// --- scheduler -----------------------------------------------------------

/// A steady-state scheduler workload: hold ~256 events in flight, each
/// pop re-pushing one event `delta` cycles ahead (deltas drawn from
/// `deltas` round-robin, pre-generated so both queues see identical
/// schedules and the RNG never appears in the timed region).
struct SchedWorkload {
    deltas: Vec<u64>,
}

impl SchedWorkload {
    fn new(seed: u64, lo: u64, hi: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        SchedWorkload {
            deltas: (0..SCHED_OPS).map(|_| rng.gen_range(lo..=hi)).collect(),
        }
    }

    fn run_calendar(&self) -> u64 {
        let mut q = CalendarQueue::new();
        for i in 0..256u64 {
            q.push(Cycle::new(i % 8), i);
        }
        let mut acc = 0u64;
        for &delta in &self.deltas {
            let (t, v) = q.pop().expect("steady-state queue never drains");
            acc ^= t.as_u64().wrapping_add(v);
            q.push(t + delta, v);
        }
        acc
    }

    fn run_heap(&self) -> u64 {
        let mut q: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for i in 0..256u64 {
            q.push(Reverse((i % 8, seq, i)));
            seq += 1;
        }
        let mut acc = 0u64;
        for &delta in &self.deltas {
            let Reverse((t, _, v)) = q.pop().expect("steady-state heap never drains");
            acc ^= t.wrapping_add(v);
            q.push(Reverse((t + delta, seq, v)));
            seq += 1;
        }
        acc
    }
}

// --- slab ----------------------------------------------------------------

/// A stand-in for the simulator's message payloads: big enough that the
/// allocator does real work, `Clone` like a real message.
#[derive(Clone)]
struct Payload {
    words: [u64; 12],
}

fn payload(i: u64) -> Payload {
    Payload { words: [i; 12] }
}

/// Insert/take churn with ~64 payloads in flight, freeing the oldest —
/// the simulator's pattern (messages parked for one hop, FIFO-ish).
fn run_slab() -> u64 {
    let mut slab = Slab::new();
    let mut live = std::collections::VecDeque::new();
    let mut acc = 0u64;
    for i in 0..SLAB_OPS as u64 {
        live.push_back(slab.insert(payload(i)));
        if live.len() > 64 {
            let id = live.pop_front().expect("nonempty");
            acc ^= slab.take(id).words[0];
        }
    }
    acc
}

fn run_boxes() -> u64 {
    let mut live = std::collections::VecDeque::new();
    let mut acc = 0u64;
    for i in 0..SLAB_OPS as u64 {
        live.push_back(Box::new(payload(i)));
        if live.len() > 64 {
            let b = live.pop_front().expect("nonempty");
            acc ^= b.words[0];
        }
    }
    acc
}

// --- fsm -----------------------------------------------------------------

alphabet! {
    enum KSt {
        Idle,
        Shared,
        Excl,
        Pending,
    }
}

alphabet! {
    enum KEv {
        Load,
        Store,
        Inv,
        Ack,
    }
}

alphabet! {
    enum KAct {
        Fwd,
        Reply,
        Mark,
    }
}

fn kernel_table() -> &'static Table<KSt, KEv, KAct> {
    static T: std::sync::OnceLock<Table<KSt, KEv, KAct>> = std::sync::OnceLock::new();
    T.get_or_init(|| {
        let mut b = TableBuilder::new("bench_kernel");
        b.on(KSt::Idle, KEv::Load, &[KAct::Fwd], KSt::Shared);
        b.on(KSt::Idle, KEv::Store, &[KAct::Fwd, KAct::Mark], KSt::Excl);
        b.on(KSt::Shared, KEv::Load, &[KAct::Reply], KSt::Shared);
        b.on(
            KSt::Shared,
            KEv::Store,
            &[KAct::Fwd, KAct::Mark],
            KSt::Pending,
        );
        b.on(KSt::Shared, KEv::Inv, &[KAct::Reply], KSt::Idle);
        b.on(KSt::Excl, KEv::Load, &[KAct::Reply], KSt::Excl);
        b.on(KSt::Excl, KEv::Store, &[], KSt::Excl);
        b.on(KSt::Excl, KEv::Inv, &[KAct::Reply, KAct::Mark], KSt::Idle);
        b.stall(KSt::Pending, KEv::Load);
        b.stall(KSt::Pending, KEv::Store);
        b.stall(KSt::Pending, KEv::Inv);
        b.on(KSt::Pending, KEv::Ack, &[KAct::Mark], KSt::Excl);
        b.violation_rest();
        b.build().expect("bench table valid")
    })
}

/// The same protocol as a hand-written match — what an unpacked,
/// non-table-driven controller would compile to.
fn match_resolve(state: KSt, event: KEv) -> (u8, u64) {
    match (state, event) {
        (KSt::Idle, KEv::Load) => (0, 1),
        (KSt::Idle, KEv::Store) => (0, 2),
        (KSt::Shared, KEv::Load) => (0, 1),
        (KSt::Shared, KEv::Store) => (0, 2),
        (KSt::Shared, KEv::Inv) => (0, 1),
        (KSt::Excl, KEv::Load) => (0, 1),
        (KSt::Excl, KEv::Store) => (0, 0),
        (KSt::Excl, KEv::Inv) => (0, 2),
        (KSt::Pending, KEv::Ack) => (0, 1),
        (KSt::Pending, _) => (1, 0),
        _ => (2, 0),
    }
}

/// Pre-generated `(state, event)` stream hitting every row class.
fn fsm_stream(seed: u64) -> Vec<(KSt, KEv)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..FSM_OPS)
        .map(|_| {
            (
                KSt::ALL[rng.gen_range(0..KSt::ALL.len())],
                KEv::ALL[rng.gen_range(0..KEv::ALL.len())],
            )
        })
        .collect()
}

fn run_packed(machine: &mut Machine<KSt, KEv, KAct>, stream: &[(KSt, KEv)]) -> u64 {
    let mut acc = 0u64;
    for &(s, e) in stream {
        acc = acc.wrapping_add(match machine.resolve(s, e) {
            Resolution::Transition { actions, .. } => actions.len() as u64,
            Resolution::Stall => 100,
            Resolution::Violation => 200,
        });
    }
    acc
}

fn run_match(stream: &[(KSt, KEv)]) -> u64 {
    let mut acc = 0u64;
    for &(s, e) in stream {
        let (kind, n) = match_resolve(s, e);
        acc = acc.wrapping_add(match kind {
            0 => n,
            1 => 100,
            _ => 200,
        });
    }
    acc
}

// --- gate ----------------------------------------------------------------

/// Minimum wall-clock seconds over `samples` runs (after one warm-up).
fn min_secs(mut f: impl FnMut() -> u64, samples: usize) -> f64 {
    black_box(f());
    (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Speedup of `fast` over `slow` in parts-per-thousand (1000 = parity).
fn ratio_ppt(slow: f64, fast: f64) -> u64 {
    (slow / fast * 1000.0).round() as u64
}

fn measure_ratios() -> Vec<(&'static str, u64, u64)> {
    // (key, ratio_ppt, optimized ns/op) per measurement.
    let mut out = Vec::new();
    let horizons: [(&str, u64, u64); 3] = [
        ("dense", 1, 8),
        ("sparse", 1, 512),
        ("overflow", 4096, 65_536),
    ];
    for (name, lo, hi) in horizons {
        let w = SchedWorkload::new(0xC0FFEE, lo, hi);
        let cal = min_secs(|| w.run_calendar(), GATE_SAMPLES);
        let heap = min_secs(|| w.run_heap(), GATE_SAMPLES);
        out.push((
            match name {
                "dense" => "queue_vs_heap_dense_ppt",
                "sparse" => "queue_vs_heap_sparse_ppt",
                _ => "queue_vs_heap_overflow_ppt",
            },
            ratio_ppt(heap, cal),
            (cal * 1e9 / SCHED_OPS as f64).round() as u64,
        ));
    }
    let slab = min_secs(run_slab, GATE_SAMPLES);
    let boxes = min_secs(run_boxes, GATE_SAMPLES);
    out.push((
        "slab_vs_box_ppt",
        ratio_ppt(boxes, slab),
        (slab * 1e9 / SLAB_OPS as f64).round() as u64,
    ));
    let stream = fsm_stream(0xFACADE);
    let mut machine = Machine::new(kernel_table());
    let packed = min_secs(|| run_packed(&mut machine, &stream), GATE_SAMPLES);
    let matched = min_secs(|| run_match(&stream), GATE_SAMPLES);
    out.push((
        "fsm_packed_vs_match_ppt",
        ratio_ppt(matched, packed),
        (packed * 1e9 / FSM_OPS as f64).round() as u64,
    ));
    out
}

/// Locates `BENCH_kernel.json` next to the workspace `Cargo.toml` (the
/// bench runs with the crate as cwd under some invocations).
fn baseline_path() -> std::path::PathBuf {
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.join(BASELINE)
}

fn write_baseline(ratios: &[(&'static str, u64, u64)]) {
    let mut s = String::from("{\n");
    s.push_str("  \"_comment\": \"Kernel perf-gate baselines. *_ppt keys are optimized-vs-reference speedups in parts-per-thousand (machine-independent, gated at 25% regression by XG_PERF_GATE=1); *_ns_per_op keys are informational only. Regenerate: XG_PERF_REGEN=1 cargo bench -p xg-bench --bench kernel\",\n");
    for (key, ppt, _) in ratios {
        s.push_str(&format!("  \"{key}\": {ppt},\n"));
    }
    for (i, (key, _, ns)) in ratios.iter().enumerate() {
        let stem = key.trim_end_matches("_ppt");
        let comma = if i + 1 == ratios.len() { "" } else { "," };
        s.push_str(&format!("  \"{stem}_ns_per_op\": {ns}{comma}\n"));
    }
    s.push_str("}\n");
    std::fs::write(baseline_path(), s).expect("write BENCH_kernel.json");
}

/// Minimal flat-JSON integer extraction (the file is machine-written).
fn read_baseline_key(text: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let rest = &text[text.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find(|c: char| !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

fn gate(ratios: &[(&'static str, u64, u64)]) {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("perf gate needs {}: {e}", path.display()));
    let mut failures = Vec::new();
    for (key, got, _) in ratios {
        let want = read_baseline_key(&text, key)
            .unwrap_or_else(|| panic!("baseline missing gated key {key}"));
        let floor = want * (100 - GATE_TOLERANCE_PCT) / 100;
        let verdict = if *got < floor { "FAIL" } else { "ok" };
        eprintln!("perf gate: {key} = {got} (baseline {want}, floor {floor}) {verdict}");
        if *got < floor {
            failures.push(format!("{key}: {got} < floor {floor} (baseline {want})"));
        }
    }
    assert!(
        failures.is_empty(),
        "kernel perf gate: ratio regressed >{GATE_TOLERANCE_PCT}% vs {BASELINE}:\n  {}",
        failures.join("\n  ")
    );
}

// --- criterion entry points ----------------------------------------------

fn bench(c: &mut Criterion) {
    let dense = SchedWorkload::new(0xC0FFEE, 1, 8);
    let sparse = SchedWorkload::new(0xC0FFEE, 1, 512);
    let overflow = SchedWorkload::new(0xC0FFEE, 4096, 65_536);
    c.bench_function("kernel/queue_dense_20k", |b| {
        b.iter(|| dense.run_calendar())
    });
    c.bench_function("kernel/heap_dense_20k", |b| b.iter(|| dense.run_heap()));
    c.bench_function("kernel/queue_sparse_20k", |b| {
        b.iter(|| sparse.run_calendar())
    });
    c.bench_function("kernel/heap_sparse_20k", |b| b.iter(|| sparse.run_heap()));
    c.bench_function("kernel/queue_overflow_20k", |b| {
        b.iter(|| overflow.run_calendar())
    });
    c.bench_function("kernel/heap_overflow_20k", |b| {
        b.iter(|| overflow.run_heap())
    });
    c.bench_function("kernel/slab_churn_20k", |b| b.iter(run_slab));
    c.bench_function("kernel/box_churn_20k", |b| b.iter(run_boxes));
    let stream = fsm_stream(0xFACADE);
    let mut machine = Machine::new(kernel_table());
    c.bench_function("kernel/fsm_packed_20k", |b| {
        b.iter(|| run_packed(&mut machine, &stream))
    });
    c.bench_function("kernel/fsm_match_20k", |b| b.iter(|| run_match(&stream)));

    let regen = std::env::var("XG_PERF_REGEN").as_deref() == Ok("1");
    let gate_on = std::env::var("XG_PERF_GATE").as_deref() == Ok("1");
    if regen || gate_on {
        let ratios = measure_ratios();
        if regen {
            write_baseline(&ratios);
            eprintln!("perf gate: wrote {}", baseline_path().display());
        }
        if gate_on {
            gate(&ratios);
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! # xg-criterion — vendored subset of the `criterion` 0.5 API
//!
//! This workspace builds in fully offline environments, so it cannot pull
//! `criterion` from crates.io. This crate implements just enough of the
//! surface the benches use — [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`], and the builder knobs — to keep
//! the `benches/` tree compiling and producing useful wall-clock numbers.
//! There is no statistics engine: each benchmark runs `sample_size` timed
//! samples (after a warm-up pass) and reports min/median/max per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets how long to run the routine before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Caps the total time spent collecting timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs `f` repeatedly and prints per-iteration timing for `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.samples.sort_unstable();
        let (min, med, max) = match b.samples.as_slice() {
            [] => (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            s => (s[0], s[s.len() / 2], s[s.len() - 1]),
        };
        println!(
            "bench {name:<40} samples={} min={min:?} median={med:?} max={max:?}",
            b.samples.len()
        );
        self
    }
}

/// Times one benchmark routine (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` for the warm-up window, then collects timed samples
    /// until either `sample_size` samples exist or the measurement budget
    /// is spent (always at least one sample).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let run_start = Instant::now();
        for done in 0..self.sample_size {
            if done > 0 && run_start.elapsed() >= self.budget {
                break;
            }
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Opaque identity function that defeats constant-folding of the result.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group (subset of `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `fn main` running the listed groups (subset of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        let mut calls = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "routine never ran");
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        targets = routine
    }

    criterion_group!(default_benches, routine);

    #[test]
    fn group_macros_run_targets() {
        benches();
        default_benches();
    }
}

//! # xg-rng — vendored subset of the `rand` 0.8 API
//!
//! This workspace builds in fully offline environments, so it cannot pull
//! `rand` from crates.io. This crate re-implements exactly the slice of the
//! rand 0.8 surface the simulator uses — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`rngs::SmallRng`] — on top of xoshiro256++ (the same family rand's
//! `small_rng` feature uses). The workspace `Cargo.toml` aliases it as
//! `rand`, so downstream code keeps the idiomatic `use rand::Rng;` imports.
//!
//! Determinism matters more than statistical perfection here: every stress
//! and fuzz run must be replayable from a seed. The generator and all
//! distributions below are stable — changing them would silently change
//! every seeded experiment, so treat the output streams as a compatibility
//! surface.

#![forbid(unsafe_code)]

/// Derives a per-stream seed from a run seed and a stable stream label.
///
/// Components that own their own [`rngs::SmallRng`] seed it with
/// `stream_seed(run_seed, component_name)`: the label is FNV-1a hashed,
/// XORed into the run seed, and scrambled once with the SplitMix64
/// finalizer, so nearby run seeds and similarly named components still get
/// unrelated streams. Crucially the derived seed depends only on the pair —
/// adding or removing *other* components cannot perturb this stream, which
/// is the partition-invariance property the parallel simulator's
/// determinism argument rests on.
pub fn stream_seed(seed: u64, label: &str) -> u64 {
    // FNV-1a (64-bit) over the label bytes.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // One SplitMix64 finalizer round over the combined value (the same
    // constants `seed_from_u64` uses for its expansion).
    let mut z = seed ^ h;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion
    /// (the construction recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_range<R: RngCore>(self, rng: &mut R) -> T;
}

/// The raw generator interface: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation latency draws.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion so nearby seeds give unrelated streams.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [mut s0, mut s1, mut s2, mut s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform draw from `[0, bound)` by Lemire-style widening multiply with a
/// rejection step (unbiased).
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling over the largest multiple of `bound` that fits.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_range<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 13];
        for _ in 0..2_000 {
            let v: i32 = rng.gen_range(0..13);
            assert!((0..13).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 13 values reachable");
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&v));
        }
        // Degenerate and extreme inclusive ranges.
        assert_eq!(rng.gen_range(3u64..=3), 3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "got {heads}");
    }

    #[test]
    fn standard_draws_all_used_types() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: bool = rng.gen();
        let _: u8 = rng.gen();
        let _: u32 = rng.gen();
        let _: u64 = rng.gen();
        let _: usize = rng.gen();
    }

    #[test]
    fn stream_seeds_depend_only_on_the_pair() {
        use super::stream_seed;
        // Stable across calls, distinct across labels and across seeds.
        assert_eq!(stream_seed(1, "guard"), stream_seed(1, "guard"));
        assert_ne!(stream_seed(1, "guard"), stream_seed(1, "guard2"));
        assert_ne!(stream_seed(1, "guard"), stream_seed(2, "guard"));
        // Similar labels diverge immediately in the derived stream.
        let mut a = SmallRng::seed_from_u64(stream_seed(7, "cpu_cache0"));
        let mut b = SmallRng::seed_from_u64(stream_seed(7, "cpu_cache1"));
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }
}

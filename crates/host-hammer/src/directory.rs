//! The Hammer directory + memory controller.
//!
//! The directory serializes transactions per block (a blocking directory),
//! broadcasts forwards to every peer cache (it keeps no sharer list), and
//! tracks the identity of the current owner so it can accept or `WbNack` a
//! `Put`. Memory lives behind the directory and is read on every request
//! (`MemData` also tells the requestor how many peer responses to expect).
//!
//! Dispatch is table-driven (see [`table`]): the controller classifies each
//! message into a [`DirEvent`] against its abstract [`DirState`], and the
//! `xg-fsm` table decides transition/stall/violation. Concrete bookkeeping
//! (owner identity, queue contents, memory) stays here, interpreted through
//! the symbolic [`DirAction`]s.

use std::collections::{HashMap, VecDeque};

use xg_fsm::{alphabet, Alphabet, Controller, Machine, Step, Table, TableBuilder};
use xg_mem::{BlockAddr, DataBlock};
use xg_proto::{Ctx, HammerKind, HammerMsg, Message};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

alphabet! {
    /// Abstract per-block directory states (paper §2.3 naming).
    pub enum DirState {
        /// Memory owns the block (no cache owner recorded).
        Omem = "O_mem",
        /// Some cache owns the block.
        NO = "NO",
        /// A Get is outstanding; waiting for the requestor's `Unblock`.
        BusyGet = "Busy_Get",
        /// A writeback was acked; waiting for `WbData`.
        BusyWb = "Busy_Wb",
    }
}

alphabet! {
    /// Classified stimulus: message kind refined by sender identity and
    /// transaction bookkeeping (e.g. a `Put` from the recorded owner is a
    /// different event than one from anybody else).
    pub enum DirEvent {
        GetS,
        GetSOnly,
        GetM,
        /// `Put` from the recorded owner.
        PutOwner,
        /// `Put` from a non-owner (legal race; nacked).
        PutForeign,
        /// `WbData` from the putter of the in-flight writeback.
        WbDataPutter,
        /// `WbData` from anyone else, or with no writeback in flight.
        WbDataStray,
        /// `Unblock{new_owner: true}` from the in-flight requestor.
        UnblockOwn,
        /// `Unblock{new_owner: false}` from the in-flight requestor.
        UnblockShare,
        /// `Unblock` from anyone else, or with no Get in flight.
        UnblockStray,
        /// A message kind the directory never receives (forwards, data
        /// responses, wb acks).
        Stray,
    }
}

alphabet! {
    /// Symbolic directory actions, interpreted against concrete state.
    pub enum DirAction {
        /// Mark the block busy on a Get and stamp `busy_since`.
        SetBusyGet,
        /// Count the Get (gets/getms) and the memory read it triggers.
        CountGet,
        /// Broadcast the matching forward to every peer except the
        /// requestor, tagging the current owner.
        Broadcast,
        /// Send `MemData` (with expected peer count) after `mem_latency`.
        SendMemData,
        /// Count the Put.
        CountPut,
        /// Accept the writeback: mark busy and send `WbAck`.
        AckWb,
        /// Reject the writeback: count and send `WbNack`.
        NackWb,
        /// Commit `WbData` to memory if dirty.
        WriteBackMem,
        /// Forget the cache owner (memory owns again).
        ClearOwner,
        /// Record the unblocking requestor as the new owner.
        RecordOwner,
        /// Clear busy and record the busy-latency sample.
        FinishBusy,
        /// Re-handle queued requests until one re-busies the block.
        Drain,
    }
}

/// The validated `hammer_dir` transition table (shared by all instances).
pub fn table() -> &'static Table<DirState, DirEvent, DirAction> {
    static T: std::sync::OnceLock<Table<DirState, DirEvent, DirAction>> =
        std::sync::OnceLock::new();
    T.get_or_init(|| {
        use DirAction::*;
        use DirEvent::*;
        use DirState::*;
        let mut b = TableBuilder::new("hammer_dir");
        const GET: &[DirAction] = &[SetBusyGet, CountGet, Broadcast, SendMemData];
        for s in [Omem, NO] {
            b.on(s, GetS, GET, BusyGet);
            b.on(s, GetSOnly, GET, BusyGet);
            b.on(s, GetM, GET, BusyGet);
        }
        // The directory is blocking: anything request-shaped waits its turn.
        for s in [BusyGet, BusyWb] {
            for e in [GetS, GetSOnly, GetM, PutOwner, PutForeign] {
                b.stall(s, e);
            }
        }
        b.on(NO, PutOwner, &[CountPut, AckWb], BusyWb);
        b.on(NO, PutForeign, &[CountPut, NackWb], NO);
        // A Put racing ahead of the owner change it lost to: legal, nacked.
        b.on(Omem, PutForeign, &[CountPut, NackWb], Omem);
        b.on(
            BusyWb,
            WbDataPutter,
            &[WriteBackMem, ClearOwner, FinishBusy, Drain],
            Omem,
        );
        b.on(BusyGet, UnblockOwn, &[RecordOwner, FinishBusy, Drain], NO);
        // Owner is untouched on a shared unblock, so the successor depends
        // on whether a cache owner was recorded before the Get.
        b.on_dyn(BusyGet, UnblockShare, &[FinishBusy, Drain]);
        b.violation_rest();
        b.build()
            .expect("hammer_dir table is deterministic and total")
    })
}

/// Per-block directory state.
#[derive(Debug, Default)]
struct DirBlock {
    owner: Option<NodeId>,
    busy: Option<Busy>,
    busy_since: Option<Cycle>,
    queue: VecDeque<(NodeId, HammerKind)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Busy {
    /// A Get is outstanding; waiting for the requestor's `Unblock`.
    Get { requestor: NodeId },
    /// A writeback was acked; waiting for `WbData`.
    Wb { putter: NodeId },
}

#[derive(Debug, Default)]
struct Stats {
    gets: u64,
    getms: u64,
    puts: u64,
    nacks: u64,
    mem_reads: u64,
    mem_writes: u64,
    protocol_violation: u64,
    /// Cycles each directory transaction held its block busy.
    lat_busy: Histogram,
}

/// Per-dispatch context for [`DirAction`] interpretation.
pub struct DirCx<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    from: NodeId,
    addr: BlockAddr,
    kind: HammerKind,
}

/// The directory/memory controller of the Hammer-like protocol.
pub struct HammerDirectory {
    name: String,
    caches: Vec<NodeId>,
    memory: HashMap<BlockAddr, DataBlock>,
    blocks: HashMap<BlockAddr, DirBlock>,
    mem_latency: u64,
    stats: Stats,
    coverage: CoverageSet,
    machine: Machine<DirState, DirEvent, DirAction>,
}

impl HammerDirectory {
    /// Creates a directory serving the given set of peer caches (every
    /// cache controller in the system, including any Crossing Guard, which
    /// appears here as just another cache). `mem_latency` is added to every
    /// memory read response.
    pub fn new(name: impl Into<String>, caches: Vec<NodeId>, mem_latency: u64) -> Self {
        HammerDirectory {
            name: name.into(),
            caches,
            memory: HashMap::new(),
            blocks: HashMap::new(),
            mem_latency,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
            machine: Machine::new(table()),
        }
    }

    /// Pre-loads memory contents (for tests and workload setup).
    pub fn write_memory(&mut self, addr: BlockAddr, data: DataBlock) {
        self.memory.insert(addr, data);
    }

    /// Reads current memory contents (zero if never written).
    pub fn read_memory(&self, addr: BlockAddr) -> DataBlock {
        self.memory.get(&addr).copied().unwrap_or_default()
    }

    /// Number of `WbNack`s issued (legal-race or erroneous puts).
    pub fn nacks(&self) -> u64 {
        self.stats.nacks
    }

    /// Number of impossible events observed. Zero among trusted caches.
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    /// Abstract state of `addr` for table dispatch and coverage.
    fn dir_state(&self, addr: BlockAddr) -> DirState {
        match self.blocks.get(&addr) {
            None => DirState::Omem,
            Some(b) => match (&b.busy, b.owner) {
                (Some(Busy::Get { .. }), _) => DirState::BusyGet,
                (Some(Busy::Wb { .. }), _) => DirState::BusyWb,
                (None, Some(_)) => DirState::NO,
                (None, None) => DirState::Omem,
            },
        }
    }

    /// Refines a message kind into a table event using sender identity and
    /// the in-flight transaction bookkeeping.
    fn classify(&self, from: NodeId, addr: BlockAddr, kind: &HammerKind) -> DirEvent {
        let block = self.blocks.get(&addr);
        match kind {
            HammerKind::GetS => DirEvent::GetS,
            HammerKind::GetSOnly => DirEvent::GetSOnly,
            HammerKind::GetM => DirEvent::GetM,
            HammerKind::Put => {
                if block.and_then(|b| b.owner) == Some(from) {
                    DirEvent::PutOwner
                } else {
                    DirEvent::PutForeign
                }
            }
            HammerKind::WbData { .. } => {
                if block.is_some_and(|b| b.busy == Some(Busy::Wb { putter: from })) {
                    DirEvent::WbDataPutter
                } else {
                    DirEvent::WbDataStray
                }
            }
            HammerKind::Unblock { new_owner } => {
                if block.is_some_and(|b| b.busy == Some(Busy::Get { requestor: from })) {
                    if *new_owner {
                        DirEvent::UnblockOwn
                    } else {
                        DirEvent::UnblockShare
                    }
                } else {
                    DirEvent::UnblockStray
                }
            }
            _ => DirEvent::Stray,
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.dir_state(addr).label();
        self.coverage.visit(state, event);
    }

    fn handle_request(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        kind: HammerKind,
        ctx: &mut Ctx<'_>,
    ) {
        let block = self.blocks.entry(addr).or_default();
        if ctx.trace_active() {
            let detail = format!(
                "{:?} (owner={:?} busy={:?} qlen={})",
                kind,
                block.owner,
                block.busy,
                block.queue.len()
            );
            ctx.trace(addr.as_u64(), "hammer-dir", "Recv", || detail);
        }
        let state = self.dir_state(addr);
        let event = self.classify(from, addr, &kind);
        let mut cx = DirCx {
            ctx,
            from,
            addr,
            kind,
        };
        self.dispatch(state, event, &mut cx);
    }

    fn drain_queue(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        // Re-handle queued requests until one makes the block busy again.
        loop {
            let Some(block) = self.blocks.get_mut(&addr) else {
                return;
            };
            if block.busy.is_some() {
                return;
            }
            let Some((from, kind)) = block.queue.pop_front() else {
                return;
            };
            let event = event_name(&kind);
            self.cover(addr, event);
            self.handle_request(from, addr, kind, ctx);
        }
    }
}

impl<'a, 'b> Controller<DirState, DirEvent, DirAction, DirCx<'a, 'b>> for HammerDirectory {
    fn machine(&mut self) -> &mut Machine<DirState, DirEvent, DirAction> {
        &mut self.machine
    }

    fn apply(
        &mut self,
        action: DirAction,
        _step: Step<DirState, DirEvent>,
        cx: &mut DirCx<'a, 'b>,
    ) {
        match action {
            DirAction::SetBusyGet => {
                let block = self.blocks.entry(cx.addr).or_default();
                block.busy = Some(Busy::Get { requestor: cx.from });
                block.busy_since = Some(cx.ctx.now());
            }
            DirAction::CountGet => {
                if matches!(cx.kind, HammerKind::GetM) {
                    self.stats.getms += 1;
                } else {
                    self.stats.gets += 1;
                }
                self.stats.mem_reads += 1;
            }
            DirAction::Broadcast => {
                let owner = self.blocks.get(&cx.addr).and_then(|b| b.owner);
                let peers: Vec<NodeId> = self
                    .caches
                    .iter()
                    .copied()
                    .filter(|&c| c != cx.from)
                    .collect();
                for &peer in &peers {
                    let to_owner = owner == Some(peer);
                    let fwd = match cx.kind {
                        HammerKind::GetS => HammerKind::FwdGetS {
                            requestor: cx.from,
                            to_owner,
                        },
                        HammerKind::GetSOnly => HammerKind::FwdGetSOnly {
                            requestor: cx.from,
                            to_owner,
                        },
                        HammerKind::GetM => HammerKind::FwdGetM {
                            requestor: cx.from,
                            to_owner,
                        },
                        // The table only runs Broadcast on Get rows.
                        _ => {
                            self.stats.protocol_violation += 1;
                            return;
                        }
                    };
                    cx.ctx.send(peer, HammerMsg::new(cx.addr, fwd).into());
                }
            }
            DirAction::SendMemData => {
                let peers = self.caches.iter().filter(|&&c| c != cx.from).count() as u32;
                let data = self.memory.get(&cx.addr).copied().unwrap_or_default();
                cx.ctx.send_after(
                    cx.from,
                    HammerMsg::new(cx.addr, HammerKind::MemData { data, peers }).into(),
                    self.mem_latency,
                );
            }
            DirAction::CountPut => {
                self.stats.puts += 1;
            }
            DirAction::AckWb => {
                let block = self.blocks.entry(cx.addr).or_default();
                block.busy = Some(Busy::Wb { putter: cx.from });
                block.busy_since = Some(cx.ctx.now());
                cx.ctx
                    .send(cx.from, HammerMsg::new(cx.addr, HammerKind::WbAck).into());
            }
            DirAction::NackWb => {
                self.stats.nacks += 1;
                cx.ctx
                    .send(cx.from, HammerMsg::new(cx.addr, HammerKind::WbNack).into());
            }
            DirAction::WriteBackMem => {
                if let HammerKind::WbData { data, dirty } = cx.kind {
                    if dirty {
                        self.stats.mem_writes += 1;
                        self.memory.insert(cx.addr, data);
                    }
                } else {
                    // The table only runs WriteBackMem on WbData rows.
                    self.stats.protocol_violation += 1;
                }
            }
            DirAction::ClearOwner => {
                self.blocks.entry(cx.addr).or_default().owner = None;
            }
            DirAction::RecordOwner => {
                self.blocks.entry(cx.addr).or_default().owner = Some(cx.from);
            }
            DirAction::FinishBusy => {
                let now = cx.ctx.now();
                let block = self.blocks.entry(cx.addr).or_default();
                block.busy = None;
                if let Some(since) = block.busy_since.take() {
                    self.stats.lat_busy.record(now.saturating_since(since));
                }
            }
            DirAction::Drain => {
                self.drain_queue(cx.addr, cx.ctx);
            }
        }
    }

    fn stalled(&mut self, _step: Step<DirState, DirEvent>, cx: &mut DirCx<'a, 'b>) {
        self.blocks
            .entry(cx.addr)
            .or_default()
            .queue
            .push_back((cx.from, cx.kind));
    }

    fn violated(&mut self, _step: Step<DirState, DirEvent>, _cx: &mut DirCx<'a, 'b>) {
        self.stats.protocol_violation += 1;
    }
}

fn event_name(kind: &HammerKind) -> &'static str {
    match kind {
        HammerKind::GetS => "GetS",
        HammerKind::GetSOnly => "GetSOnly",
        HammerKind::GetM => "GetM",
        HammerKind::Put => "Put",
        HammerKind::WbData { .. } => "WbData",
        HammerKind::Unblock { .. } => "Unblock",
        HammerKind::FwdGetS { .. } => "FwdGetS",
        HammerKind::FwdGetSOnly { .. } => "FwdGetSOnly",
        HammerKind::FwdGetM { .. } => "FwdGetM",
        HammerKind::MemData { .. } => "MemData",
        HammerKind::RespData { .. } => "RespData",
        HammerKind::RespAck { .. } => "RespAck",
        HammerKind::WbAck => "WbAck",
        HammerKind::WbNack => "WbNack",
    }
}

impl Component<Message> for HammerDirectory {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let violations_before = self.stats.protocol_violation;
        let addr = match &msg {
            Message::Hammer(h) => h.addr.as_u64(),
            _ => u64::MAX,
        };
        match msg {
            Message::Hammer(h) => {
                self.cover(h.addr, event_name(&h.kind));
                self.handle_request(from, h.addr, h.kind, ctx);
            }
            _ => {
                self.stats.protocol_violation += 1;
            }
        }
        if violations_before == 0 && self.stats.protocol_violation > 0 {
            ctx.flag_post_mortem(addr, format!("{}: first protocol violation", self.name));
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.gets"), self.stats.gets);
        out.add(format!("{n}.getms"), self.stats.getms);
        out.add(format!("{n}.puts"), self.stats.puts);
        out.add(format!("{n}.nacks"), self.stats.nacks);
        out.add(format!("{n}.mem_reads"), self.stats.mem_reads);
        out.add(format!("{n}.mem_writes"), self.stats.mem_writes);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        out.record_coverage(format!("hammer_dir/{n}"), &self.coverage);
        out.record_hist(format!("{n}.lat.busy"), &self.stats.lat_busy);
        self.machine.record_into(out);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

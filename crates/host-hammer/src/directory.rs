//! The Hammer directory + memory controller.
//!
//! The directory serializes transactions per block (a blocking directory),
//! broadcasts forwards to every peer cache (it keeps no sharer list), and
//! tracks the identity of the current owner so it can accept or `WbNack` a
//! `Put`. Memory lives behind the directory and is read on every request
//! (`MemData` also tells the requestor how many peer responses to expect).

use std::collections::{HashMap, VecDeque};

use xg_mem::{BlockAddr, DataBlock};
use xg_proto::{Ctx, HammerKind, HammerMsg, Message};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

/// Per-block directory state.
#[derive(Debug, Default)]
struct DirBlock {
    owner: Option<NodeId>,
    busy: Option<Busy>,
    busy_since: Option<Cycle>,
    queue: VecDeque<(NodeId, HammerKind)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Busy {
    /// A Get is outstanding; waiting for the requestor's `Unblock`.
    Get { requestor: NodeId },
    /// A writeback was acked; waiting for `WbData`.
    Wb { putter: NodeId },
}

#[derive(Debug, Default)]
struct Stats {
    gets: u64,
    getms: u64,
    puts: u64,
    nacks: u64,
    mem_reads: u64,
    mem_writes: u64,
    protocol_violation: u64,
    /// Cycles each directory transaction held its block busy.
    lat_busy: Histogram,
}

/// The directory/memory controller of the Hammer-like protocol.
pub struct HammerDirectory {
    name: String,
    caches: Vec<NodeId>,
    memory: HashMap<BlockAddr, DataBlock>,
    blocks: HashMap<BlockAddr, DirBlock>,
    mem_latency: u64,
    stats: Stats,
    coverage: CoverageSet,
}

impl HammerDirectory {
    /// Creates a directory serving the given set of peer caches (every
    /// cache controller in the system, including any Crossing Guard, which
    /// appears here as just another cache). `mem_latency` is added to every
    /// memory read response.
    pub fn new(name: impl Into<String>, caches: Vec<NodeId>, mem_latency: u64) -> Self {
        HammerDirectory {
            name: name.into(),
            caches,
            memory: HashMap::new(),
            blocks: HashMap::new(),
            mem_latency,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
        }
    }

    /// Pre-loads memory contents (for tests and workload setup).
    pub fn write_memory(&mut self, addr: BlockAddr, data: DataBlock) {
        self.memory.insert(addr, data);
    }

    /// Reads current memory contents (zero if never written).
    pub fn read_memory(&self, addr: BlockAddr) -> DataBlock {
        self.memory.get(&addr).copied().unwrap_or_default()
    }

    /// Number of `WbNack`s issued (legal-race or erroneous puts).
    pub fn nacks(&self) -> u64 {
        self.stats.nacks
    }

    /// Number of impossible events observed. Zero among trusted caches.
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    fn state_name(&self, addr: BlockAddr) -> &'static str {
        match self.blocks.get(&addr) {
            None => "O_mem",
            Some(b) => match (&b.busy, b.owner) {
                (Some(Busy::Get { .. }), _) => "Busy_Get",
                (Some(Busy::Wb { .. }), _) => "Busy_Wb",
                (None, Some(_)) => "NO",
                (None, None) => "O_mem",
            },
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.state_name(addr);
        self.coverage.visit(state, event);
    }

    fn handle_request(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        kind: HammerKind,
        ctx: &mut Ctx<'_>,
    ) {
        let block = self.blocks.entry(addr).or_default();
        if ctx.trace_active() {
            let detail = format!(
                "{:?} (owner={:?} busy={:?} qlen={})",
                kind,
                block.owner,
                block.busy,
                block.queue.len()
            );
            ctx.trace(addr.as_u64(), "hammer-dir", "Recv", || detail);
        }
        let block = self.blocks.entry(addr).or_default();
        match kind {
            HammerKind::GetS | HammerKind::GetSOnly | HammerKind::GetM => {
                if block.busy.is_some() {
                    block.queue.push_back((from, kind));
                    return;
                }
                block.busy = Some(Busy::Get { requestor: from });
                block.busy_since = Some(ctx.now());
                let owner = block.owner;
                if matches!(kind, HammerKind::GetM) {
                    self.stats.getms += 1;
                } else {
                    self.stats.gets += 1;
                }
                self.stats.mem_reads += 1;
                // Broadcast to every peer cache except the requestor.
                let peers: Vec<NodeId> =
                    self.caches.iter().copied().filter(|&c| c != from).collect();
                for &peer in &peers {
                    let to_owner = owner == Some(peer);
                    let fwd = match kind {
                        HammerKind::GetS => HammerKind::FwdGetS {
                            requestor: from,
                            to_owner,
                        },
                        HammerKind::GetSOnly => HammerKind::FwdGetSOnly {
                            requestor: from,
                            to_owner,
                        },
                        HammerKind::GetM => HammerKind::FwdGetM {
                            requestor: from,
                            to_owner,
                        },
                        _ => unreachable!(),
                    };
                    ctx.send(peer, HammerMsg::new(addr, fwd).into());
                }
                let data = self.memory.get(&addr).copied().unwrap_or_default();
                ctx.send_after(
                    from,
                    HammerMsg::new(
                        addr,
                        HammerKind::MemData {
                            data,
                            peers: peers.len() as u32,
                        },
                    )
                    .into(),
                    self.mem_latency,
                );
            }
            HammerKind::Put => {
                if block.busy.is_some() {
                    block.queue.push_back((from, kind));
                    return;
                }
                self.stats.puts += 1;
                if block.owner == Some(from) {
                    block.busy = Some(Busy::Wb { putter: from });
                    block.busy_since = Some(ctx.now());
                    ctx.send(from, HammerMsg::new(addr, HammerKind::WbAck).into());
                } else {
                    self.stats.nacks += 1;
                    ctx.send(from, HammerMsg::new(addr, HammerKind::WbNack).into());
                }
            }
            HammerKind::WbData { data, dirty } if block.busy == Some(Busy::Wb { putter: from }) => {
                if dirty {
                    self.stats.mem_writes += 1;
                    self.memory.insert(addr, data);
                }
                block.owner = None;
                block.busy = None;
                if let Some(since) = block.busy_since.take() {
                    self.stats
                        .lat_busy
                        .record(ctx.now().saturating_since(since));
                }
                self.drain_queue(addr, ctx);
            }
            HammerKind::Unblock { new_owner }
                if block.busy == Some(Busy::Get { requestor: from }) =>
            {
                if new_owner {
                    block.owner = Some(from);
                }
                block.busy = None;
                if let Some(since) = block.busy_since.take() {
                    self.stats
                        .lat_busy
                        .record(ctx.now().saturating_since(since));
                }
                self.drain_queue(addr, ctx);
            }
            _ => {
                self.stats.protocol_violation += 1;
            }
        }
    }

    fn drain_queue(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        // Re-handle queued requests until one makes the block busy again.
        loop {
            let Some(block) = self.blocks.get_mut(&addr) else {
                return;
            };
            if block.busy.is_some() {
                return;
            }
            let Some((from, kind)) = block.queue.pop_front() else {
                return;
            };
            let event = event_name(&kind);
            self.cover(addr, event);
            self.handle_request(from, addr, kind, ctx);
        }
    }
}

fn event_name(kind: &HammerKind) -> &'static str {
    match kind {
        HammerKind::GetS => "GetS",
        HammerKind::GetSOnly => "GetSOnly",
        HammerKind::GetM => "GetM",
        HammerKind::Put => "Put",
        HammerKind::WbData { .. } => "WbData",
        HammerKind::Unblock { .. } => "Unblock",
        HammerKind::FwdGetS { .. } => "FwdGetS",
        HammerKind::FwdGetSOnly { .. } => "FwdGetSOnly",
        HammerKind::FwdGetM { .. } => "FwdGetM",
        HammerKind::MemData { .. } => "MemData",
        HammerKind::RespData { .. } => "RespData",
        HammerKind::RespAck { .. } => "RespAck",
        HammerKind::WbAck => "WbAck",
        HammerKind::WbNack => "WbNack",
    }
}

impl Component<Message> for HammerDirectory {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let violations_before = self.stats.protocol_violation;
        let addr = match &msg {
            Message::Hammer(h) => h.addr.as_u64(),
            _ => u64::MAX,
        };
        match msg {
            Message::Hammer(h) => {
                self.cover(h.addr, event_name(&h.kind));
                self.handle_request(from, h.addr, h.kind, ctx);
            }
            _ => {
                self.stats.protocol_violation += 1;
            }
        }
        if violations_before == 0 && self.stats.protocol_violation > 0 {
            ctx.flag_post_mortem(addr, format!("{}: first protocol violation", self.name));
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.gets"), self.stats.gets);
        out.add(format!("{n}.getms"), self.stats.getms);
        out.add(format!("{n}.puts"), self.stats.puts);
        out.add(format!("{n}.nacks"), self.stats.nacks);
        out.add(format!("{n}.mem_reads"), self.stats.mem_reads);
        out.add(format!("{n}.mem_writes"), self.stats.mem_writes);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        out.record_coverage(format!("hammer_dir/{n}"), &self.coverage);
        out.record_hist(format!("{n}.lat.busy"), &self.stats.lat_busy);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

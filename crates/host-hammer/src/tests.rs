//! Directed end-to-end tests of the Hammer protocol (cache + directory).

use xg_mem::Addr;
use xg_proto::{CoreKind, CoreMsg, Ctx, Message};
use xg_sim::{Component, Link, NodeId, SimBuilder};

use crate::{HammerCache, HammerConfig, HammerDirectory};

/// A passive core that records every response it receives.
pub(crate) struct TestCore {
    name: String,
    pub responses: Vec<CoreMsg>,
}

impl TestCore {
    pub fn new(name: impl Into<String>) -> Self {
        TestCore {
            name: name.into(),
            responses: Vec::new(),
        }
    }

    pub fn last_load_value(&self) -> Option<u64> {
        self.responses.iter().rev().find_map(|m| match m.kind {
            CoreKind::LoadResp { value } => Some(value),
            _ => None,
        })
    }
}

impl Component<Message> for TestCore {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        if let Message::Core(c) = msg {
            self.responses.push(c);
            ctx.note_progress();
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct System {
    sim: xg_proto::Sim,
    cores: Vec<NodeId>,
    caches: Vec<NodeId>,
    dir: NodeId,
    next_id: u64,
}

impl System {
    fn new(n: usize, cfg: HammerConfig, seed: u64) -> Self {
        let mut b = SimBuilder::new(seed);
        // Directory id is assigned after caches, so pre-compute it:
        // nodes are cores (0..n), caches (n..2n), dir (2n).
        let mut cores = Vec::new();
        let mut caches = Vec::new();
        for i in 0..n {
            cores.push(b.add(Box::new(TestCore::new(format!("core{i}")))));
        }
        let dir_id = NodeId::from_index(2 * n);
        for i in 0..n {
            caches.push(b.add(Box::new(HammerCache::new(
                format!("l2_{i}"),
                dir_id,
                cfg.clone(),
            ))));
        }
        let dir = b.add(Box::new(HammerDirectory::new("dir", caches.clone(), 20)));
        assert_eq!(dir, dir_id);
        b.default_link(Link::unordered(1, 12));
        for i in 0..n {
            b.link_bidi(cores[i], caches[i], Link::ordered(1, 1));
        }
        System {
            sim: b.build(),
            cores,
            caches,
            dir,
            next_id: 0,
        }
    }

    fn store(&mut self, core: usize, addr: u64, value: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.cores[core],
            self.caches[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Store { value },
            }
            .into(),
        );
        assert!(self.sim.run_to_quiescence(100_000).quiescent);
    }

    fn load(&mut self, core: usize, addr: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.cores[core],
            self.caches[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Load,
            }
            .into(),
        );
        assert!(self.sim.run_to_quiescence(100_000).quiescent);
        self.sim
            .get::<TestCore>(self.cores[core])
            .unwrap()
            .last_load_value()
            .expect("load response")
    }

    fn assert_clean(&self) {
        let report = self.sim.report();
        assert_eq!(report.sum_suffix(".protocol_violation"), 0);
        assert_eq!(report.sum_suffix(".unexpected_nack"), 0);
    }
}

#[test]
fn store_then_load_same_core() {
    let mut sys = System::new(2, HammerConfig::default(), 1);
    sys.store(0, 0x100, 77);
    assert_eq!(sys.load(0, 0x100), 77);
    sys.assert_clean();
}

#[test]
fn dirty_data_forwards_between_caches() {
    let mut sys = System::new(2, HammerConfig::default(), 2);
    sys.store(0, 0x200, 1234);
    // Core 1 reads the dirty data; owner supplies it (memory is stale).
    assert_eq!(sys.load(1, 0x200), 1234);
    let dir = sys.sim.get::<HammerDirectory>(sys.dir).unwrap();
    // The store never reached memory: only the owner has it.
    assert_eq!(dir.read_memory(Addr::new(0x200).block()).read_u64(0), 0);
    sys.assert_clean();
}

#[test]
fn upgrade_invalidates_sharers() {
    let mut sys = System::new(3, HammerConfig::default(), 3);
    sys.store(0, 0x300, 1);
    assert_eq!(sys.load(1, 0x300), 1);
    assert_eq!(sys.load(2, 0x300), 1);
    // Core 1 upgrades (S→M through GetM) and writes.
    sys.store(1, 0x300, 2);
    assert_eq!(sys.load(0, 0x300), 2);
    assert_eq!(sys.load(2, 0x300), 2);
    sys.assert_clean();
}

#[test]
fn exclusive_grant_on_unshared_read() {
    let mut sys = System::new(2, HammerConfig::default(), 4);
    assert_eq!(sys.load(0, 0x400), 0);
    // The read got E, so the following store is a silent upgrade: the
    // directory sees no GetM.
    sys.store(0, 0x400, 5);
    let report = sys.sim.report();
    assert_eq!(report.get("dir.getms"), 0);
    assert_eq!(sys.load(0, 0x400), 5);
    sys.assert_clean();
}

#[test]
fn shared_grant_when_another_reader_exists() {
    let mut sys = System::new(2, HammerConfig::default(), 5);
    assert_eq!(sys.load(0, 0x500), 0);
    assert_eq!(sys.load(1, 0x500), 0);
    // Core 1's store now requires a GetM (it only has S).
    sys.store(1, 0x500, 9);
    let report = sys.sim.report();
    assert!(report.get("dir.getms") >= 1);
    assert_eq!(sys.load(0, 0x500), 9);
    sys.assert_clean();
}

#[test]
fn eviction_writes_back_dirty_data() {
    let cfg = HammerConfig {
        sets: 1,
        ways: 1,
        ..HammerConfig::default()
    };
    let mut sys = System::new(1, cfg, 6);
    sys.store(0, 0x100, 11);
    // Different block, same (only) set: evicts and writes back 0x100.
    sys.store(0, 0x140, 22);
    let dir = sys.sim.get::<HammerDirectory>(sys.dir).unwrap();
    assert_eq!(dir.read_memory(Addr::new(0x100).block()).read_u64(0), 11);
    assert_eq!(sys.load(0, 0x100), 11);
    assert_eq!(sys.load(0, 0x140), 22);
    sys.assert_clean();
}

#[test]
fn silent_shared_eviction_produces_no_put() {
    let cfg = HammerConfig {
        sets: 1,
        ways: 1,
        ..HammerConfig::default()
    };
    let mut sys = System::new(2, cfg, 7);
    // Make 0x100 shared in cache 0 (cache 1 holds it too).
    sys.store(1, 0x100, 3);
    assert_eq!(sys.load(0, 0x100), 3);
    let puts_before = sys.sim.report().get("dir.puts");
    // Evict the shared block from cache 0 by loading another block.
    let _ = sys.load(0, 0x140);
    let report = sys.sim.report();
    assert_eq!(
        report.get("dir.puts"),
        puts_before,
        "S eviction must be silent"
    );
    assert!(report.sum_suffix(".silent_drops") >= 1);
    sys.assert_clean();
}

#[test]
fn many_cores_hammer_one_block() {
    let mut sys = System::new(4, HammerConfig::default(), 8);
    for round in 0..6u64 {
        let writer = (round % 4) as usize;
        sys.store(writer, 0x700, round + 1);
        for reader in 0..4 {
            assert_eq!(sys.load(reader, 0x700), round + 1, "round {round}");
        }
    }
    sys.assert_clean();
}

#[test]
fn concurrent_racing_ops_converge() {
    // Fire overlapping stores/loads from all cores without quiescing in
    // between; afterwards all cores must agree on the final value.
    let mut sys = System::new(4, HammerConfig::default(), 9);
    for i in 0..4 {
        let id = sys.next_id;
        sys.next_id += 1;
        sys.sim.post(
            sys.cores[i],
            sys.caches[i],
            CoreMsg {
                id,
                addr: Addr::new(0x800),
                kind: CoreKind::Store {
                    value: 100 + i as u64,
                },
            }
            .into(),
        );
    }
    assert!(sys.sim.run_to_quiescence(1_000_000).quiescent);
    let v = sys.load(0, 0x800);
    for core in 1..4 {
        assert_eq!(sys.load(core, 0x800), v);
    }
    assert!((100..104).contains(&v));
    sys.assert_clean();
}

#[test]
fn coverage_records_transients() {
    let mut sys = System::new(3, HammerConfig::default(), 10);
    for round in 0..8u64 {
        sys.store((round % 3) as usize, 0x900, round);
        let _ = sys.load(((round + 1) % 3) as usize, 0x900);
    }
    let report = sys.sim.report();
    let cov = report.coverage("hammer_cache/l2_0").unwrap();
    assert!(cov.contains("I", "Load") || cov.contains("I", "Store"));
    assert!(!cov.is_empty());
    let dir_cov = report.coverage("hammer_dir/dir").unwrap();
    assert!(dir_cov.contains("O_mem", "GetM") || dir_cov.contains("NO", "GetM"));
}

#[test]
fn mshr_pressure_stalls_but_completes() {
    let cfg = HammerConfig {
        sets: 2,
        ways: 1,
        mshr_entries: 1,
        ..HammerConfig::default()
    };
    let mut sys = System::new(1, cfg, 11);
    // Issue many concurrent misses to force MSHR stalls.
    for i in 0..8u64 {
        let id = sys.next_id;
        sys.next_id += 1;
        sys.sim.post(
            sys.cores[0],
            sys.caches[0],
            CoreMsg {
                id,
                addr: Addr::new(0x1000 + i * 64),
                kind: CoreKind::Store { value: i },
            }
            .into(),
        );
    }
    assert!(sys.sim.run_to_quiescence(1_000_000).quiescent);
    for i in 0..8u64 {
        assert_eq!(sys.load(0, 0x1000 + i * 64), i);
    }
    sys.assert_clean();
}

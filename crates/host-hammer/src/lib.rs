//! # xg-host-hammer — AMD-Hammer-like exclusive MOESI host protocol
//!
//! A broadcast-based MOESI protocol in the style of gem5's `MOESI_hammer`,
//! one of the two baseline host protocols of the Crossing Guard paper (§3).
//! Its defining features, all reproduced here:
//!
//! * **No sharer tracking.** The directory broadcasts a forward for every
//!   request to *every* peer cache; each peer responds to the requestor
//!   directly with either data or an ack, and the requestor must count the
//!   responses (the complexity the Crossing Guard interface hides from
//!   accelerators, §2.4).
//! * **Owned (O) state.** An owner answers reads with data while memory
//!   stays stale.
//! * **Two-phase writebacks.** `Put` → `WbAck`/`WbNack` → `WbData`, racing
//!   against forwards; caches need `WB`/`WB_I` transient states.
//! * **Silent eviction of shared blocks.** No `PutS` exists; Crossing Guard
//!   therefore suppresses accelerator `PutS` messages for this host (§2.1).
//!
//! One deliberate strengthening relative to gem5 (noted in `DESIGN.md`): the
//! directory tracks the *identity* of the owner, not just its existence.
//! The paper itself points at this option ("the directory maintains owner
//! information, which allows the host to determine if a Put is erroneous").
//! It is what lets the directory `WbNack` a racing or bogus `Put`.
//!
//! ## Host modifications for Transactional Crossing Guard (paper §3.2.1)
//!
//! All three published modifications are implemented, each toggleable via
//! [`HammerConfig`] so the ablation experiments can measure the unmodified
//! baseline:
//!
//! 1. a non-upgradable `GetSOnly` request (plus `FwdGetSOnly`),
//! 2. caches *sink* unexpected `WbNack`s and count an error instead of
//!    treating them as protocol violations ([`HammerConfig::sink_nacks`]),
//! 3. requestors count *responses* rather than asserting exactly one data
//!    message ([`HammerConfig::strict_data`] off).
//!
//! ## Transition summary (cache controller)
//!
//! Stable states `M O E S I`; transients `IS ISO IM SM OM WB WB_I`.
//! See [`cache`] for the full matrix.

#![forbid(unsafe_code)]

pub mod cache;
pub mod directory;

#[cfg(test)]
mod tests;

pub use cache::{HammerCache, HammerConfig};
pub use directory::HammerDirectory;

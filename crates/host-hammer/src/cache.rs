//! The Hammer cache controller (combined private L1/L2, as in gem5).
//!
//! ## Transition matrix
//!
//! Stable states: `M` (modified, owner), `O` (owned, shared+responsible),
//! `E` (clean exclusive, owner), `S` (shared), `I` (invalid/absent).
//! Transients: `IS`/`ISO`/`IM` (requesting, no prior copy), `SM`/`OM`
//! (upgrading while holding a copy), `WB` (writeback pending),
//! `WB_I` (writeback pending, ownership already handed to a racing
//! requestor).
//!
//! | state | Load | Store | Repl | FwdGetS(Only) | FwdGetM | MemData/Resp* | WbAck | WbNack |
//! |-------|------|-------|------|----------------|---------|----------------|-------|--------|
//! | M     | hit  | hit   | Put/WB | Data(keep)/O | Data(xfer)/I | —        | —     | —      |
//! | O     | hit  | GetM/OM | Put/WB | Data(keep)/O | Data(xfer)/I | —      | —     | —      |
//! | E     | hit  | hit/M | Put/WB | Data(keep)/O | Data(xfer)/I | —        | —     | —      |
//! | S     | hit  | GetM/SM | silent/I | Ack(had)/S | Ack(had)/I | —        | —     | —      |
//! | I     | GetS/IS | GetM/IM | — | Ack/I        | Ack/I    | —             | —     | —      |
//! | IS,ISO,IM | queue | queue | — | Ack/·        | Ack/·    | collect; done→stable | — | — |
//! | SM    | hit  | queue | —   | Ack(had)/SM    | Ack(had)/IM | collect    | —     | —      |
//! | OM    | hit  | queue | —   | Data(keep)/OM  | Data(xfer)/IM | collect | —     | —      |
//! | WB    | queue | queue | —  | Data(keep)/WB or Data(xfer)/WB_I | Data(xfer)/WB_I | — | WbData/I | sink†/I |
//! | WB_I  | queue | queue | —  | Ack/WB_I       | Ack/WB_I | —             | —     | /I     |
//!
//! † An unexpected `WbNack` in `WB` is impossible among trusted caches; it
//! can be provoked by an erroneous accelerator `Put` reaching the directory
//! (paper §3.2.1). With [`HammerConfig::sink_nacks`] the cache sinks it and
//! counts `unexpected_nack`; otherwise it counts a `protocol_violation`
//! (the unmodified-baseline behavior the ablation measures).
//!
//! This is exactly the complexity budget the paper quotes for a host
//! private cache — four host requests, seven host responses, and transient
//! bookkeeping with dirty bits and response counters — against which the
//! five-state accelerator cache of Table 1 is compared.

use std::collections::HashMap;

use xg_mem::{BlockAddr, DataBlock, Mshr, Replacement, SetAssocCache};
use xg_proto::{CoreKind, CoreMsg, Ctx, HammerKind, HammerMsg, HomeMap, Message};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

/// Configuration for a [`HammerCache`].
#[derive(Debug, Clone)]
pub struct HammerConfig {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Maximum simultaneous transactions.
    pub mshr_entries: usize,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Seed for random replacement.
    pub seed: u64,
    /// Baseline ack-counting behavior: receiving more than one data
    /// response for a transaction is a protocol violation. Turn **off** for
    /// the Transactional-Crossing-Guard host modification that counts
    /// responses and tolerates zero or multiple data copies (paper §3.2.1).
    pub strict_data: bool,
    /// Host modification: sink unexpected `WbNack`s (count them) instead of
    /// flagging a protocol violation.
    pub sink_nacks: bool,
}

impl Default for HammerConfig {
    fn default() -> Self {
        HammerConfig {
            sets: 64,
            ways: 8,
            mshr_entries: 16,
            replacement: Replacement::Lru,
            seed: 0,
            strict_data: false,
            sink_nacks: true,
        }
    }
}

/// Stable states of a resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HState {
    M,
    O,
    E,
    S,
}

impl HState {
    fn name(self) -> &'static str {
        match self {
            HState::M => "M",
            HState::O => "O",
            HState::E => "E",
            HState::S => "S",
        }
    }

    fn is_owner(self) -> bool {
        matches!(self, HState::M | HState::O | HState::E)
    }
}

#[derive(Debug, Clone)]
struct Line {
    state: HState,
    dirty: bool,
    data: DataBlock,
}

/// What kind of Get a transaction is performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GetKind {
    S,
    SOnly,
    M,
}

/// A copy retained while upgrading (SM/OM states).
#[derive(Debug, Clone)]
struct LocalCopy {
    state: HState,
    dirty: bool,
    data: DataBlock,
}

#[derive(Debug, Clone)]
enum Txn {
    Get {
        kind: GetKind,
        peers_expected: Option<u32>,
        resps: u32,
        mem_data: Option<DataBlock>,
        peer_data: Option<(DataBlock, bool, bool)>, // (data, dirty, owner_keeps_copy)
        data_msgs: u32,
        had_copy: bool,
        local: Option<LocalCopy>,
        lost_local: bool,
        waiting: Vec<(NodeId, CoreMsg)>,
    },
    Wb {
        data: DataBlock,
        dirty: bool,
        invalidated: bool,
        waiting: Vec<(NodeId, CoreMsg)>,
    },
}

impl Txn {
    fn waiting_mut(&mut self) -> &mut Vec<(NodeId, CoreMsg)> {
        match self {
            Txn::Get { waiting, .. } | Txn::Wb { waiting, .. } => waiting,
        }
    }

    fn state_name(&self) -> &'static str {
        match self {
            Txn::Get {
                kind, local: None, ..
            } => match kind {
                GetKind::S => "IS",
                GetKind::SOnly => "ISO",
                GetKind::M => "IM",
            },
            Txn::Get { local: Some(l), .. } => {
                if l.state.is_owner() {
                    "OM"
                } else {
                    "SM"
                }
            }
            Txn::Wb {
                invalidated: false, ..
            } => "WB",
            Txn::Wb {
                invalidated: true, ..
            } => "WB_I",
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Stats {
    violation_reasons: std::collections::BTreeMap<&'static str, u64>,
    loads: u64,
    stores: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    silent_drops: u64,
    mshr_stalls: u64,
    unexpected_nack: u64,
    protocol_violation: u64,
    multi_data: u64,
    /// Cycles a Get transaction stayed open in the MSHR.
    lat_miss: Histogram,
    /// MSHR population, sampled at each new allocation.
    mshr_occupancy: Histogram,
}

/// A private Hammer-protocol cache serving one core's loads and stores.
///
/// Also used directly as the *accelerator-side cache* of configuration (a)
/// in Figure 2 — an accelerator that speaks the raw host protocol — and, on
/// the host side of the chip, as the *host-side cache* of configuration (b).
pub struct HammerCache {
    name: String,
    dir: HomeMap,
    cfg: HammerConfig,
    cache: SetAssocCache<Line>,
    mshr: Mshr<Txn>,
    /// Open times of in-flight MSHR transactions, for latency histograms.
    txn_started: HashMap<BlockAddr, Cycle>,
    stats: Stats,
    coverage: CoverageSet,
}

impl HammerCache {
    /// Creates a cache that sends its protocol requests to directory `dir`
    /// (a single node, or a [`HomeMap`] of address-interleaved banks).
    pub fn new(name: impl Into<String>, dir: impl Into<HomeMap>, cfg: HammerConfig) -> Self {
        HammerCache {
            name: name.into(),
            dir: dir.into(),
            cache: SetAssocCache::new(cfg.sets, cfg.ways, cfg.replacement, cfg.seed),
            mshr: Mshr::new(cfg.mshr_entries),
            txn_started: HashMap::new(),
            cfg,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
        }
    }

    /// Number of protocol violations observed (impossible events). Zero in
    /// any correctly-assembled system; nonzero when the unmodified baseline
    /// faces a misbehaving accelerator.
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    /// Number of unexpected `WbNack`s sunk (the §3.2.1 host-mod counter).
    pub fn unexpected_nacks(&self) -> u64 {
        self.stats.unexpected_nack
    }

    fn state_name(&self, addr: BlockAddr) -> &'static str {
        if let Some(line) = self.cache.get(addr) {
            line.state.name()
        } else if let Some(txn) = self.mshr.get(addr) {
            txn.state_name()
        } else {
            "I"
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.state_name(addr);
        self.coverage.visit(state, event);
    }

    fn violation(&mut self, why: &'static str) {
        self.stats.protocol_violation += 1;
        *self.stats.violation_reasons.entry(why).or_insert(0) += 1;
    }

    // ----- core-side ------------------------------------------------------

    fn handle_core(&mut self, from: NodeId, msg: CoreMsg, ctx: &mut Ctx<'_>) {
        let addr = msg.addr.block();
        let offset = msg.addr.block_offset() & !7;
        match msg.kind {
            CoreKind::Load => {
                self.cover(addr, "Load");
                self.stats.loads += 1;
            }
            CoreKind::Store { .. } => {
                self.cover(addr, "Store");
                self.stats.stores += 1;
            }
            CoreKind::Flush => {
                // Hardware coherence makes flushes unnecessary on the host
                // side; acknowledge immediately.
                ctx.send(
                    from,
                    CoreMsg {
                        id: msg.id,
                        addr: msg.addr,
                        kind: CoreKind::FlushResp,
                    }
                    .into(),
                );
                return;
            }
            _ => {
                self.violation("core sent a response kind");
                return;
            }
        }

        if let Some(txn) = self.mshr.get_mut(addr) {
            txn.waiting_mut().push((from, msg));
            return;
        }

        match msg.kind {
            CoreKind::Load => {
                if let Some(line) = self.cache.get_mut(addr) {
                    self.stats.hits += 1;
                    let value = line.data.read_u64(offset);
                    ctx.send(
                        from,
                        CoreMsg {
                            id: msg.id,
                            addr: msg.addr,
                            kind: CoreKind::LoadResp { value },
                        }
                        .into(),
                    );
                } else {
                    self.stats.misses += 1;
                    self.start_get(GetKind::S, addr, None, (from, msg), ctx);
                }
            }
            CoreKind::Store { value } => {
                let line_state = self.cache.get(addr).map(|l| l.state);
                match line_state {
                    Some(HState::M) | Some(HState::E) => {
                        self.stats.hits += 1;
                        let line = self.cache.get_mut(addr).expect("line present");
                        line.data.write_u64(offset, value);
                        line.dirty = true;
                        line.state = HState::M; // silent E→M upgrade
                        ctx.send(
                            from,
                            CoreMsg {
                                id: msg.id,
                                addr: msg.addr,
                                kind: CoreKind::StoreResp,
                            }
                            .into(),
                        );
                    }
                    Some(HState::O) | Some(HState::S) => {
                        // Upgrade required; keep the copy in the transaction.
                        self.stats.misses += 1;
                        let line = self.cache.remove(addr).expect("line present");
                        let local = LocalCopy {
                            state: line.state,
                            dirty: line.dirty,
                            data: line.data,
                        };
                        self.start_get(GetKind::M, addr, Some(local), (from, msg), ctx);
                    }
                    None => {
                        self.stats.misses += 1;
                        self.start_get(GetKind::M, addr, None, (from, msg), ctx);
                    }
                }
            }
            _ => unreachable!("filtered above"),
        }
    }

    fn start_get(
        &mut self,
        kind: GetKind,
        addr: BlockAddr,
        local: Option<LocalCopy>,
        op: (NodeId, CoreMsg),
        ctx: &mut Ctx<'_>,
    ) {
        if self.mshr.len() >= self.mshr.capacity() {
            // All MSHRs busy: reinstall any copy we pulled out, and retry
            // the core op a little later.
            self.stats.mshr_stalls += 1;
            if let Some(copy) = local {
                self.cache.insert(
                    addr,
                    Line {
                        state: copy.state,
                        dirty: copy.dirty,
                        data: copy.data,
                    },
                );
            }
            let (from, msg) = op;
            ctx.redeliver(from, msg.into(), 8);
            return;
        }
        let txn = Txn::Get {
            kind,
            peers_expected: None,
            resps: 0,
            mem_data: None,
            peer_data: None,
            data_msgs: 0,
            had_copy: false,
            local,
            lost_local: false,
            waiting: vec![op],
        };
        self.mshr.alloc(addr, txn).expect("capacity checked above");
        self.txn_started.insert(addr, ctx.now());
        self.stats.mshr_occupancy.record(self.mshr.len() as u64);
        let req = match kind {
            GetKind::S => HammerKind::GetS,
            GetKind::SOnly => HammerKind::GetSOnly,
            GetKind::M => HammerKind::GetM,
        };
        ctx.send(self.dir.for_block(addr), HammerMsg::new(addr, req).into());
    }

    // ----- network-side ---------------------------------------------------

    fn handle_hammer(&mut self, from: NodeId, msg: HammerMsg, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        match msg.kind {
            HammerKind::FwdGetS { requestor, .. } => {
                self.cover(addr, "FwdGetS");
                self.handle_fwd(addr, requestor, FwdKind::GetS, ctx);
            }
            HammerKind::FwdGetSOnly { requestor, .. } => {
                self.cover(addr, "FwdGetSOnly");
                self.handle_fwd(addr, requestor, FwdKind::GetSOnly, ctx);
            }
            HammerKind::FwdGetM { requestor, .. } => {
                self.cover(addr, "FwdGetM");
                self.handle_fwd(addr, requestor, FwdKind::GetM, ctx);
            }
            HammerKind::MemData { data, peers } => {
                self.cover(addr, "MemData");
                let done = match self.mshr.get_mut(addr) {
                    Some(Txn::Get {
                        peers_expected,
                        mem_data,
                        ..
                    }) => {
                        *peers_expected = Some(peers);
                        *mem_data = Some(data);
                        true
                    }
                    _ => false,
                };
                if done {
                    self.try_complete_get(addr, ctx);
                } else {
                    self.violation("MemData without transaction");
                }
            }
            HammerKind::RespData {
                data,
                dirty,
                owner_keeps_copy,
            } => {
                self.cover(addr, "RespData");
                let mut ok = false;
                if let Some(Txn::Get {
                    resps,
                    peer_data,
                    data_msgs,
                    ..
                }) = self.mshr.get_mut(addr)
                {
                    *resps += 1;
                    *data_msgs += 1;
                    let multiple = peer_data.is_some();
                    if multiple {
                        self.stats.multi_data += 1;
                        if self.cfg.strict_data {
                            self.stats.protocol_violation += 1;
                            *self
                                .stats
                                .violation_reasons
                                .entry("multiple data responses")
                                .or_insert(0) += 1;
                        }
                    }
                    // Prefer dirty data; otherwise first writer wins.
                    let replace = match peer_data {
                        None => true,
                        Some((_, old_dirty, _)) => dirty && !*old_dirty,
                    };
                    if replace {
                        *peer_data = Some((data, dirty, owner_keeps_copy));
                    }
                    ok = true;
                }
                if ok {
                    self.try_complete_get(addr, ctx);
                } else {
                    self.violation("RespData without transaction");
                }
            }
            HammerKind::RespAck { had_copy } => {
                self.cover(addr, "RespAck");
                let mut ok = false;
                if let Some(Txn::Get {
                    resps,
                    had_copy: hc,
                    ..
                }) = self.mshr.get_mut(addr)
                {
                    *resps += 1;
                    *hc |= had_copy;
                    ok = true;
                }
                if ok {
                    self.try_complete_get(addr, ctx);
                } else {
                    self.violation("RespAck without transaction");
                }
            }
            HammerKind::WbAck => {
                self.cover(addr, "WbAck");
                match self.mshr.remove(addr) {
                    Some(Txn::Wb {
                        data,
                        dirty,
                        waiting,
                        ..
                    }) => {
                        self.stats.writebacks += 1;
                        ctx.send(
                            self.dir.for_block(addr),
                            HammerMsg::new(addr, HammerKind::WbData { data, dirty }).into(),
                        );
                        self.drain_waiting(waiting, ctx);
                    }
                    other => {
                        self.restore_txn(addr, other);
                        self.violation("WbAck without writeback");
                    }
                }
            }
            HammerKind::WbNack => {
                self.cover(addr, "WbNack");
                match self.mshr.remove(addr) {
                    Some(Txn::Wb {
                        invalidated,
                        waiting,
                        ..
                    }) => {
                        if !invalidated {
                            if self.cfg.sink_nacks {
                                self.stats.unexpected_nack += 1;
                            } else {
                                self.stats.protocol_violation += 1;
                                *self
                                    .stats
                                    .violation_reasons
                                    .entry("unexpected WbNack")
                                    .or_insert(0) += 1;
                            }
                        }
                        self.drain_waiting(waiting, ctx);
                    }
                    other => {
                        self.restore_txn(addr, other);
                        self.violation("WbNack without writeback");
                    }
                }
            }
            // Requests only a directory should receive.
            HammerKind::GetS
            | HammerKind::GetSOnly
            | HammerKind::GetM
            | HammerKind::Put
            | HammerKind::WbData { .. }
            | HammerKind::Unblock { .. } => {
                self.violation("request kind delivered to a cache");
            }
        }
        let _ = from;
    }

    fn restore_txn(&mut self, addr: BlockAddr, txn: Option<Txn>) {
        if let Some(txn) = txn {
            self.mshr.alloc(addr, txn).expect("slot was just freed");
        }
    }

    fn handle_fwd(&mut self, addr: BlockAddr, requestor: NodeId, fwd: FwdKind, ctx: &mut Ctx<'_>) {
        // Resident stable line?
        if let Some(line) = self.cache.get(addr) {
            let (state, dirty, data) = (line.state, line.dirty, line.data);
            match (state, fwd) {
                (HState::M | HState::O | HState::E, FwdKind::GetS | FwdKind::GetSOnly) => {
                    ctx.send(
                        requestor,
                        HammerMsg::new(
                            addr,
                            HammerKind::RespData {
                                data,
                                dirty,
                                owner_keeps_copy: true,
                            },
                        )
                        .into(),
                    );
                    let line = self.cache.get_mut(addr).expect("line present");
                    line.state = HState::O;
                }
                (HState::M | HState::O | HState::E, FwdKind::GetM) => {
                    ctx.send(
                        requestor,
                        HammerMsg::new(
                            addr,
                            HammerKind::RespData {
                                data,
                                dirty,
                                owner_keeps_copy: false,
                            },
                        )
                        .into(),
                    );
                    self.cache.remove(addr);
                }
                (HState::S, FwdKind::GetS | FwdKind::GetSOnly) => {
                    self.send_ack(requestor, addr, true, ctx);
                }
                (HState::S, FwdKind::GetM) => {
                    self.send_ack(requestor, addr, true, ctx);
                    self.cache.remove(addr);
                }
            }
            return;
        }
        // In-flight transaction?
        let mut ack_had_copy: Option<bool> = None;
        let mut resp_data: Option<(DataBlock, bool, bool)> = None;
        match self.mshr.get_mut(addr) {
            Some(Txn::Get {
                local, lost_local, ..
            }) => match local {
                Some(copy) if copy.state.is_owner() => match fwd {
                    FwdKind::GetS | FwdKind::GetSOnly => {
                        resp_data = Some((copy.data, copy.dirty, true));
                    }
                    FwdKind::GetM => {
                        resp_data = Some((copy.data, copy.dirty, false));
                        *local = None;
                        *lost_local = true;
                    }
                },
                Some(_) => {
                    // Shared copy retained during an upgrade (SM).
                    ack_had_copy = Some(true);
                    if fwd == FwdKind::GetM {
                        *local = None;
                        *lost_local = true;
                    }
                }
                None => ack_had_copy = Some(false),
            },
            Some(Txn::Wb {
                data,
                dirty,
                invalidated,
                ..
            }) => {
                if *invalidated {
                    ack_had_copy = Some(false);
                } else {
                    match fwd {
                        FwdKind::GetSOnly => {
                            // Keep ownership so memory still gets our data.
                            resp_data = Some((*data, *dirty, true));
                        }
                        FwdKind::GetS | FwdKind::GetM => {
                            resp_data = Some((*data, *dirty, false));
                            *invalidated = true;
                        }
                    }
                }
            }
            None => ack_had_copy = Some(false),
        }
        if let Some((data, dirty, owner_keeps_copy)) = resp_data {
            ctx.send(
                requestor,
                HammerMsg::new(
                    addr,
                    HammerKind::RespData {
                        data,
                        dirty,
                        owner_keeps_copy,
                    },
                )
                .into(),
            );
        } else if let Some(had_copy) = ack_had_copy {
            self.send_ack(requestor, addr, had_copy, ctx);
        }
    }

    fn send_ack(&mut self, requestor: NodeId, addr: BlockAddr, had_copy: bool, ctx: &mut Ctx<'_>) {
        ctx.send(
            requestor,
            HammerMsg::new(addr, HammerKind::RespAck { had_copy }).into(),
        );
    }

    fn try_complete_get(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        let ready = matches!(
            self.mshr.get(addr),
            Some(Txn::Get {
                peers_expected: Some(p),
                resps,
                mem_data: Some(_),
                ..
            }) if resps >= p
        );
        if !ready {
            return;
        }
        let Some(Txn::Get {
            kind,
            mem_data,
            peer_data,
            had_copy,
            local,
            lost_local,
            waiting,
            ..
        }) = self.mshr.remove(addr)
        else {
            unreachable!("checked above");
        };
        if let Some(started) = self.txn_started.remove(&addr) {
            self.stats
                .lat_miss
                .record(ctx.now().saturating_since(started));
            ctx.span(addr.as_u64(), "miss", started);
        }

        let mem = mem_data.expect("checked above");
        let (state, dirty, data) = match kind {
            GetKind::M => {
                let (data, dirty) = if let Some((d, dirty, _)) = peer_data {
                    (d, dirty)
                } else if let (Some(copy), false) = (&local, lost_local) {
                    (copy.data, copy.dirty)
                } else {
                    (mem, false)
                };
                (HState::M, dirty, data)
            }
            GetKind::S | GetKind::SOnly => {
                if let Some((d, dirty, keeps)) = peer_data {
                    if keeps || kind == GetKind::SOnly {
                        (HState::S, false, d)
                    } else if dirty {
                        (HState::M, true, d)
                    } else {
                        (HState::E, false, d)
                    }
                } else if had_copy || kind == GetKind::SOnly {
                    (HState::S, false, mem)
                } else {
                    (HState::E, false, mem)
                }
            }
        };

        let new_owner = state.is_owner();
        self.install_line(addr, Line { state, dirty, data }, ctx);
        ctx.send(
            self.dir.for_block(addr),
            HammerMsg::new(addr, HammerKind::Unblock { new_owner }).into(),
        );
        ctx.note_progress();
        self.drain_waiting(waiting, ctx);
    }

    /// Inserts a finished line, evicting (and writing back) a victim if the
    /// set is full. Capacity is reclaimed at fill time, which is when the
    /// conflict actually materializes.
    fn install_line(&mut self, addr: BlockAddr, line: Line, ctx: &mut Ctx<'_>) {
        if let Some((victim_addr, victim)) = self.cache.take_victim(addr) {
            self.start_writeback(victim_addr, victim, ctx);
        }
        let evicted = self.cache.insert(addr, line);
        debug_assert!(evicted.is_none(), "victim should have been taken first");
    }

    fn start_writeback(&mut self, addr: BlockAddr, line: Line, ctx: &mut Ctx<'_>) {
        self.cover(addr, "Repl");
        match line.state {
            HState::S => {
                // Hammer evicts shared blocks silently.
                self.stats.silent_drops += 1;
            }
            HState::M | HState::O | HState::E => {
                let txn = Txn::Wb {
                    data: line.data,
                    dirty: line.dirty,
                    invalidated: false,
                    waiting: Vec::new(),
                };
                if self.mshr.alloc(addr, txn).is_ok() {
                    self.txn_started.insert(addr, ctx.now());
                    self.stats.mshr_occupancy.record(self.mshr.len() as u64);
                    ctx.send(
                        self.dir.for_block(addr),
                        HammerMsg::new(addr, HammerKind::Put).into(),
                    );
                } else {
                    // No MSHR for the victim: reinstall it and evict nothing.
                    // The fill below will replace a different way next time.
                    self.stats.mshr_stalls += 1;
                    self.cache.insert(addr, line);
                }
            }
        }
    }

    fn drain_waiting(&mut self, waiting: Vec<(NodeId, CoreMsg)>, ctx: &mut Ctx<'_>) {
        for (from, msg) in waiting {
            self.handle_core(from, msg, ctx);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FwdKind {
    GetS,
    GetSOnly,
    GetM,
}

impl Component<Message> for HammerCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let violations_before = self.stats.protocol_violation;
        let addr = match &msg {
            Message::Hammer(h) => h.addr.as_u64(),
            _ => u64::MAX,
        };
        match msg {
            Message::Core(c) => self.handle_core(from, c, ctx),
            Message::Hammer(h) => self.handle_hammer(from, h, ctx),
            _ => self.violation("foreign protocol message"),
        }
        // The first impossible event is the symptom worth dissecting; flag
        // it so a traced replay dumps this block's history.
        if violations_before == 0 && self.stats.protocol_violation > 0 {
            ctx.flag_post_mortem(addr, format!("{}: first protocol violation", self.name));
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.loads"), self.stats.loads);
        out.add(format!("{n}.stores"), self.stats.stores);
        out.add(format!("{n}.hits"), self.stats.hits);
        out.add(format!("{n}.misses"), self.stats.misses);
        out.add(format!("{n}.writebacks"), self.stats.writebacks);
        out.add(format!("{n}.silent_drops"), self.stats.silent_drops);
        out.add(format!("{n}.mshr_stalls"), self.stats.mshr_stalls);
        out.add(format!("{n}.unexpected_nack"), self.stats.unexpected_nack);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        for (why, count) in &self.stats.violation_reasons {
            out.add(format!("{n}.violation[{why}]"), *count);
        }
        out.add(format!("{n}.multi_data"), self.stats.multi_data);
        out.record_coverage(format!("hammer_cache/{n}"), &self.coverage);
        out.record_hist(format!("{n}.lat.miss"), &self.stats.lat_miss);
        out.record_hist(format!("{n}.mshr_occupancy"), &self.stats.mshr_occupancy);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

//! The shared, inclusive MESI L2 with embedded directory and memory.
//!
//! Per block the L2 keeps data, a dirty bit, the exact sharer set, and the
//! owner (an L1 holding E/M). Multi-message flows serialize per block:
//!
//! * **Fetch**: miss → memory read (latency via timer) → grant. If the fill
//!   needs a way, a *recall* of an unpinned victim runs first, pulling the
//!   block back from every L1 above (inclusivity).
//! * **FwdGetS**: owner downgrades and supplies data; the L2 stays busy
//!   until the owner's `OwnerWb` refreshes its copy.
//! * **GetM with sharers**: the L2 replies `DataM { acks }` and sends each
//!   sharer an `Inv` naming the requestor; sharers ack the requestor
//!   directly and the L2 does not block — the requestor-side counting is
//!   exactly the complexity Crossing Guard shields accelerators from.
//!
//! The §3.2.2 host modification ([`MesiL2Config::ack_data_interchange`]):
//! when an unexpected `OwnerWb` arrives from a node that was just sent an
//! `Inv` on behalf of requestor `R` (a buggy accelerator answered `Inv`
//! with data), the modified L2 acks `R` itself so `R`'s ack count still
//! converges. The unmodified baseline counts a protocol violation instead
//! (and `R` hangs — which the fuzz ablation demonstrates).

use std::collections::{BTreeSet, HashMap, VecDeque};

use xg_mem::{BlockAddr, DataBlock, Replacement, SetAssocCache};
use xg_proto::{Ctx, MesiKind, MesiMsg, Message};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

/// Configuration for a [`MesiL2`].
#[derive(Debug, Clone)]
pub struct MesiL2Config {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles for a memory fetch.
    pub mem_latency: u64,
    /// Replacement policy for L2 victims.
    pub replacement: Replacement,
    /// Seed for random replacement.
    pub seed: u64,
    /// §3.2.2 host modification: treat data and acks as interchangeable
    /// responses to a forward, acking the requestor on the sender's behalf.
    pub ack_data_interchange: bool,
}

impl Default for MesiL2Config {
    fn default() -> Self {
        MesiL2Config {
            sets: 256,
            ways: 8,
            mem_latency: 80,
            replacement: Replacement::Lru,
            seed: 0,
            ack_data_interchange: true,
        }
    }
}

/// Directory + data state for one resident block.
#[derive(Debug, Clone)]
struct L2Line {
    data: DataBlock,
    dirty: bool,
    sharers: BTreeSet<NodeId>,
    owner: Option<NodeId>,
    /// Requestor of the most recent sharer-invalidation round, kept so the
    /// modified L2 can ack on behalf of a misbehaving responder (§3.2.2).
    inv_debt: Option<NodeId>,
}

impl L2Line {
    fn fresh(data: DataBlock) -> Self {
        L2Line {
            data,
            dirty: false,
            sharers: BTreeSet::new(),
            owner: None,
            inv_debt: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GetKind {
    S,
    SOnly,
    M,
}

#[derive(Debug)]
enum Busy {
    /// Memory fetch in flight for `requestor`.
    Fetch { requestor: NodeId, kind: GetKind },
    /// Fetched data waiting for a way to free up (victim recall running).
    InstallWait {
        requestor: NodeId,
        kind: GetKind,
        data: DataBlock,
    },
    /// Waiting for the owner's `OwnerWb` after a FwdGetS.
    FwdS { owner: NodeId, requestor: NodeId },
    /// Inclusive eviction: waiting for `pending` recall responses; the line
    /// has already been removed from the array into here.
    Recall { pending: u32, line: L2Line },
}

#[derive(Debug, Default)]
struct Stats {
    violation_reasons: std::collections::BTreeMap<&'static str, u64>,
    redundant_getms: u64,
    gets: u64,
    getms: u64,
    puts: u64,
    put_s: u64,
    nacks: u64,
    mem_reads: u64,
    mem_writes: u64,
    recalls: u64,
    fwd_gets: u64,
    inv_rounds: u64,
    mod_acks_on_behalf: u64,
    demoted_puts: u64,
    install_retries: u64,
    protocol_violation: u64,
    /// Cycles each busy (transient) entry stayed open.
    lat_busy: Histogram,
    /// Busy-table population, sampled at each new allocation.
    mshr_occupancy: Histogram,
}

/// The shared inclusive L2 + directory + memory controller.
pub struct MesiL2 {
    name: String,
    cfg: MesiL2Config,
    array: SetAssocCache<L2Line>,
    busy: HashMap<BlockAddr, Busy>,
    /// Open times of busy entries, for the `lat.busy` histogram.
    busy_since: HashMap<BlockAddr, Cycle>,
    queues: HashMap<BlockAddr, VecDeque<(NodeId, MesiKind)>>,
    memory: HashMap<BlockAddr, DataBlock>,
    stats: Stats,
    coverage: CoverageSet,
}

impl MesiL2 {
    /// Creates the shared L2.
    pub fn new(name: impl Into<String>, cfg: MesiL2Config) -> Self {
        MesiL2 {
            name: name.into(),
            array: SetAssocCache::new(cfg.sets, cfg.ways, cfg.replacement, cfg.seed),
            busy: HashMap::new(),
            busy_since: HashMap::new(),
            queues: HashMap::new(),
            memory: HashMap::new(),
            cfg,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
        }
    }

    /// Pre-loads memory contents (tests / workload setup).
    pub fn write_memory(&mut self, addr: BlockAddr, data: DataBlock) {
        self.memory.insert(addr, data);
    }

    /// Reads memory contents (zero if never written).
    pub fn read_memory(&self, addr: BlockAddr) -> DataBlock {
        self.memory.get(&addr).copied().unwrap_or_default()
    }

    /// Number of impossible events observed (zero among trusted parts, and
    /// — with the host modification on — zero even with a buggy
    /// accelerator behind a Transactional Crossing Guard).
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    /// Times the modified L2 acked a requestor on a misbehaving responder's
    /// behalf (the §3.2.2 counter).
    pub fn acks_on_behalf(&self) -> u64 {
        self.stats.mod_acks_on_behalf
    }

    fn state_name(&self, addr: BlockAddr) -> &'static str {
        if let Some(b) = self.busy.get(&addr) {
            match b {
                Busy::Fetch { .. } => "Busy_Fetch",
                Busy::InstallWait { .. } => "Busy_Install",
                Busy::FwdS { .. } => "Busy_FwdS",
                Busy::Recall { .. } => "Busy_Recall",
            }
        } else if let Some(line) = self.array.get(addr) {
            if line.owner.is_some() {
                "Owned"
            } else if line.sharers.is_empty() {
                "Present"
            } else {
                "Shared"
            }
        } else {
            "NP"
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.state_name(addr);
        self.coverage.visit(state, event);
    }

    fn violation(&mut self, why: &'static str) {
        self.stats.protocol_violation += 1;
        *self.stats.violation_reasons.entry(why).or_insert(0) += 1;
    }

    /// Marks the start of a transient (busy) episode for `addr`.
    fn busy_opened(&mut self, addr: BlockAddr, now: Cycle) {
        self.busy_since.entry(addr).or_insert(now);
        self.stats.mshr_occupancy.record(self.busy.len() as u64);
    }

    /// Marks the end of a transient episode, recording its duration.
    fn busy_closed(&mut self, addr: BlockAddr, now: Cycle) {
        if let Some(since) = self.busy_since.remove(&addr) {
            self.stats.lat_busy.record(now.saturating_since(since));
        }
    }

    fn handle_mesi(&mut self, from: NodeId, addr: BlockAddr, kind: MesiKind, ctx: &mut Ctx<'_>) {
        ctx.trace(addr.as_u64(), "mesi-l2", "Recv", || {
            format!("{kind:?} from {from} (state {})", self.state_name(addr))
        });
        // Responses to our own recalls bypass the queue.
        match kind {
            MesiKind::RecallData { data, dirty } => {
                self.recall_response(addr, Some((data, dirty)), ctx);
                return;
            }
            MesiKind::InvAck => {
                self.recall_response(addr, None, ctx);
                return;
            }
            MesiKind::OwnerWb { data, dirty } => {
                self.handle_owner_wb(from, addr, data, dirty, ctx);
                return;
            }
            _ => {}
        }
        if self.busy.contains_key(&addr) {
            self.queues.entry(addr).or_default().push_back((from, kind));
            return;
        }
        self.process(from, addr, kind, ctx);
    }

    fn process(&mut self, from: NodeId, addr: BlockAddr, kind: MesiKind, ctx: &mut Ctx<'_>) {
        match kind {
            MesiKind::GetS => self.process_get(from, addr, GetKind::S, ctx),
            MesiKind::GetSOnly => self.process_get(from, addr, GetKind::SOnly, ctx),
            MesiKind::GetM => self.process_get(from, addr, GetKind::M, ctx),
            MesiKind::PutS => self.process_put(from, addr, None, false, ctx),
            MesiKind::PutE { data } => self.process_put(from, addr, Some(data), false, ctx),
            MesiKind::PutM { data } => self.process_put(from, addr, Some(data), true, ctx),
            _ => self.violation("unexpected kind at L2"),
        }
    }

    fn process_get(&mut self, from: NodeId, addr: BlockAddr, kind: GetKind, ctx: &mut Ctx<'_>) {
        if kind == GetKind::M {
            self.stats.getms += 1;
        } else {
            self.stats.gets += 1;
        }
        let Some(line) = self.array.get_mut(addr) else {
            // Miss: fetch from memory.
            self.stats.mem_reads += 1;
            self.busy.insert(
                addr,
                Busy::Fetch {
                    requestor: from,
                    kind,
                },
            );
            self.busy_opened(addr, ctx.now());
            ctx.wake_in(self.cfg.mem_latency.max(1), addr.as_u64());
            return;
        };
        match kind {
            GetKind::S | GetKind::SOnly => {
                if let Some(owner) = line.owner {
                    self.stats.fwd_gets += 1;
                    self.busy.insert(
                        addr,
                        Busy::FwdS {
                            owner,
                            requestor: from,
                        },
                    );
                    self.busy_opened(addr, ctx.now());
                    ctx.send(
                        owner,
                        MesiMsg::new(addr, MesiKind::FwdGetS { requestor: from }).into(),
                    );
                } else if line.sharers.is_empty() && kind == GetKind::S {
                    line.owner = Some(from);
                    let data = line.data;
                    ctx.send(from, MesiMsg::new(addr, MesiKind::DataE { data }).into());
                } else {
                    line.sharers.insert(from);
                    let data = line.data;
                    ctx.send(from, MesiMsg::new(addr, MesiKind::DataS { data }).into());
                }
            }
            GetKind::M => {
                if let Some(owner) = line.owner {
                    if owner == from {
                        // Trusted L1s upgrade silently, but a Transactional
                        // Crossing Guard may forward a redundant GetM on a
                        // misbehaving accelerator's behalf (Guarantee 1a is
                        // the host's to tolerate, §3.2.2). Grant it — the
                        // requestor already owns the block, so this is
                        // harmless.
                        let data = line.data;
                        self.stats.redundant_getms += 1;
                        ctx.send(
                            from,
                            MesiMsg::new(addr, MesiKind::DataM { data, acks: 0 }).into(),
                        );
                        return;
                    }
                    ctx.send(
                        owner,
                        MesiMsg::new(addr, MesiKind::FwdGetM { requestor: from }).into(),
                    );
                    line.owner = Some(from);
                    line.inv_debt = None;
                } else {
                    let acks: Vec<NodeId> = line
                        .sharers
                        .iter()
                        .copied()
                        .filter(|&s| s != from)
                        .collect();
                    if !acks.is_empty() {
                        self.stats.inv_rounds += 1;
                    }
                    for &sharer in &acks {
                        ctx.send(
                            sharer,
                            MesiMsg::new(addr, MesiKind::Inv { requestor: from }).into(),
                        );
                    }
                    line.sharers.clear();
                    line.owner = Some(from);
                    line.inv_debt = Some(from);
                    let data = line.data;
                    ctx.send(
                        from,
                        MesiMsg::new(
                            addr,
                            MesiKind::DataM {
                                data,
                                acks: acks.len() as u32,
                            },
                        )
                        .into(),
                    );
                }
            }
        }
    }

    fn process_put(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        data: Option<DataBlock>,
        dirty: bool,
        ctx: &mut Ctx<'_>,
    ) {
        self.stats.puts += 1;
        let Some(line) = self.array.get_mut(addr) else {
            // Inclusivity means a put for a non-resident block is a race
            // with our own recall (or garbage).
            self.stats.nacks += 1;
            ctx.send(from, MesiMsg::new(addr, MesiKind::WbNack).into());
            return;
        };
        if line.owner == Some(from) {
            if let Some(d) = data {
                line.data = d;
                line.dirty |= dirty;
            }
            line.owner = None;
            ctx.send(from, MesiMsg::new(addr, MesiKind::WbAck).into());
        } else if line.sharers.remove(&from) {
            // PutS, or a PutE/PutM demoted by a racing FwdGetS (§ l1 docs).
            if data.is_some() {
                self.stats.demoted_puts += 1;
            } else {
                self.stats.put_s += 1;
            }
            ctx.send(from, MesiMsg::new(addr, MesiKind::WbAck).into());
        } else {
            self.stats.nacks += 1;
            ctx.send(from, MesiMsg::new(addr, MesiKind::WbNack).into());
        }
    }

    fn handle_owner_wb(
        &mut self,
        from: NodeId,
        addr: BlockAddr,
        data: DataBlock,
        dirty: bool,
        ctx: &mut Ctx<'_>,
    ) {
        match self.busy.get(&addr) {
            Some(Busy::FwdS { owner, requestor }) if *owner == from => {
                let requestor = *requestor;
                self.busy.remove(&addr);
                self.busy_closed(addr, ctx.now());
                if let Some(line) = self.array.get_mut(addr) {
                    line.data = data;
                    line.dirty |= dirty;
                    line.sharers.insert(from);
                    line.sharers.insert(requestor);
                    line.owner = None;
                } else {
                    self.violation("FwdS busy without a line");
                }
                self.drain(addr, ctx);
            }
            _ => {
                // Unsolicited data: either a WB_P(M/E)+FwdGetS demotion
                // (trusted, handled by the data refresh below) or a buggy
                // accelerator answering an Inv with data (§3.2.2).
                let mut handled = false;
                if let Some(line) = self.array.get_mut(addr) {
                    if line.owner.is_none() && line.sharers.contains(&from) {
                        // Plausible demotion: refresh our copy.
                        line.data = data;
                        line.dirty |= dirty;
                        handled = true;
                    } else if line.inv_debt.is_some() && line.owner != Some(from) {
                        let requestor = line.inv_debt.expect("checked");
                        if self.cfg.ack_data_interchange {
                            // Host mod: ack the requestor on behalf of the
                            // sender; discard the untrusted data (it came
                            // from a cache that was told to *invalidate*).
                            ctx.send(requestor, MesiMsg::new(addr, MesiKind::InvAck).into());
                            self.stats.mod_acks_on_behalf += 1;
                            handled = true;
                        }
                    }
                }
                if !handled {
                    ctx.trace(addr.as_u64(), "mesi-l2", "UnsolicitedOwnerWb", || {
                        format!(
                            "from {from} line={:?}",
                            self.array
                                .get(addr)
                                .map(|l| (l.owner, l.sharers.clone(), l.inv_debt))
                        )
                    });
                    self.violation("unsolicited OwnerWb");
                }
            }
        }
    }

    fn recall_response(
        &mut self,
        addr: BlockAddr,
        data: Option<(DataBlock, bool)>,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(Busy::Recall { pending, line }) = self.busy.get_mut(&addr) else {
            self.violation("recall response without recall");
            return;
        };
        if let Some((d, dirty)) = data {
            line.data = d;
            line.dirty |= dirty;
        }
        *pending -= 1;
        if *pending == 0 {
            let Some(Busy::Recall { line, .. }) = self.busy.remove(&addr) else {
                unreachable!()
            };
            self.busy_closed(addr, ctx.now());
            self.finish_eviction(addr, line, ctx);
        }
    }

    fn finish_eviction(&mut self, addr: BlockAddr, line: L2Line, ctx: &mut Ctx<'_>) {
        if line.dirty {
            self.stats.mem_writes += 1;
            self.memory.insert(addr, line.data);
        }
        // Anything queued behind the eviction restarts from scratch.
        self.drain(addr, ctx);
        // Retry any fill that was waiting for this set.
        let waiting: Vec<BlockAddr> = self
            .busy
            .iter()
            .filter(|(_, b)| matches!(b, Busy::InstallWait { .. }))
            .map(|(&a, _)| a)
            .collect();
        for a in waiting {
            self.try_install(a, ctx);
        }
    }

    /// Memory fetch completion (timer token = block address).
    fn fetch_done(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        // Check before removing: a mismatched wake must not destroy
        // whatever transaction now owns this block.
        if !matches!(self.busy.get(&addr), Some(Busy::Fetch { .. })) {
            self.violation("fetch completion without fetch");
            return;
        }
        let Some(Busy::Fetch { requestor, kind }) = self.busy.remove(&addr) else {
            unreachable!("checked above")
        };
        let data = self.memory.get(&addr).copied().unwrap_or_default();
        self.busy.insert(
            addr,
            Busy::InstallWait {
                requestor,
                kind,
                data,
            },
        );
        self.try_install(addr, ctx);
    }

    fn try_install(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        let Some(Busy::InstallWait { .. }) = self.busy.get(&addr) else {
            return;
        };
        if self.array.needs_eviction(addr) {
            let busy = &self.busy;
            let victim = self
                .array
                .take_victim_where(addr, |a, _| !busy.contains_key(&a));
            match victim {
                Some((victim_addr, line)) => {
                    self.start_recall(victim_addr, line, ctx);
                }
                None => {
                    // Every candidate way is mid-transaction; retry soon.
                    self.stats.install_retries += 1;
                    ctx.wake_in(4, addr.as_u64() | INSTALL_RETRY_BIT);
                    return;
                }
            }
            if self.array.needs_eviction(addr) {
                // Recall is asynchronous; wait for it.
                return;
            }
        }
        // A zero-pending recall completes synchronously and re-enters this
        // function via finish_eviction; in that case our install already
        // happened and the busy entry is gone — or even replaced by a new
        // transaction the re-entrant install started. Never remove anything
        // that is not our own InstallWait.
        if !matches!(self.busy.get(&addr), Some(Busy::InstallWait { .. })) {
            return;
        }
        let Some(Busy::InstallWait {
            requestor,
            kind,
            data,
        }) = self.busy.remove(&addr)
        else {
            unreachable!("checked above")
        };
        self.busy_closed(addr, ctx.now());
        self.array.insert(addr, L2Line::fresh(data));
        // Grant through the normal path (line now resident, not busy).
        let get = match kind {
            GetKind::S => MesiKind::GetS,
            GetKind::SOnly => MesiKind::GetSOnly,
            GetKind::M => MesiKind::GetM,
        };
        // Don't double-count the request statistics for the replay.
        self.stats.gets = self
            .stats
            .gets
            .saturating_sub(u64::from(kind != GetKind::M));
        self.stats.getms = self
            .stats
            .getms
            .saturating_sub(u64::from(kind == GetKind::M));
        self.process(requestor, addr, get, ctx);
        self.drain(addr, ctx);
    }

    fn start_recall(&mut self, addr: BlockAddr, line: L2Line, ctx: &mut Ctx<'_>) {
        self.stats.recalls += 1;
        let mut pending = 0u32;
        if let Some(owner) = line.owner {
            ctx.send(owner, MesiMsg::new(addr, MesiKind::Recall).into());
            pending += 1;
        }
        let me = ctx.self_id();
        for &sharer in &line.sharers {
            ctx.send(
                sharer,
                MesiMsg::new(addr, MesiKind::Inv { requestor: me }).into(),
            );
            pending += 1;
        }
        if pending == 0 {
            self.finish_eviction(addr, line, ctx);
        } else {
            self.busy.insert(addr, Busy::Recall { pending, line });
            self.busy_opened(addr, ctx.now());
        }
    }

    fn drain(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        loop {
            if self.busy.contains_key(&addr) {
                return;
            }
            let Some(queue) = self.queues.get_mut(&addr) else {
                return;
            };
            let Some((from, kind)) = queue.pop_front() else {
                self.queues.remove(&addr);
                return;
            };
            self.cover(addr, event_name(&kind));
            self.process(from, addr, kind, ctx);
        }
    }
}

/// High bit of the wake token distinguishes install retries from fetches.
const INSTALL_RETRY_BIT: u64 = 1 << 63;

fn event_name(kind: &MesiKind) -> &'static str {
    match kind {
        MesiKind::GetS => "GetS",
        MesiKind::GetSOnly => "GetSOnly",
        MesiKind::GetM => "GetM",
        MesiKind::PutS => "PutS",
        MesiKind::PutE { .. } => "PutE",
        MesiKind::PutM { .. } => "PutM",
        MesiKind::DataS { .. } => "DataS",
        MesiKind::DataE { .. } => "DataE",
        MesiKind::DataM { .. } => "DataM",
        MesiKind::WbAck => "WbAck",
        MesiKind::WbNack => "WbNack",
        MesiKind::Inv { .. } => "Inv",
        MesiKind::FwdGetS { .. } => "FwdGetS",
        MesiKind::FwdGetM { .. } => "FwdGetM",
        MesiKind::Recall => "Recall",
        MesiKind::InvAck => "InvAck",
        MesiKind::FwdData { .. } => "FwdData",
        MesiKind::OwnerWb { .. } => "OwnerWb",
        MesiKind::RecallData { .. } => "RecallData",
    }
}

impl Component<Message> for MesiL2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let violations_before = self.stats.protocol_violation;
        let addr = match &msg {
            Message::Mesi(m) => m.addr.as_u64(),
            _ => u64::MAX,
        };
        match msg {
            Message::Mesi(m) => {
                self.cover(m.addr, event_name(&m.kind));
                self.handle_mesi(from, m.addr, m.kind, ctx);
            }
            _ => self.violation("foreign protocol message"),
        }
        if violations_before == 0 && self.stats.protocol_violation > 0 {
            ctx.flag_post_mortem(addr, format!("{}: first protocol violation", self.name));
        }
    }

    fn wake(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let addr = BlockAddr::new(token & !INSTALL_RETRY_BIT);
        ctx.trace(addr.as_u64(), "mesi-l2", "Wake", || {
            format!(
                "retry={} (state {})",
                token & INSTALL_RETRY_BIT != 0,
                self.state_name(addr)
            )
        });
        if token & INSTALL_RETRY_BIT != 0 {
            self.try_install(addr, ctx);
        } else {
            self.fetch_done(addr, ctx);
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.gets"), self.stats.gets);
        out.add(format!("{n}.getms"), self.stats.getms);
        out.add(format!("{n}.puts"), self.stats.puts);
        out.add(format!("{n}.put_s"), self.stats.put_s);
        out.add(format!("{n}.nacks"), self.stats.nacks);
        out.add(format!("{n}.mem_reads"), self.stats.mem_reads);
        out.add(format!("{n}.mem_writes"), self.stats.mem_writes);
        out.add(format!("{n}.recalls"), self.stats.recalls);
        out.add(format!("{n}.fwd_gets"), self.stats.fwd_gets);
        out.add(format!("{n}.inv_rounds"), self.stats.inv_rounds);
        out.add(format!("{n}.redundant_getms"), self.stats.redundant_getms);
        out.add(format!("{n}.acks_on_behalf"), self.stats.mod_acks_on_behalf);
        out.add(format!("{n}.demoted_puts"), self.stats.demoted_puts);
        out.add(format!("{n}.install_retries"), self.stats.install_retries);
        out.record_hist(format!("{n}.lat.busy"), &self.stats.lat_busy);
        out.record_hist(format!("{n}.mshr_occupancy"), &self.stats.mshr_occupancy);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        for (why, count) in &self.stats.violation_reasons {
            out.add(format!("{n}.violation[{why}]"), *count);
        }
        out.record_coverage(format!("mesi_l2/{n}"), &self.coverage);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

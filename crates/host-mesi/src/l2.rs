//! The shared, inclusive MESI L2 with embedded directory and memory.
//!
//! Per block the L2 keeps data, a dirty bit, the exact sharer set, and the
//! owner (an L1 holding E/M). Multi-message flows serialize per block:
//!
//! * **Fetch**: miss → memory read (latency via timer) → grant. If the fill
//!   needs a way, a *recall* of an unpinned victim runs first, pulling the
//!   block back from every L1 above (inclusivity).
//! * **FwdGetS**: owner downgrades and supplies data; the L2 stays busy
//!   until the owner's `OwnerWb` refreshes its copy.
//! * **GetM with sharers**: the L2 replies `DataM { acks }` and sends each
//!   sharer an `Inv` naming the requestor; sharers ack the requestor
//!   directly and the L2 does not block — the requestor-side counting is
//!   exactly the complexity Crossing Guard shields accelerators from.
//!
//! The §3.2.2 host modification ([`MesiL2Config::ack_data_interchange`]):
//! when an unexpected `OwnerWb` arrives from a node that was just sent an
//! `Inv` on behalf of requestor `R` (a buggy accelerator answered `Inv`
//! with data), the modified L2 acks `R` itself so `R`'s ack count still
//! converges. The unmodified baseline counts a protocol violation instead
//! (and `R` hangs — which the fuzz ablation demonstrates).
//!
//! Dispatch is table-driven (see [`table`]): each stimulus is refined into
//! an [`L2Event`] — sender identity, busy-entry match, and configuration
//! fold into the event, so e.g. an `OwnerWb` from the forwarded owner is a
//! different event than one settling an invalidation debt — and the
//! `xg-fsm` table maps `(state, event)` to transition, stall (queue), or
//! violation. Data movement lives in the symbolic [`L2Action`]s.

use std::collections::{BTreeSet, HashMap, VecDeque};

use xg_fsm::{alphabet, Alphabet, Controller, Machine, Step, Table, TableBuilder};
use xg_mem::{BlockAddr, DataBlock, Replacement, SetAssocCache};
use xg_proto::{Ctx, MesiKind, MesiMsg, Message};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

alphabet! {
    /// Abstract per-block L2 states (stable + transient).
    pub enum L2State {
        /// Not present in the array (and no transaction in flight).
        NP = "NP",
        /// Resident, no owner, no sharers.
        Present,
        /// Resident, no owner, at least one sharer.
        Shared,
        /// Resident with an exclusive owner above.
        Owned,
        /// Memory fetch in flight.
        BusyFetch = "Busy_Fetch",
        /// Fetched data waiting for a way (victim recall running).
        BusyInstall = "Busy_Install",
        /// Waiting for the owner's `OwnerWb` after a FwdGetS.
        BusyFwdS = "Busy_FwdS",
        /// Inclusive eviction: waiting for recall responses.
        BusyRecall = "Busy_Recall",
    }
}

alphabet! {
    /// Classified stimulus: message kind refined by sender identity,
    /// busy-entry match, and configuration.
    pub enum L2Event {
        GetS,
        GetSOnly,
        /// `GetM` from anyone but the current owner.
        GetM,
        /// `GetM` from the recorded owner (redundant upgrade, §3.2.2).
        GetMOwner,
        /// Any `Put*` from the recorded owner.
        PutOwner,
        /// Any `Put*` from a recorded sharer.
        PutSharer,
        /// Any `Put*` from a node holding nothing here (nacked race).
        PutForeign,
        /// `OwnerWb` from the owner a FwdGetS is waiting on.
        OwnerWbFwd,
        /// Unsolicited `OwnerWb` explained by a `Put*`+FwdGetS demotion.
        OwnerWbDemote,
        /// Unsolicited `OwnerWb` settling an invalidation debt (§3.2.2
        /// host modification; only classified when the mod is on).
        OwnerWbDebt,
        /// `OwnerWb` with no explanation.
        OwnerWbStray,
        /// `RecallData` response to our recall.
        RecallData,
        /// `InvAck` response to our recall.
        RecallAck,
        /// Memory-fetch completion timer.
        FetchDone,
        /// Install retry timer (benign no-op if the install already ran).
        InstallRetry,
        /// A message kind the L2 never receives.
        Stray,
    }
}

alphabet! {
    /// Symbolic L2 actions, interpreted against concrete state.
    pub enum L2Action {
        /// Count the Get (gets/getms).
        CountGet,
        /// Miss: count the memory read, open a Fetch entry, arm the timer.
        StartFetch,
        /// Grant exclusive (`DataE`) and record the requestor as owner.
        GrantE,
        /// Grant shared (`DataS`) and add the requestor to the sharers.
        GrantS,
        /// Forward a GetS to the owner and open a FwdS entry.
        StartFwdS,
        /// Re-grant `DataM` to the existing owner (redundant GetM).
        GrantRedundantM,
        /// Forward a GetM to the old owner and record the new one.
        HandOffM,
        /// Invalidate all sharers and grant `DataM { acks }`.
        InvRoundGrantM,
        /// Count the Put.
        CountPut,
        /// Accept the owner's writeback (refresh data, clear owner, ack).
        AcceptOwnerPut,
        /// Accept a sharer's put (drop from the set, ack).
        AcceptSharerPut,
        /// Nack the put.
        NackPut,
        /// Close the FwdS entry: refresh data, demote owner to sharer.
        FinishFwdS,
        /// Refresh our copy from a demoted owner's unsolicited data.
        RefreshDemoted,
        /// §3.2.2: ack the invalidation requestor on the sender's behalf.
        AckOnBehalf,
        /// Fold one recall response in; finish the eviction at zero.
        ApplyRecallResponse,
        /// Move the completed fetch into an install-wait entry and try it.
        CompleteFetch,
        /// Re-attempt a waiting install (no-op if none is waiting).
        TryInstall,
    }
}

/// The validated `mesi_l2` transition table (shared by all instances).
pub fn table() -> &'static Table<L2State, L2Event, L2Action> {
    static T: std::sync::OnceLock<Table<L2State, L2Event, L2Action>> = std::sync::OnceLock::new();
    T.get_or_init(|| {
        use L2Action::*;
        use L2Event::*;
        use L2State::*;
        const BUSY: [L2State; 4] = [BusyFetch, BusyInstall, BusyFwdS, BusyRecall];
        let mut b = TableBuilder::new("mesi_l2");
        for e in [GetS, GetSOnly, GetM] {
            b.on(NP, e, &[CountGet, StartFetch], BusyFetch);
        }
        b.on(Present, GetS, &[CountGet, GrantE], Owned);
        b.on(Present, GetSOnly, &[CountGet, GrantS], Shared);
        b.on(Shared, GetS, &[CountGet, GrantS], Shared);
        b.on(Shared, GetSOnly, &[CountGet, GrantS], Shared);
        b.on(Owned, GetS, &[CountGet, StartFwdS], BusyFwdS);
        b.on(Owned, GetSOnly, &[CountGet, StartFwdS], BusyFwdS);
        b.on(Present, GetM, &[CountGet, InvRoundGrantM], Owned);
        b.on(Shared, GetM, &[CountGet, InvRoundGrantM], Owned);
        b.on(Owned, GetM, &[CountGet, HandOffM], Owned);
        b.on(Owned, GetMOwner, &[CountGet, GrantRedundantM], Owned);
        // The L2 serializes per block: request-shaped traffic queues behind
        // any in-flight transaction, including kinds that will turn out to
        // be violations once drained.
        for s in BUSY {
            for e in [
                GetS, GetSOnly, GetM, GetMOwner, PutOwner, PutSharer, PutForeign, Stray,
            ] {
                b.stall(s, e);
            }
        }
        for s in [NP, Present, Shared, Owned] {
            b.on(s, PutForeign, &[CountPut, NackPut], s);
        }
        b.on_dyn(Owned, PutOwner, &[CountPut, AcceptOwnerPut]);
        b.on_dyn(Shared, PutSharer, &[CountPut, AcceptSharerPut]);
        // OwnerWb and recall responses bypass the queue entirely.
        b.on_dyn(BusyFwdS, OwnerWbFwd, &[FinishFwdS]);
        b.on(Shared, OwnerWbDemote, &[RefreshDemoted], Shared);
        for s in [Present, Shared, Owned, BusyFwdS] {
            b.on(s, OwnerWbDebt, &[AckOnBehalf], s);
        }
        b.on_dyn(BusyRecall, RecallData, &[ApplyRecallResponse]);
        b.on_dyn(BusyRecall, RecallAck, &[ApplyRecallResponse]);
        b.on_dyn(BusyFetch, FetchDone, &[CompleteFetch]);
        // A retry timer may outlive the install it was armed for; it is a
        // benign no-op in every state.
        for s in L2State::ALL {
            b.on_dyn(*s, InstallRetry, &[TryInstall]);
        }
        b.violation_rest();
        b.build().expect("mesi_l2 table is deterministic and total")
    })
}

/// Configuration for a [`MesiL2`].
#[derive(Debug, Clone)]
pub struct MesiL2Config {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles for a memory fetch.
    pub mem_latency: u64,
    /// Replacement policy for L2 victims.
    pub replacement: Replacement,
    /// Seed for random replacement.
    pub seed: u64,
    /// §3.2.2 host modification: treat data and acks as interchangeable
    /// responses to a forward, acking the requestor on the sender's behalf.
    pub ack_data_interchange: bool,
}

impl Default for MesiL2Config {
    fn default() -> Self {
        MesiL2Config {
            sets: 256,
            ways: 8,
            mem_latency: 80,
            replacement: Replacement::Lru,
            seed: 0,
            ack_data_interchange: true,
        }
    }
}

/// Directory + data state for one resident block.
#[derive(Debug, Clone)]
struct L2Line {
    data: DataBlock,
    dirty: bool,
    sharers: BTreeSet<NodeId>,
    owner: Option<NodeId>,
    /// Requestor of the most recent sharer-invalidation round, kept so the
    /// modified L2 can ack on behalf of a misbehaving responder (§3.2.2).
    inv_debt: Option<NodeId>,
}

impl L2Line {
    fn fresh(data: DataBlock) -> Self {
        L2Line {
            data,
            dirty: false,
            sharers: BTreeSet::new(),
            owner: None,
            inv_debt: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GetKind {
    S,
    SOnly,
    M,
}

#[derive(Debug)]
enum Busy {
    /// Memory fetch in flight for `requestor`.
    Fetch { requestor: NodeId, kind: GetKind },
    /// Fetched data waiting for a way to free up (victim recall running).
    InstallWait {
        requestor: NodeId,
        kind: GetKind,
        data: DataBlock,
    },
    /// Waiting for the owner's `OwnerWb` after a FwdGetS.
    FwdS { owner: NodeId, requestor: NodeId },
    /// Inclusive eviction: waiting for `pending` recall responses; the line
    /// has already been removed from the array into here.
    Recall { pending: u32, line: L2Line },
}

#[derive(Debug, Default)]
struct Stats {
    violation_reasons: std::collections::BTreeMap<&'static str, u64>,
    redundant_getms: u64,
    gets: u64,
    getms: u64,
    puts: u64,
    put_s: u64,
    nacks: u64,
    mem_reads: u64,
    mem_writes: u64,
    recalls: u64,
    fwd_gets: u64,
    inv_rounds: u64,
    mod_acks_on_behalf: u64,
    demoted_puts: u64,
    install_retries: u64,
    protocol_violation: u64,
    /// Cycles each busy (transient) entry stayed open.
    lat_busy: Histogram,
    /// Busy-table population, sampled at each new allocation.
    mshr_occupancy: Histogram,
}

/// Per-dispatch context for [`L2Action`] interpretation. Timer-driven
/// events (`FetchDone`, `InstallRetry`) carry no message; their `kind` is
/// `None` and `from` is the L2 itself.
pub struct L2Cx<'a, 'b> {
    ctx: &'a mut Ctx<'b>,
    from: NodeId,
    addr: BlockAddr,
    kind: Option<MesiKind>,
}

/// The shared inclusive L2 + directory + memory controller.
pub struct MesiL2 {
    name: String,
    cfg: MesiL2Config,
    array: SetAssocCache<L2Line>,
    busy: HashMap<BlockAddr, Busy>,
    /// Open times of busy entries, for the `lat.busy` histogram.
    busy_since: HashMap<BlockAddr, Cycle>,
    queues: HashMap<BlockAddr, VecDeque<(NodeId, MesiKind)>>,
    memory: HashMap<BlockAddr, DataBlock>,
    stats: Stats,
    coverage: CoverageSet,
    machine: Machine<L2State, L2Event, L2Action>,
}

impl MesiL2 {
    /// Creates the shared L2.
    pub fn new(name: impl Into<String>, cfg: MesiL2Config) -> Self {
        MesiL2 {
            name: name.into(),
            array: SetAssocCache::new(cfg.sets, cfg.ways, cfg.replacement, cfg.seed),
            busy: HashMap::new(),
            busy_since: HashMap::new(),
            queues: HashMap::new(),
            memory: HashMap::new(),
            cfg,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
            machine: Machine::new(table()),
        }
    }

    /// Pre-loads memory contents (tests / workload setup).
    pub fn write_memory(&mut self, addr: BlockAddr, data: DataBlock) {
        self.memory.insert(addr, data);
    }

    /// Reads memory contents (zero if never written).
    pub fn read_memory(&self, addr: BlockAddr) -> DataBlock {
        self.memory.get(&addr).copied().unwrap_or_default()
    }

    /// Number of impossible events observed (zero among trusted parts, and
    /// — with the host modification on — zero even with a buggy
    /// accelerator behind a Transactional Crossing Guard).
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    /// Times the modified L2 acked a requestor on a misbehaving responder's
    /// behalf (the §3.2.2 counter).
    pub fn acks_on_behalf(&self) -> u64 {
        self.stats.mod_acks_on_behalf
    }

    /// Abstract state of `addr` for table dispatch and coverage.
    fn l2_state(&self, addr: BlockAddr) -> L2State {
        if let Some(b) = self.busy.get(&addr) {
            match b {
                Busy::Fetch { .. } => L2State::BusyFetch,
                Busy::InstallWait { .. } => L2State::BusyInstall,
                Busy::FwdS { .. } => L2State::BusyFwdS,
                Busy::Recall { .. } => L2State::BusyRecall,
            }
        } else if let Some(line) = self.array.get(addr) {
            if line.owner.is_some() {
                L2State::Owned
            } else if line.sharers.is_empty() {
                L2State::Present
            } else {
                L2State::Shared
            }
        } else {
            L2State::NP
        }
    }

    fn state_name(&self, addr: BlockAddr) -> &'static str {
        self.l2_state(addr).label()
    }

    /// Refines a message kind into a table event. Guards mirror the
    /// dispatch conditions exactly: sender identity against the directory
    /// entry, busy-entry match for responses, and the §3.2.2 configuration
    /// for debt settlement.
    fn classify(&self, from: NodeId, addr: BlockAddr, kind: &MesiKind) -> L2Event {
        match kind {
            MesiKind::GetS => L2Event::GetS,
            MesiKind::GetSOnly => L2Event::GetSOnly,
            MesiKind::GetM => {
                if self.array.get(addr).is_some_and(|l| l.owner == Some(from)) {
                    L2Event::GetMOwner
                } else {
                    L2Event::GetM
                }
            }
            MesiKind::PutS | MesiKind::PutE { .. } | MesiKind::PutM { .. } => {
                match self.array.get(addr) {
                    Some(l) if l.owner == Some(from) => L2Event::PutOwner,
                    Some(l) if l.sharers.contains(&from) => L2Event::PutSharer,
                    _ => L2Event::PutForeign,
                }
            }
            MesiKind::OwnerWb { .. } => match self.busy.get(&addr) {
                Some(Busy::FwdS { owner, .. }) if *owner == from => L2Event::OwnerWbFwd,
                _ => match self.array.get(addr) {
                    Some(l) if l.owner.is_none() && l.sharers.contains(&from) => {
                        L2Event::OwnerWbDemote
                    }
                    Some(l)
                        if l.inv_debt.is_some()
                            && l.owner != Some(from)
                            && self.cfg.ack_data_interchange =>
                    {
                        L2Event::OwnerWbDebt
                    }
                    _ => L2Event::OwnerWbStray,
                },
            },
            MesiKind::RecallData { .. } => L2Event::RecallData,
            MesiKind::InvAck => L2Event::RecallAck,
            _ => L2Event::Stray,
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.state_name(addr);
        self.coverage.visit(state, event);
    }

    fn violation(&mut self, why: &'static str) {
        self.stats.protocol_violation += 1;
        *self.stats.violation_reasons.entry(why).or_insert(0) += 1;
    }

    /// Marks the start of a transient (busy) episode for `addr`.
    fn busy_opened(&mut self, addr: BlockAddr, now: Cycle) {
        self.busy_since.entry(addr).or_insert(now);
        self.stats.mshr_occupancy.record(self.busy.len() as u64);
    }

    /// Marks the end of a transient episode, recording its duration.
    fn busy_closed(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        if let Some(since) = self.busy_since.remove(&addr) {
            self.stats
                .lat_busy
                .record(ctx.now().saturating_since(since));
            ctx.span(addr.as_u64(), "l2_busy", since);
        }
    }

    fn handle_mesi(&mut self, from: NodeId, addr: BlockAddr, kind: MesiKind, ctx: &mut Ctx<'_>) {
        ctx.trace(addr.as_u64(), "mesi-l2", "Recv", || {
            format!("{kind:?} from {from} (state {})", self.state_name(addr))
        });
        self.process(from, addr, kind, ctx);
    }

    /// Classifies and dispatches one stimulus through the table. Busy
    /// states stall request-shaped events into the per-block queue;
    /// responses (`OwnerWb*`, recall responses) have explicit rows and
    /// bypass the queue.
    fn process(&mut self, from: NodeId, addr: BlockAddr, kind: MesiKind, ctx: &mut Ctx<'_>) {
        let state = self.l2_state(addr);
        let event = self.classify(from, addr, &kind);
        let mut cx = L2Cx {
            ctx,
            from,
            addr,
            kind: Some(kind),
        };
        self.dispatch(state, event, &mut cx);
    }

    fn recall_response(
        &mut self,
        addr: BlockAddr,
        data: Option<(DataBlock, bool)>,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(Busy::Recall { pending, line }) = self.busy.get_mut(&addr) else {
            // The table only routes recall responses here in Busy_Recall.
            self.violation("recall response without recall");
            return;
        };
        if let Some((d, dirty)) = data {
            line.data = d;
            line.dirty |= dirty;
        }
        *pending -= 1;
        if *pending == 0 {
            let Some(Busy::Recall { line, .. }) = self.busy.remove(&addr) else {
                return;
            };
            self.busy_closed(addr, ctx);
            self.finish_eviction(addr, line, ctx);
        }
    }

    fn finish_eviction(&mut self, addr: BlockAddr, line: L2Line, ctx: &mut Ctx<'_>) {
        if line.dirty {
            self.stats.mem_writes += 1;
            self.memory.insert(addr, line.data);
        }
        // Anything queued behind the eviction restarts from scratch.
        self.drain(addr, ctx);
        // Retry any fill that was waiting for this set.
        let waiting: Vec<BlockAddr> = self
            .busy
            .iter()
            .filter(|(_, b)| matches!(b, Busy::InstallWait { .. }))
            .map(|(&a, _)| a)
            .collect();
        for a in waiting {
            self.try_install(a, ctx);
        }
    }

    fn try_install(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        let Some(Busy::InstallWait { .. }) = self.busy.get(&addr) else {
            return;
        };
        if self.array.needs_eviction(addr) {
            let busy = &self.busy;
            let victim = self
                .array
                .take_victim_where(addr, |a, _| !busy.contains_key(&a));
            match victim {
                Some((victim_addr, line)) => {
                    self.start_recall(victim_addr, line, ctx);
                }
                None => {
                    // Every candidate way is mid-transaction; retry soon.
                    self.stats.install_retries += 1;
                    ctx.wake_in(4, addr.as_u64() | INSTALL_RETRY_BIT);
                    return;
                }
            }
            if self.array.needs_eviction(addr) {
                // Recall is asynchronous; wait for it.
                return;
            }
        }
        // A zero-pending recall completes synchronously and re-enters this
        // function via finish_eviction; in that case our install already
        // happened and the busy entry is gone — or even replaced by a new
        // transaction the re-entrant install started. Never remove anything
        // that is not our own InstallWait.
        if !matches!(self.busy.get(&addr), Some(Busy::InstallWait { .. })) {
            return;
        }
        let Some(Busy::InstallWait {
            requestor,
            kind,
            data,
        }) = self.busy.remove(&addr)
        else {
            return;
        };
        self.busy_closed(addr, ctx);
        self.array.insert(addr, L2Line::fresh(data));
        // Grant through the normal path (line now resident, not busy).
        let get = match kind {
            GetKind::S => MesiKind::GetS,
            GetKind::SOnly => MesiKind::GetSOnly,
            GetKind::M => MesiKind::GetM,
        };
        // Don't double-count the request statistics for the replay.
        self.stats.gets = self
            .stats
            .gets
            .saturating_sub(u64::from(kind != GetKind::M));
        self.stats.getms = self
            .stats
            .getms
            .saturating_sub(u64::from(kind == GetKind::M));
        self.process(requestor, addr, get, ctx);
        self.drain(addr, ctx);
    }

    fn start_recall(&mut self, addr: BlockAddr, line: L2Line, ctx: &mut Ctx<'_>) {
        self.stats.recalls += 1;
        let mut pending = 0u32;
        if let Some(owner) = line.owner {
            ctx.send(owner, MesiMsg::new(addr, MesiKind::Recall).into());
            pending += 1;
        }
        let me = ctx.self_id();
        for &sharer in &line.sharers {
            ctx.send(
                sharer,
                MesiMsg::new(addr, MesiKind::Inv { requestor: me }).into(),
            );
            pending += 1;
        }
        if pending == 0 {
            self.finish_eviction(addr, line, ctx);
        } else {
            self.busy.insert(addr, Busy::Recall { pending, line });
            self.busy_opened(addr, ctx.now());
        }
    }

    fn drain(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        loop {
            if self.busy.contains_key(&addr) {
                return;
            }
            let Some(queue) = self.queues.get_mut(&addr) else {
                return;
            };
            let Some((from, kind)) = queue.pop_front() else {
                self.queues.remove(&addr);
                return;
            };
            self.cover(addr, event_name(&kind));
            self.process(from, addr, kind, ctx);
        }
    }
}

impl<'a, 'b> Controller<L2State, L2Event, L2Action, L2Cx<'a, 'b>> for MesiL2 {
    fn machine(&mut self) -> &mut Machine<L2State, L2Event, L2Action> {
        &mut self.machine
    }

    fn apply(&mut self, action: L2Action, _step: Step<L2State, L2Event>, cx: &mut L2Cx<'a, 'b>) {
        let (from, addr) = (cx.from, cx.addr);
        match action {
            L2Action::CountGet => {
                if matches!(cx.kind, Some(MesiKind::GetM)) {
                    self.stats.getms += 1;
                } else {
                    self.stats.gets += 1;
                }
            }
            L2Action::StartFetch => {
                let kind = match cx.kind {
                    Some(MesiKind::GetS) => GetKind::S,
                    Some(MesiKind::GetSOnly) => GetKind::SOnly,
                    _ => GetKind::M,
                };
                self.stats.mem_reads += 1;
                self.busy.insert(
                    addr,
                    Busy::Fetch {
                        requestor: from,
                        kind,
                    },
                );
                self.busy_opened(addr, cx.ctx.now());
                cx.ctx.wake_in(self.cfg.mem_latency.max(1), addr.as_u64());
            }
            L2Action::GrantE => {
                if let Some(line) = self.array.get_mut(addr) {
                    line.owner = Some(from);
                    let data = line.data;
                    cx.ctx
                        .send(from, MesiMsg::new(addr, MesiKind::DataE { data }).into());
                }
            }
            L2Action::GrantS => {
                if let Some(line) = self.array.get_mut(addr) {
                    line.sharers.insert(from);
                    let data = line.data;
                    cx.ctx
                        .send(from, MesiMsg::new(addr, MesiKind::DataS { data }).into());
                }
            }
            L2Action::StartFwdS => {
                let Some(owner) = self.array.get(addr).and_then(|l| l.owner) else {
                    return;
                };
                self.stats.fwd_gets += 1;
                self.busy.insert(
                    addr,
                    Busy::FwdS {
                        owner,
                        requestor: from,
                    },
                );
                self.busy_opened(addr, cx.ctx.now());
                cx.ctx.send(
                    owner,
                    MesiMsg::new(addr, MesiKind::FwdGetS { requestor: from }).into(),
                );
            }
            L2Action::GrantRedundantM => {
                if let Some(line) = self.array.get(addr) {
                    // Trusted L1s upgrade silently, but a Transactional
                    // Crossing Guard may forward a redundant GetM on a
                    // misbehaving accelerator's behalf (Guarantee 1a is the
                    // host's to tolerate, §3.2.2). Grant it — the requestor
                    // already owns the block, so this is harmless.
                    let data = line.data;
                    self.stats.redundant_getms += 1;
                    cx.ctx.send(
                        from,
                        MesiMsg::new(addr, MesiKind::DataM { data, acks: 0 }).into(),
                    );
                }
            }
            L2Action::HandOffM => {
                let Some(line) = self.array.get_mut(addr) else {
                    return;
                };
                let Some(owner) = line.owner else { return };
                cx.ctx.send(
                    owner,
                    MesiMsg::new(addr, MesiKind::FwdGetM { requestor: from }).into(),
                );
                line.owner = Some(from);
                line.inv_debt = None;
            }
            L2Action::InvRoundGrantM => {
                let Some(line) = self.array.get_mut(addr) else {
                    return;
                };
                let acks: Vec<NodeId> = line
                    .sharers
                    .iter()
                    .copied()
                    .filter(|&s| s != from)
                    .collect();
                if !acks.is_empty() {
                    self.stats.inv_rounds += 1;
                }
                for &sharer in &acks {
                    cx.ctx.send(
                        sharer,
                        MesiMsg::new(addr, MesiKind::Inv { requestor: from }).into(),
                    );
                }
                let line = self.array.get_mut(addr).expect("line resident");
                line.sharers.clear();
                line.owner = Some(from);
                line.inv_debt = Some(from);
                let data = line.data;
                cx.ctx.send(
                    from,
                    MesiMsg::new(
                        addr,
                        MesiKind::DataM {
                            data,
                            acks: acks.len() as u32,
                        },
                    )
                    .into(),
                );
            }
            L2Action::CountPut => {
                self.stats.puts += 1;
            }
            L2Action::AcceptOwnerPut => {
                let (data, dirty) = put_payload(&cx.kind);
                if let Some(line) = self.array.get_mut(addr) {
                    if let Some(d) = data {
                        line.data = d;
                        line.dirty |= dirty;
                    }
                    line.owner = None;
                    cx.ctx
                        .send(from, MesiMsg::new(addr, MesiKind::WbAck).into());
                }
            }
            L2Action::AcceptSharerPut => {
                let (data, _) = put_payload(&cx.kind);
                if let Some(line) = self.array.get_mut(addr) {
                    // PutS, or a PutE/PutM demoted by a racing FwdGetS
                    // (§ l1 docs).
                    line.sharers.remove(&from);
                    if data.is_some() {
                        self.stats.demoted_puts += 1;
                    } else {
                        self.stats.put_s += 1;
                    }
                    cx.ctx
                        .send(from, MesiMsg::new(addr, MesiKind::WbAck).into());
                }
            }
            L2Action::NackPut => {
                self.stats.nacks += 1;
                cx.ctx
                    .send(from, MesiMsg::new(addr, MesiKind::WbNack).into());
            }
            L2Action::FinishFwdS => {
                let Some(Busy::FwdS { requestor, .. }) = self.busy.remove(&addr) else {
                    return;
                };
                self.busy_closed(addr, cx.ctx);
                let (data, dirty) = put_payload(&cx.kind);
                if let Some(line) = self.array.get_mut(addr) {
                    if let Some(d) = data {
                        line.data = d;
                    }
                    line.dirty |= dirty;
                    line.sharers.insert(from);
                    line.sharers.insert(requestor);
                    line.owner = None;
                } else {
                    self.violation("FwdS busy without a line");
                }
                self.drain(addr, cx.ctx);
            }
            L2Action::RefreshDemoted => {
                let (data, dirty) = put_payload(&cx.kind);
                if let Some(line) = self.array.get_mut(addr) {
                    // Plausible demotion: refresh our copy.
                    if let Some(d) = data {
                        line.data = d;
                    }
                    line.dirty |= dirty;
                }
            }
            L2Action::AckOnBehalf => {
                let Some(requestor) = self.array.get(addr).and_then(|l| l.inv_debt) else {
                    return;
                };
                // Host mod: ack the requestor on behalf of the sender;
                // discard the untrusted data (it came from a cache that was
                // told to *invalidate*).
                cx.ctx
                    .send(requestor, MesiMsg::new(addr, MesiKind::InvAck).into());
                self.stats.mod_acks_on_behalf += 1;
            }
            L2Action::ApplyRecallResponse => {
                let data = match cx.kind {
                    Some(MesiKind::RecallData { data, dirty }) => Some((data, dirty)),
                    _ => None,
                };
                self.recall_response(addr, data, cx.ctx);
            }
            L2Action::CompleteFetch => {
                let Some(Busy::Fetch { requestor, kind }) = self.busy.remove(&addr) else {
                    return;
                };
                let data = self.memory.get(&addr).copied().unwrap_or_default();
                self.busy.insert(
                    addr,
                    Busy::InstallWait {
                        requestor,
                        kind,
                        data,
                    },
                );
                self.try_install(addr, cx.ctx);
            }
            L2Action::TryInstall => {
                self.try_install(addr, cx.ctx);
            }
        }
    }

    fn stalled(&mut self, _step: Step<L2State, L2Event>, cx: &mut L2Cx<'a, 'b>) {
        if let Some(kind) = cx.kind {
            self.queues
                .entry(cx.addr)
                .or_default()
                .push_back((cx.from, kind));
        }
    }

    fn violated(&mut self, step: Step<L2State, L2Event>, cx: &mut L2Cx<'a, 'b>) {
        match step.event {
            L2Event::OwnerWbFwd
            | L2Event::OwnerWbDemote
            | L2Event::OwnerWbDebt
            | L2Event::OwnerWbStray => {
                let (from, addr) = (cx.from, cx.addr);
                cx.ctx
                    .trace(addr.as_u64(), "mesi-l2", "UnsolicitedOwnerWb", || {
                        format!(
                            "from {from} line={:?}",
                            self.array
                                .get(addr)
                                .map(|l| (l.owner, l.sharers.clone(), l.inv_debt))
                        )
                    });
                self.violation("unsolicited OwnerWb");
            }
            L2Event::RecallData | L2Event::RecallAck => {
                self.violation("recall response without recall");
            }
            L2Event::FetchDone => self.violation("fetch completion without fetch"),
            _ => self.violation("unexpected kind at L2"),
        }
    }
}

/// Extracts the data payload of a `Put*`/`OwnerWb`/`RecallData` kind:
/// `(data, dirty)` with `data: None` for the data-less `PutS`.
fn put_payload(kind: &Option<MesiKind>) -> (Option<DataBlock>, bool) {
    match kind {
        Some(MesiKind::PutE { data }) => (Some(*data), false),
        Some(MesiKind::PutM { data }) => (Some(*data), true),
        Some(MesiKind::OwnerWb { data, dirty }) => (Some(*data), *dirty),
        Some(MesiKind::RecallData { data, dirty }) => (Some(*data), *dirty),
        _ => (None, false),
    }
}

/// High bit of the wake token distinguishes install retries from fetches.
const INSTALL_RETRY_BIT: u64 = 1 << 63;

fn event_name(kind: &MesiKind) -> &'static str {
    match kind {
        MesiKind::GetS => "GetS",
        MesiKind::GetSOnly => "GetSOnly",
        MesiKind::GetM => "GetM",
        MesiKind::PutS => "PutS",
        MesiKind::PutE { .. } => "PutE",
        MesiKind::PutM { .. } => "PutM",
        MesiKind::DataS { .. } => "DataS",
        MesiKind::DataE { .. } => "DataE",
        MesiKind::DataM { .. } => "DataM",
        MesiKind::WbAck => "WbAck",
        MesiKind::WbNack => "WbNack",
        MesiKind::Inv { .. } => "Inv",
        MesiKind::FwdGetS { .. } => "FwdGetS",
        MesiKind::FwdGetM { .. } => "FwdGetM",
        MesiKind::Recall => "Recall",
        MesiKind::InvAck => "InvAck",
        MesiKind::FwdData { .. } => "FwdData",
        MesiKind::OwnerWb { .. } => "OwnerWb",
        MesiKind::RecallData { .. } => "RecallData",
    }
}

impl Component<Message> for MesiL2 {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let violations_before = self.stats.protocol_violation;
        let addr = match &msg {
            Message::Mesi(m) => m.addr.as_u64(),
            _ => u64::MAX,
        };
        match msg {
            Message::Mesi(m) => {
                self.cover(m.addr, event_name(&m.kind));
                self.handle_mesi(from, m.addr, m.kind, ctx);
            }
            _ => self.violation("foreign protocol message"),
        }
        if violations_before == 0 && self.stats.protocol_violation > 0 {
            ctx.flag_post_mortem(addr, format!("{}: first protocol violation", self.name));
        }
    }

    fn wake(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let addr = BlockAddr::new(token & !INSTALL_RETRY_BIT);
        ctx.trace(addr.as_u64(), "mesi-l2", "Wake", || {
            format!(
                "retry={} (state {})",
                token & INSTALL_RETRY_BIT != 0,
                self.state_name(addr)
            )
        });
        let event = if token & INSTALL_RETRY_BIT != 0 {
            L2Event::InstallRetry
        } else {
            L2Event::FetchDone
        };
        let state = self.l2_state(addr);
        let me = ctx.self_id();
        let mut cx = L2Cx {
            ctx,
            from: me,
            addr,
            kind: None,
        };
        self.dispatch(state, event, &mut cx);
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.gets"), self.stats.gets);
        out.add(format!("{n}.getms"), self.stats.getms);
        out.add(format!("{n}.puts"), self.stats.puts);
        out.add(format!("{n}.put_s"), self.stats.put_s);
        out.add(format!("{n}.nacks"), self.stats.nacks);
        out.add(format!("{n}.mem_reads"), self.stats.mem_reads);
        out.add(format!("{n}.mem_writes"), self.stats.mem_writes);
        out.add(format!("{n}.recalls"), self.stats.recalls);
        out.add(format!("{n}.fwd_gets"), self.stats.fwd_gets);
        out.add(format!("{n}.inv_rounds"), self.stats.inv_rounds);
        out.add(format!("{n}.redundant_getms"), self.stats.redundant_getms);
        out.add(format!("{n}.acks_on_behalf"), self.stats.mod_acks_on_behalf);
        out.add(format!("{n}.demoted_puts"), self.stats.demoted_puts);
        out.add(format!("{n}.install_retries"), self.stats.install_retries);
        out.record_hist(format!("{n}.lat.busy"), &self.stats.lat_busy);
        out.record_hist(format!("{n}.mshr_occupancy"), &self.stats.mshr_occupancy);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        for (why, count) in &self.stats.violation_reasons {
            out.add(format!("{n}.violation[{why}]"), *count);
        }
        out.record_coverage(format!("mesi_l2/{n}"), &self.coverage);
        self.machine.record_into(out);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

//! # xg-host-mesi — inclusive two-level MESI host protocol
//!
//! The second baseline host protocol of the Crossing Guard paper (§3): an
//! Intel-style inclusive MESI hierarchy in the style of gem5's
//! `MESI_Two_Level`. Private per-core L1s sit under a shared L2 that is
//! inclusive of them and embeds the directory (exact sharer list + owner
//! per block). Its defining features, all reproduced here:
//!
//! * **Exact sharer tracking with requestor-side ack counting.** On a GetM
//!   the L2 tells the requestor how many invalidation acks to expect and
//!   sharers ack the requestor *directly* — sibling-to-sibling traffic the
//!   Crossing Guard interface deliberately hides from accelerators (§2.4).
//! * **Owner forwarding.** The L2 forwards requests to the current E/M
//!   owner, which supplies data cache-to-cache.
//! * **Inclusive L2 evictions** recall blocks from the L1s above.
//! * **Explicit `PutS`.** Shared evictions are not silent, so the sharer
//!   list stays exact — which is why Crossing Guard *does* forward
//!   accelerator `PutS` messages to this host (§2.1).
//! * **Races galore.** An invalidation can overtake a data grant on the
//!   unordered network (the classic `ISI` case of Sorin et al., which the
//!   paper cites as exactly the complexity accelerator designers should not
//!   have to handle, §2.4); the L1 needs six transient states.
//!
//! ## Host modification for Transactional Crossing Guard (paper §3.2.2)
//!
//! If a buggy accelerator answers an invalidation with a writeback instead
//! of an `InvAck`, Transactional Crossing Guard forwards the (type-wrong)
//! data to the L2; the modified L2 then acks the GetM requestor on the
//! accelerator's behalf. Toggle with [`MesiL2Config::ack_data_interchange`]
//! — the ablation benches measure the unmodified baseline failing.

#![forbid(unsafe_code)]

pub mod l1;
pub mod l2;

#[cfg(test)]
mod tests;

pub use l1::{MesiL1, MesiL1Config};
pub use l2::{MesiL2, MesiL2Config};

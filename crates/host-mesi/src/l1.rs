//! The MESI private L1 cache controller.
//!
//! ## Transition matrix
//!
//! Stable: `M E S I`. Transients: `IS_D` (read miss, waiting data; with an
//! `ISI` flavor when an invalidation overtakes the grant), `IM_AD` (write
//! miss, waiting data + acks), `IM_A` (data arrived, still counting acks),
//! `SM_AD` (upgrade in flight, shared copy retained), `WB` (writeback
//! pending), `WB_I` (writeback pending, copy already surrendered to a
//! racing request).
//!
//! | state | Load | Store | Repl | Inv | FwdGetS | FwdGetM | Recall | grant/acks | WbAck | WbNack |
//! |-------|------|-------|------|-----|---------|---------|--------|------------|-------|--------|
//! | M     | hit  | hit   | PutM/WB | ack (stale) | data+OwnerWb → S | data → I | data → I | — | — | — |
//! | E     | hit  | hit→M | PutE/WB | ack (stale) | data+OwnerWb → S | data → I | data → I | — | — | — |
//! | S     | hit  | GetM/SM_AD | PutS/WB | ack → I | — | — | — | — | — | — |
//! | I     | GetS/IS_D | GetM/IM_AD | — | ack | — | — | — | — | — | — |
//! | IS_D  | queue | queue | — | ack, poison | — | — | — | data → use once, I (if poisoned) else S/E | — | — |
//! | IM_AD | queue | queue | — | ack (stale) | defer | defer | defer | collect → M (+serve deferred) | — | — |
//! | IM_A  | queue | queue | — | ack (stale) | defer | defer | defer | acks → M | — | — |
//! | SM_AD | hit  | queue | — | ack, drop copy → IM_AD | — | — | — | collect → M | — | — |
//! | WB    | queue | queue | — | ack → WB_I (PutS) | data+OwnerWb, Put demotes to PutS | data → WB_I | data → WB_I | — | → I | sink → I |
//! | WB_I  | queue | queue | — | ack | — | — | — | — | → I† | → I |
//!
//! † Impossible among trusted controllers; counted as a violation.
//!
//! "defer" queues the forward until the write completes — the requestor is
//! already the owner from the L2's point of view before it has data, a
//! textbook MESI race that the accelerator protocols behind Crossing Guard
//! never see.

use std::collections::HashMap;

use xg_mem::{BlockAddr, DataBlock, Mshr, Replacement, SetAssocCache};
use xg_proto::{CoreKind, CoreMsg, Ctx, HomeMap, MesiKind, MesiMsg, Message};
use xg_sim::{Component, CoverageSet, Cycle, Histogram, NodeId, Report};

/// Configuration for a [`MesiL1`].
#[derive(Debug, Clone)]
pub struct MesiL1Config {
    /// Number of cache sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Maximum simultaneous transactions.
    pub mshr_entries: usize,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Seed for random replacement.
    pub seed: u64,
}

impl Default for MesiL1Config {
    fn default() -> Self {
        MesiL1Config {
            sets: 64,
            ways: 8,
            mshr_entries: 16,
            replacement: Replacement::Lru,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    M,
    E,
    S,
}

impl L1State {
    fn name(self) -> &'static str {
        match self {
            L1State::M => "M",
            L1State::E => "E",
            L1State::S => "S",
        }
    }
}

#[derive(Debug, Clone)]
struct Line {
    state: L1State,
    dirty: bool,
    data: DataBlock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GetKind {
    S,
    M,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PutKind {
    S,
    E,
    M,
}

/// A forward that arrived while our own write was still completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Deferred {
    FwdGetS(NodeId),
    FwdGetM(NodeId),
    Recall,
}

#[derive(Debug, Clone)]
enum Txn {
    Get {
        kind: GetKind,
        /// Grant received (data plus the state it grants).
        grant: Option<(DataBlock, L1State, bool)>, // (data, state, dirty)
        /// Acks still outstanding (`None` until the grant tells us).
        acks_expected: Option<u32>,
        acks_got: u32,
        /// Shared copy retained during an SM_AD upgrade.
        local: Option<DataBlock>,
        /// An invalidation hit us mid-flight (ISI): use data once, then I.
        poisoned: bool,
        deferred: Vec<Deferred>,
        waiting: Vec<(NodeId, CoreMsg)>,
    },
    Wb {
        kind: PutKind,
        data: DataBlock,
        dirty: bool,
        invalidated: bool,
        /// A WbNack overtook the demand that explains it on the unordered
        /// network; hold the data until that demand arrives and serve it.
        nacked: bool,
        waiting: Vec<(NodeId, CoreMsg)>,
    },
}

impl Txn {
    fn waiting_mut(&mut self) -> &mut Vec<(NodeId, CoreMsg)> {
        match self {
            Txn::Get { waiting, .. } | Txn::Wb { waiting, .. } => waiting,
        }
    }

    fn state_name(&self) -> &'static str {
        match self {
            Txn::Get {
                kind: GetKind::S, ..
            } => "IS_D",
            Txn::Get { local: Some(_), .. } => "SM_AD",
            Txn::Get { grant: None, .. } => "IM_AD",
            Txn::Get { .. } => "IM_A",
            Txn::Wb { nacked: true, .. } => "WB_N",
            Txn::Wb {
                invalidated: false, ..
            } => "WB",
            Txn::Wb {
                invalidated: true, ..
            } => "WB_I",
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Stats {
    violation_reasons: std::collections::BTreeMap<&'static str, u64>,
    loads: u64,
    stores: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    isi_races: u64,
    deferred_fwds: u64,
    mshr_stalls: u64,
    protocol_violation: u64,
    /// Cycles a Get transaction stayed open in the MSHR.
    lat_miss: Histogram,
    /// MSHR population, sampled at each new allocation.
    mshr_occupancy: Histogram,
}

/// A private MESI L1 cache serving one core.
pub struct MesiL1 {
    name: String,
    l2: HomeMap,
    cfg: MesiL1Config,
    cache: SetAssocCache<Line>,
    mshr: Mshr<Txn>,
    /// Open times of in-flight MSHR transactions, for latency histograms.
    txn_started: HashMap<BlockAddr, Cycle>,
    stats: Stats,
    coverage: CoverageSet,
}

impl MesiL1 {
    /// Creates an L1 that sends its requests to the shared L2 at `l2` (a
    /// single node, or a [`HomeMap`] of address-interleaved banks).
    pub fn new(name: impl Into<String>, l2: impl Into<HomeMap>, cfg: MesiL1Config) -> Self {
        MesiL1 {
            name: name.into(),
            l2: l2.into(),
            cache: SetAssocCache::new(cfg.sets, cfg.ways, cfg.replacement, cfg.seed),
            mshr: Mshr::new(cfg.mshr_entries),
            txn_started: HashMap::new(),
            cfg,
            stats: Stats::default(),
            coverage: CoverageSet::new(),
        }
    }

    /// Number of impossible events observed (zero among trusted parts).
    pub fn protocol_violations(&self) -> u64 {
        self.stats.protocol_violation
    }

    /// Number of ISI races survived (invalidation overtook a grant).
    pub fn isi_races(&self) -> u64 {
        self.stats.isi_races
    }

    fn state_name(&self, addr: BlockAddr) -> &'static str {
        if let Some(line) = self.cache.get(addr) {
            line.state.name()
        } else if let Some(txn) = self.mshr.get(addr) {
            txn.state_name()
        } else {
            "I"
        }
    }

    fn cover(&mut self, addr: BlockAddr, event: &'static str) {
        let state = self.state_name(addr);
        self.coverage.visit(state, event);
    }

    fn violation(&mut self, why: &'static str) {
        self.stats.protocol_violation += 1;
        *self.stats.violation_reasons.entry(why).or_insert(0) += 1;
    }

    // ----- core side -------------------------------------------------------

    fn handle_core(&mut self, from: NodeId, msg: CoreMsg, ctx: &mut Ctx<'_>) {
        let addr = msg.addr.block();
        let offset = msg.addr.block_offset() & !7;
        match msg.kind {
            CoreKind::Load => {
                self.cover(addr, "Load");
                self.stats.loads += 1;
            }
            CoreKind::Store { .. } => {
                self.cover(addr, "Store");
                self.stats.stores += 1;
            }
            CoreKind::Flush => {
                // Hardware coherence makes flushes unnecessary on the host
                // side; acknowledge immediately.
                ctx.send(
                    from,
                    CoreMsg {
                        id: msg.id,
                        addr: msg.addr,
                        kind: CoreKind::FlushResp,
                    }
                    .into(),
                );
                return;
            }
            _ => {
                self.violation("core sent a response kind");
                return;
            }
        }

        if let Some(txn) = self.mshr.get_mut(addr) {
            // One special case keeps SM_AD useful: loads still hit on the
            // retained shared copy.
            if let (CoreKind::Load, Txn::Get { local: Some(d), .. }) = (&msg.kind, &*txn) {
                let value = d.read_u64(offset);
                ctx.send(
                    from,
                    CoreMsg {
                        id: msg.id,
                        addr: msg.addr,
                        kind: CoreKind::LoadResp { value },
                    }
                    .into(),
                );
                return;
            }
            txn.waiting_mut().push((from, msg));
            return;
        }

        match msg.kind {
            CoreKind::Load => {
                if let Some(line) = self.cache.get_mut(addr) {
                    self.stats.hits += 1;
                    let value = line.data.read_u64(offset);
                    ctx.send(
                        from,
                        CoreMsg {
                            id: msg.id,
                            addr: msg.addr,
                            kind: CoreKind::LoadResp { value },
                        }
                        .into(),
                    );
                } else {
                    self.stats.misses += 1;
                    self.start_get(GetKind::S, addr, None, (from, msg), ctx);
                }
            }
            CoreKind::Store { value } => match self.cache.get(addr).map(|l| l.state) {
                Some(L1State::M) | Some(L1State::E) => {
                    self.stats.hits += 1;
                    let line = self.cache.get_mut(addr).expect("present");
                    line.data.write_u64(offset, value);
                    line.dirty = true;
                    line.state = L1State::M;
                    ctx.send(
                        from,
                        CoreMsg {
                            id: msg.id,
                            addr: msg.addr,
                            kind: CoreKind::StoreResp,
                        }
                        .into(),
                    );
                }
                Some(L1State::S) => {
                    self.stats.misses += 1;
                    let line = self.cache.remove(addr).expect("present");
                    self.start_get(GetKind::M, addr, Some(line.data), (from, msg), ctx);
                }
                None => {
                    self.stats.misses += 1;
                    self.start_get(GetKind::M, addr, None, (from, msg), ctx);
                }
            },
            _ => unreachable!("filtered above"),
        }
    }

    fn start_get(
        &mut self,
        kind: GetKind,
        addr: BlockAddr,
        local: Option<DataBlock>,
        op: (NodeId, CoreMsg),
        ctx: &mut Ctx<'_>,
    ) {
        if self.mshr.len() >= self.mshr.capacity() {
            self.stats.mshr_stalls += 1;
            if let Some(data) = local {
                self.cache.insert(
                    addr,
                    Line {
                        state: L1State::S,
                        dirty: false,
                        data,
                    },
                );
            }
            let (from, msg) = op;
            ctx.redeliver(from, msg.into(), 8);
            return;
        }
        self.mshr
            .alloc(
                addr,
                Txn::Get {
                    kind,
                    grant: None,
                    acks_expected: None,
                    acks_got: 0,
                    local,
                    poisoned: false,
                    deferred: Vec::new(),
                    waiting: vec![op],
                },
            )
            .expect("capacity checked");
        self.txn_started.insert(addr, ctx.now());
        self.stats.mshr_occupancy.record(self.mshr.len() as u64);
        let req = match kind {
            GetKind::S => MesiKind::GetS,
            GetKind::M => MesiKind::GetM,
        };
        ctx.send(self.l2.for_block(addr), MesiMsg::new(addr, req).into());
    }

    // ----- network side ----------------------------------------------------

    fn handle_mesi(&mut self, from: NodeId, msg: MesiMsg, ctx: &mut Ctx<'_>) {
        let addr = msg.addr;
        ctx.trace(addr.as_u64(), "mesi-l1", "Recv", || {
            format!(
                "{:?} from {from} (state {})",
                msg.kind,
                self.state_name(addr)
            )
        });
        match msg.kind {
            MesiKind::DataS { data } => {
                self.cover(addr, "DataS");
                self.grant(addr, data, L1State::S, false, 0, ctx);
            }
            MesiKind::DataE { data } => {
                self.cover(addr, "DataE");
                self.grant(addr, data, L1State::E, false, 0, ctx);
            }
            MesiKind::DataM { data, acks } => {
                self.cover(addr, "DataM");
                self.grant(addr, data, L1State::M, false, acks, ctx);
            }
            MesiKind::FwdData {
                data,
                dirty,
                exclusive,
            } => {
                self.cover(addr, "FwdData");
                let state = if exclusive { L1State::M } else { L1State::S };
                self.grant(addr, data, state, dirty, 0, ctx);
            }
            MesiKind::InvAck => {
                self.cover(addr, "InvAck");
                let mut ok = false;
                if let Some(Txn::Get { acks_got, .. }) = self.mshr.get_mut(addr) {
                    *acks_got += 1;
                    ok = true;
                }
                if ok {
                    self.try_complete_get(addr, ctx);
                } else {
                    self.violation("InvAck without transaction");
                }
            }
            MesiKind::Inv { requestor } => {
                self.cover(addr, "Inv");
                self.handle_inv(addr, requestor, ctx);
            }
            MesiKind::FwdGetS { requestor } => {
                self.cover(addr, "FwdGetS");
                self.handle_demand(addr, Deferred::FwdGetS(requestor), ctx);
            }
            MesiKind::FwdGetM { requestor } => {
                self.cover(addr, "FwdGetM");
                self.handle_demand(addr, Deferred::FwdGetM(requestor), ctx);
            }
            MesiKind::Recall => {
                self.cover(addr, "Recall");
                self.handle_demand(addr, Deferred::Recall, ctx);
            }
            MesiKind::WbAck => {
                self.cover(addr, "WbAck");
                match self.mshr.remove(addr) {
                    Some(Txn::Wb { waiting, .. }) => {
                        self.stats.writebacks += 1;
                        self.drain_waiting(waiting, ctx);
                    }
                    other => {
                        self.restore(addr, other);
                        self.violation("WbAck without writeback");
                    }
                }
            }
            MesiKind::WbNack => {
                self.cover(addr, "WbNack");
                match self.mshr.remove(addr) {
                    Some(Txn::Wb {
                        invalidated: true,
                        waiting,
                        ..
                    }) => {
                        self.drain_waiting(waiting, ctx);
                    }
                    Some(txn @ Txn::Wb { .. }) => {
                        // The Nack overtook the demand that explains it
                        // (an Inv, FwdGetM, or Recall already in flight on
                        // the unordered network). Hold the data in WB_N and
                        // serve that demand when it lands.
                        let Txn::Wb {
                            kind,
                            data,
                            dirty,
                            waiting,
                            ..
                        } = txn
                        else {
                            unreachable!()
                        };
                        self.restore(
                            addr,
                            Some(Txn::Wb {
                                kind,
                                data,
                                dirty,
                                invalidated: false,
                                nacked: true,
                                waiting,
                            }),
                        );
                    }
                    other => {
                        self.restore(addr, other);
                        self.violation("WbNack without writeback");
                    }
                }
            }
            _ => self.violation("request kind delivered to an L1"),
        }
        let _ = from;
    }

    fn restore(&mut self, addr: BlockAddr, txn: Option<Txn>) {
        if let Some(txn) = txn {
            self.mshr.alloc(addr, txn).expect("slot just freed");
        }
    }

    fn grant(
        &mut self,
        addr: BlockAddr,
        data: DataBlock,
        state: L1State,
        dirty: bool,
        acks: u32,
        ctx: &mut Ctx<'_>,
    ) {
        let ok = match self.mshr.get_mut(addr) {
            Some(Txn::Get {
                grant,
                acks_expected,
                ..
            }) if grant.is_none() => {
                *grant = Some((data, state, dirty));
                *acks_expected = Some(acks);
                true
            }
            _ => false,
        };
        if ok {
            self.try_complete_get(addr, ctx);
        } else {
            self.violation("grant without matching transaction");
        }
    }

    fn handle_inv(&mut self, addr: BlockAddr, requestor: NodeId, ctx: &mut Ctx<'_>) {
        // Universal rule: always ack the requestor, then drop any shared
        // copy we hold. An Inv can be stale (sent at our old S copy and
        // reordered past its own epoch); acking is correct in every case.
        ctx.send(requestor, MesiMsg::new(addr, MesiKind::InvAck).into());
        if let Some(line) = self.cache.get(addr) {
            if line.state == L1State::S {
                self.cache.remove(addr);
            }
            return;
        }
        match self.mshr.get_mut(addr) {
            Some(Txn::Get {
                kind: GetKind::S,
                poisoned,
                ..
            }) => {
                // ISI: the grant in flight is already stale.
                *poisoned = true;
                self.stats.isi_races += 1;
            }
            Some(Txn::Get { local, .. }) if local.is_some() => {
                // SM_AD loses its shared copy → IM_AD.
                *local = None;
                self.stats.isi_races += 1;
            }
            Some(Txn::Wb {
                kind: PutKind::S,
                invalidated,
                nacked,
                ..
            }) => {
                if *nacked {
                    // The explaining demand arrived; the transaction is
                    // fully resolved.
                    if let Some(Txn::Wb { waiting, .. }) = self.mshr.remove(addr) {
                        self.drain_waiting(waiting, ctx);
                    }
                } else {
                    *invalidated = true;
                }
            }
            _ => {}
        }
    }

    /// FwdGetS / FwdGetM / Recall: demands that only an owner receives.
    fn handle_demand(&mut self, addr: BlockAddr, demand: Deferred, ctx: &mut Ctx<'_>) {
        if let Some(line) = self.cache.get(addr) {
            if line.state == L1State::S {
                self.violation("owner demand while in S");
                return;
            }
            let (data, dirty) = (line.data, line.dirty);
            match demand {
                Deferred::FwdGetS(requestor) => {
                    ctx.send(
                        requestor,
                        MesiMsg::new(
                            addr,
                            MesiKind::FwdData {
                                data,
                                dirty,
                                exclusive: false,
                            },
                        )
                        .into(),
                    );
                    ctx.send(
                        self.l2.for_block(addr),
                        MesiMsg::new(addr, MesiKind::OwnerWb { data, dirty }).into(),
                    );
                    let line = self.cache.get_mut(addr).expect("present");
                    line.state = L1State::S;
                    line.dirty = false;
                }
                Deferred::FwdGetM(requestor) => {
                    ctx.send(
                        requestor,
                        MesiMsg::new(
                            addr,
                            MesiKind::FwdData {
                                data,
                                dirty,
                                exclusive: true,
                            },
                        )
                        .into(),
                    );
                    self.cache.remove(addr);
                }
                Deferred::Recall => {
                    ctx.send(
                        self.l2.for_block(addr),
                        MesiMsg::new(addr, MesiKind::RecallData { data, dirty }).into(),
                    );
                    self.cache.remove(addr);
                }
            }
            return;
        }
        match self.mshr.get_mut(addr) {
            Some(Txn::Get { deferred, .. }) => {
                // We are the owner-to-be but have no data yet: defer.
                self.stats.deferred_fwds += 1;
                deferred.push(demand);
            }
            Some(Txn::Wb {
                kind: PutKind::E | PutKind::M,
                data,
                dirty,
                invalidated: invalidated @ false,
                nacked,
                ..
            }) => {
                let was_nacked = *nacked;
                let (data, dirty) = (*data, *dirty);
                match demand {
                    Deferred::FwdGetS(requestor) => {
                        // Serve the read; our in-flight Put demotes to a
                        // PutS at the L2 (it will see a non-owner sharer).
                        // Record the demotion so a later Inv treats the
                        // writeback as a shared-copy eviction.
                        ctx.send(
                            requestor,
                            MesiMsg::new(
                                addr,
                                MesiKind::FwdData {
                                    data,
                                    dirty,
                                    exclusive: false,
                                },
                            )
                            .into(),
                        );
                        ctx.send(
                            self.l2.for_block(addr),
                            MesiMsg::new(addr, MesiKind::OwnerWb { data, dirty }).into(),
                        );
                        if let Some(Txn::Wb { kind, .. }) = self.mshr.get_mut(addr) {
                            *kind = PutKind::S;
                        }
                        return;
                    }
                    Deferred::FwdGetM(requestor) => {
                        ctx.send(
                            requestor,
                            MesiMsg::new(
                                addr,
                                MesiKind::FwdData {
                                    data,
                                    dirty,
                                    exclusive: true,
                                },
                            )
                            .into(),
                        );
                        *invalidated = true;
                    }
                    Deferred::Recall => {
                        ctx.send(
                            self.l2.for_block(addr),
                            MesiMsg::new(addr, MesiKind::RecallData { data, dirty }).into(),
                        );
                        *invalidated = true;
                    }
                }
                if was_nacked {
                    // This demand explains the earlier Nack; all done.
                    if let Some(Txn::Wb { waiting, .. }) = self.mshr.remove(addr) {
                        self.drain_waiting(waiting, ctx);
                    }
                }
            }
            _ => {
                // Nothing held: only reachable with a misbehaving peer.
                self.violation("owner demand without a copy");
                if let Deferred::Recall = demand {
                    ctx.send(
                        self.l2.for_block(addr),
                        MesiMsg::new(
                            addr,
                            MesiKind::RecallData {
                                data: DataBlock::zeroed(),
                                dirty: false,
                            },
                        )
                        .into(),
                    );
                }
            }
        }
    }

    fn try_complete_get(&mut self, addr: BlockAddr, ctx: &mut Ctx<'_>) {
        let ready = matches!(
            self.mshr.get(addr),
            Some(Txn::Get {
                grant: Some(_),
                acks_expected: Some(n),
                acks_got,
                ..
            }) if acks_got >= n
        );
        if !ready {
            return;
        }
        let Some(Txn::Get {
            grant,
            poisoned,
            deferred,
            waiting,
            ..
        }) = self.mshr.remove(addr)
        else {
            unreachable!("checked above")
        };
        if let Some(started) = self.txn_started.remove(&addr) {
            self.stats
                .lat_miss
                .record(ctx.now().saturating_since(started));
            ctx.span(addr.as_u64(), "miss", started);
        }
        let (data, state, dirty) = grant.expect("checked above");

        if poisoned {
            // ISI: satisfy the loads that were already waiting with the
            // granted (coherent-at-grant-time) data, then drop the block.
            let mut rest = Vec::new();
            for (from, msg) in waiting {
                match msg.kind {
                    CoreKind::Load => {
                        let offset = msg.addr.block_offset() & !7;
                        ctx.send(
                            from,
                            CoreMsg {
                                id: msg.id,
                                addr: msg.addr,
                                kind: CoreKind::LoadResp {
                                    value: data.read_u64(offset),
                                },
                            }
                            .into(),
                        );
                    }
                    _ => rest.push((from, msg)),
                }
            }
            ctx.note_progress();
            self.drain_waiting(rest, ctx);
            return;
        }

        self.install_line(addr, Line { state, dirty, data }, ctx);
        ctx.note_progress();
        // Serve demands that raced ahead of our own completion.
        for demand in deferred {
            self.handle_demand(addr, demand, ctx);
        }
        self.drain_waiting(waiting, ctx);
    }

    fn install_line(&mut self, addr: BlockAddr, line: Line, ctx: &mut Ctx<'_>) {
        if let Some((victim_addr, victim)) = self.cache.take_victim(addr) {
            self.start_writeback(victim_addr, victim, ctx);
        }
        let evicted = self.cache.insert(addr, line);
        debug_assert!(evicted.is_none(), "victim was taken first");
    }

    fn start_writeback(&mut self, addr: BlockAddr, line: Line, ctx: &mut Ctx<'_>) {
        self.cover(addr, "Repl");
        let (kind, req) = match line.state {
            L1State::S => (PutKind::S, MesiKind::PutS),
            L1State::E => (PutKind::E, MesiKind::PutE { data: line.data }),
            L1State::M => (PutKind::M, MesiKind::PutM { data: line.data }),
        };
        let txn = Txn::Wb {
            kind,
            data: line.data,
            dirty: line.dirty,
            invalidated: false,
            nacked: false,
            waiting: Vec::new(),
        };
        if self.mshr.alloc(addr, txn).is_ok() {
            self.txn_started.insert(addr, ctx.now());
            self.stats.mshr_occupancy.record(self.mshr.len() as u64);
            ctx.send(self.l2.for_block(addr), MesiMsg::new(addr, req).into());
        } else {
            self.stats.mshr_stalls += 1;
            self.cache.insert(addr, line);
        }
    }

    fn drain_waiting(&mut self, waiting: Vec<(NodeId, CoreMsg)>, ctx: &mut Ctx<'_>) {
        for (from, msg) in waiting {
            self.handle_core(from, msg, ctx);
        }
    }
}

impl Component<Message> for MesiL1 {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let violations_before = self.stats.protocol_violation;
        let addr = match &msg {
            Message::Mesi(m) => m.addr.as_u64(),
            _ => u64::MAX,
        };
        match msg {
            Message::Core(c) => self.handle_core(from, c, ctx),
            Message::Mesi(m) => self.handle_mesi(from, m, ctx),
            _ => self.violation("foreign protocol message"),
        }
        if violations_before == 0 && self.stats.protocol_violation > 0 {
            ctx.flag_post_mortem(addr, format!("{}: first protocol violation", self.name));
        }
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.loads"), self.stats.loads);
        out.add(format!("{n}.stores"), self.stats.stores);
        out.add(format!("{n}.hits"), self.stats.hits);
        out.add(format!("{n}.misses"), self.stats.misses);
        out.add(format!("{n}.writebacks"), self.stats.writebacks);
        out.add(format!("{n}.isi_races"), self.stats.isi_races);
        out.add(format!("{n}.deferred_fwds"), self.stats.deferred_fwds);
        out.add(format!("{n}.mshr_stalls"), self.stats.mshr_stalls);
        out.add(
            format!("{n}.protocol_violation"),
            self.stats.protocol_violation,
        );
        for (why, count) in &self.stats.violation_reasons {
            out.add(format!("{n}.violation[{why}]"), *count);
        }
        out.record_coverage(format!("mesi_l1/{n}"), &self.coverage);
        out.record_hist(format!("{n}.lat.miss"), &self.stats.lat_miss);
        out.record_hist(format!("{n}.mshr_occupancy"), &self.stats.mshr_occupancy);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

// The config is currently all plumbed through the constructor; keep a
// reference to silence dead-code warnings if fields go unused on some paths.
impl MesiL1 {
    /// The configuration this L1 was built with.
    pub fn config(&self) -> &MesiL1Config {
        &self.cfg
    }
}

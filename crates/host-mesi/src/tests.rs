//! Directed end-to-end tests of the MESI protocol (L1s + inclusive L2).

use xg_mem::Addr;
use xg_proto::{CoreKind, CoreMsg, Ctx, Message};
use xg_sim::{Component, Link, NodeId, SimBuilder};

use crate::{MesiL1, MesiL1Config, MesiL2, MesiL2Config};

/// A passive core recording responses.
struct TestCore {
    name: String,
    responses: Vec<CoreMsg>,
}

impl Component<Message> for TestCore {
    fn name(&self) -> &str {
        &self.name
    }
    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        if let Message::Core(c) = msg {
            self.responses.push(c);
            ctx.note_progress();
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct System {
    sim: xg_proto::Sim,
    cores: Vec<NodeId>,
    l1s: Vec<NodeId>,
    l2: NodeId,
    next_id: u64,
}

impl System {
    fn new(n: usize, l1cfg: MesiL1Config, l2cfg: MesiL2Config, seed: u64) -> Self {
        let mut b = SimBuilder::new(seed);
        let mut cores = Vec::new();
        let mut l1s = Vec::new();
        for i in 0..n {
            cores.push(b.add(Box::new(TestCore {
                name: format!("core{i}"),
                responses: Vec::new(),
            })));
        }
        let l2_id = NodeId::from_index(2 * n);
        for i in 0..n {
            l1s.push(b.add(Box::new(MesiL1::new(
                format!("l1_{i}"),
                l2_id,
                l1cfg.clone(),
            ))));
        }
        let l2 = b.add(Box::new(MesiL2::new("l2", l2cfg)));
        assert_eq!(l2, l2_id);
        b.default_link(Link::unordered(1, 12));
        for i in 0..n {
            b.link_bidi(cores[i], l1s[i], Link::ordered(1, 1));
        }
        System {
            sim: b.build(),
            cores,
            l1s,
            l2,
            next_id: 0,
        }
    }

    fn post_store(&mut self, core: usize, addr: u64, value: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.cores[core],
            self.l1s[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Store { value },
            }
            .into(),
        );
    }

    fn store(&mut self, core: usize, addr: u64, value: u64) {
        self.post_store(core, addr, value);
        assert!(self.sim.run_to_quiescence(200_000).quiescent);
    }

    fn load(&mut self, core: usize, addr: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sim.post(
            self.cores[core],
            self.l1s[core],
            CoreMsg {
                id,
                addr: Addr::new(addr),
                kind: CoreKind::Load,
            }
            .into(),
        );
        assert!(self.sim.run_to_quiescence(200_000).quiescent);
        self.sim
            .get::<TestCore>(self.cores[core])
            .unwrap()
            .responses
            .iter()
            .rev()
            .find_map(|m| match (m.id == id, m.kind) {
                (true, CoreKind::LoadResp { value }) => Some(value),
                _ => None,
            })
            .expect("load response")
    }

    fn assert_clean(&self) {
        let report = self.sim.report();
        assert_eq!(
            report.sum_suffix(".protocol_violation"),
            0,
            "protocol violations recorded"
        );
    }
}

fn default_sys(n: usize, seed: u64) -> System {
    System::new(n, MesiL1Config::default(), MesiL2Config::default(), seed)
}

#[test]
fn store_then_load_same_core() {
    let mut sys = default_sys(2, 1);
    sys.store(0, 0x100, 42);
    assert_eq!(sys.load(0, 0x100), 42);
    sys.assert_clean();
}

#[test]
fn owner_forwards_dirty_data() {
    let mut sys = default_sys(2, 2);
    sys.store(0, 0x200, 7);
    // Memory is stale; the owner must forward.
    assert_eq!(sys.load(1, 0x200), 7);
    let l2 = sys.sim.get::<MesiL2>(sys.l2).unwrap();
    // The FwdGetS refreshed the L2 copy.
    assert_eq!(l2.read_memory(Addr::new(0x200).block()).read_u64(0), 0);
    sys.assert_clean();
}

#[test]
fn upgrade_with_ack_counting() {
    let mut sys = default_sys(4, 3);
    sys.store(0, 0x300, 1);
    for c in 0..4 {
        assert_eq!(sys.load(c, 0x300), 1);
    }
    // Core 3 upgrades; three sharers must InvAck it.
    sys.store(3, 0x300, 2);
    for c in 0..4 {
        assert_eq!(sys.load(c, 0x300), 2);
    }
    let report = sys.sim.report();
    assert!(report.get("l2.inv_rounds") >= 1);
    sys.assert_clean();
}

#[test]
fn exclusive_grant_enables_silent_upgrade() {
    let mut sys = default_sys(2, 4);
    assert_eq!(sys.load(0, 0x400), 0);
    sys.store(0, 0x400, 5);
    let report = sys.sim.report();
    // E grant means no GetM ever reached the L2.
    assert_eq!(report.get("l2.getms"), 0);
    sys.assert_clean();
}

#[test]
fn put_s_is_explicit_for_exact_tracking() {
    let l1cfg = MesiL1Config {
        sets: 1,
        ways: 1,
        ..MesiL1Config::default()
    };
    let mut sys = System::new(2, l1cfg, MesiL2Config::default(), 5);
    // Share 0x100 in both L1s.
    sys.store(1, 0x100, 3);
    assert_eq!(sys.load(0, 0x100), 3);
    // Evict it from L1 0 by touching another block in the same set.
    let _ = sys.load(0, 0x140);
    let report = sys.sim.report();
    assert!(report.get("l2.put_s") >= 1, "PutS must be explicit");
    sys.assert_clean();
}

#[test]
fn dirty_eviction_reaches_l2() {
    let l1cfg = MesiL1Config {
        sets: 1,
        ways: 1,
        ..MesiL1Config::default()
    };
    let mut sys = System::new(1, l1cfg, MesiL2Config::default(), 6);
    sys.store(0, 0x100, 11);
    sys.store(0, 0x140, 22); // evicts 0x100 with PutM
    assert_eq!(sys.load(0, 0x100), 11);
    assert_eq!(sys.load(0, 0x140), 22);
    sys.assert_clean();
}

#[test]
fn inclusive_l2_eviction_recalls_l1_copies() {
    let l2cfg = MesiL2Config {
        sets: 1,
        ways: 2,
        ..MesiL2Config::default()
    };
    let mut sys = System::new(2, MesiL1Config::default(), l2cfg, 7);
    sys.store(0, 0x100, 1);
    sys.store(0, 0x140, 2);
    // A third block forces an L2 eviction; the victim lives in L1 0 and
    // must be recalled (dirty data preserved through memory).
    sys.store(0, 0x180, 3);
    let report = sys.sim.report();
    assert!(report.get("l2.recalls") >= 1);
    assert_eq!(sys.load(1, 0x100), 1);
    assert_eq!(sys.load(1, 0x140), 2);
    assert_eq!(sys.load(1, 0x180), 3);
    sys.assert_clean();
}

#[test]
fn many_cores_converge_on_final_value() {
    let mut sys = default_sys(4, 8);
    for round in 0..6u64 {
        let writer = (round % 4) as usize;
        sys.store(writer, 0x700, round + 1);
        for reader in 0..4 {
            assert_eq!(sys.load(reader, 0x700), round + 1, "round {round}");
        }
    }
    sys.assert_clean();
}

#[test]
fn concurrent_racing_stores_converge() {
    let mut sys = default_sys(4, 9);
    for i in 0..4 {
        sys.post_store(i, 0x800, 100 + i as u64);
    }
    assert!(sys.sim.run_to_quiescence(1_000_000).quiescent);
    let v = sys.load(0, 0x800);
    for core in 1..4 {
        assert_eq!(sys.load(core, 0x800), v);
    }
    assert!((100..104).contains(&v));
    sys.assert_clean();
}

#[test]
fn interleaved_sharing_stresses_fwd_paths() {
    let mut sys = default_sys(3, 10);
    // Build up a mix of owner-forwards, upgrades, and invalidations
    // without quiescing between operations.
    for i in 0..12u64 {
        let core = (i % 3) as usize;
        if i % 2 == 0 {
            sys.post_store(core, 0x900, i);
        } else {
            let id = sys.next_id;
            sys.next_id += 1;
            sys.sim.post(
                sys.cores[core],
                sys.l1s[core],
                CoreMsg {
                    id,
                    addr: Addr::new(0x900),
                    kind: CoreKind::Load,
                }
                .into(),
            );
        }
    }
    assert!(sys.sim.run_to_quiescence(2_000_000).quiescent);
    // All cores agree afterwards.
    let v = sys.load(0, 0x900);
    assert_eq!(sys.load(1, 0x900), v);
    assert_eq!(sys.load(2, 0x900), v);
    sys.assert_clean();
}

#[test]
fn small_caches_exercise_recall_and_demotion_races() {
    let l1cfg = MesiL1Config {
        sets: 1,
        ways: 2,
        ..MesiL1Config::default()
    };
    let l2cfg = MesiL2Config {
        sets: 1,
        ways: 3,
        mem_latency: 30,
        ..MesiL2Config::default()
    };
    let mut sys = System::new(3, l1cfg, l2cfg, 11);
    // Thrash five blocks through a 3-way L2 from three cores at once.
    for i in 0..30u64 {
        let core = (i % 3) as usize;
        let addr = 0x1000 + (i % 5) * 64;
        sys.post_store(core, addr, i);
    }
    assert!(sys.sim.run_to_quiescence(5_000_000).quiescent);
    // Convergence: all cores read identical values for every block.
    for blk in 0..5u64 {
        let addr = 0x1000 + blk * 64;
        let v = sys.load(0, addr);
        assert_eq!(sys.load(1, addr), v, "block {blk}");
        assert_eq!(sys.load(2, addr), v, "block {blk}");
    }
    sys.assert_clean();
}

#[test]
fn coverage_is_collected() {
    let mut sys = default_sys(2, 12);
    sys.store(0, 0xA00, 1);
    let _ = sys.load(1, 0xA00);
    sys.store(1, 0xA00, 2);
    let report = sys.sim.report();
    let cov = report.coverage("mesi_l1/l1_0").unwrap();
    assert!(cov.len() > 3);
    assert!(report.coverage("mesi_l2/l2").unwrap().len() > 3);
}

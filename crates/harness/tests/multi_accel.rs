//! Multi-accelerator system tests: several independent guarded
//! hierarchies sharing one host protocol.
//!
//! The single-accelerator suite (`props.rs`, `matrix.rs`) establishes
//! that one guard keeps one hierarchy coherent; these tests establish
//! that N guards keep N hierarchies coherent *against each other* — the
//! cross-guard ping-pong and false-sharing traffic every block takes when
//! two accelerators and the CPUs fight over one line.

use proptest::prelude::*;
use xg_core::XgVariant;
use xg_harness::{
    run_stress, run_workload, AccelOrg, HostProtocol, Pattern, StressOpts, SystemConfig, TesterCfg,
};

fn host_strategy() -> impl Strategy<Value = HostProtocol> {
    prop_oneof![Just(HostProtocol::Hammer), Just(HostProtocol::Mesi)]
}

fn variant_strategy() -> impl Strategy<Value = XgVariant> {
    prop_oneof![Just(XgVariant::FullState), Just(XgVariant::Transactional)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Cross-accelerator ping-pong and false sharing: every tester core —
    /// CPU and accelerator, across 1..=4 guard instances — hammers the
    /// words of a single block, so ownership migrates through every guard
    /// on every write. The single-writer value discipline must hold for
    /// arbitrary interleavings, under both host personas and both guard
    /// variants.
    #[test]
    fn shared_hot_block_stays_coherent_across_guards(
        host in host_strategy(),
        variant in variant_strategy(),
        num_accels in 1usize..=4,
        seed in 0u64..10_000,
        false_sharing in any::<bool>(),
    ) {
        let cfg = SystemConfig {
            host,
            accel: AccelOrg::Xg {
                variant,
                two_level: false,
            },
            num_accels,
            seed,
            ..SystemConfig::default()
        };
        // Ping-pong: one block, two hot words. False sharing: one block,
        // eight logically-private words that share the line.
        let words_per_block = if false_sharing { 8 } else { 2 };
        let out = run_stress(
            &cfg,
            &StressOpts {
                ops: 300,
                blocks: 1,
                words_per_block,
                tester: TesterCfg {
                    store_percent: 60,
                    ..TesterCfg::default()
                },
                ..StressOpts::default()
            },
        );
        prop_assert!(!out.deadlocked, "{} seed {seed} deadlocked", cfg.name());
        prop_assert_eq!(
            out.data_errors,
            0,
            "{} seed {}: {:?}",
            cfg.name(),
            seed,
            out.error_log
        );
        prop_assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
        prop_assert_eq!(out.report.get("os.errors_total"), 0);
        // Every guard instance shows up in the per-guard section, clean.
        for k in 0..num_accels {
            let label = if k == 0 { "xg".into() } else { format!("a{k}_xg") };
            prop_assert_eq!(out.report.guard_get(&label, "data_errors"), 0);
            prop_assert_eq!(out.report.guard_get(&label, "os_errors"), 0);
        }
    }
}

/// The dedicated sharing workloads on a two-guard system: both
/// accelerator cores run the pattern over the *same* base address, so the
/// hot block bounces between the two hierarchies (and the CPU producer-
/// consumer cores) until both finish.
#[test]
fn sharing_workloads_complete_on_two_guard_systems() {
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        for pattern in Pattern::SHARING {
            let cfg = SystemConfig {
                host,
                accel: AccelOrg::Xg {
                    variant: XgVariant::FullState,
                    two_level: false,
                },
                num_accels: 2,
                seed: 0x5A5A,
                ..SystemConfig::default()
            };
            let out = run_workload(&cfg, pattern, 400);
            assert!(
                !out.incomplete,
                "{} {} did not finish",
                cfg.name(),
                pattern.name()
            );
            assert!(out.accel_runtime > 0);
            // Both hierarchies' workload cores reported completions.
            assert_eq!(out.report.sum_suffix("wl_acc0.ops_completed"), 400);
            assert_eq!(out.report.sum_suffix("wl_acc1.ops_completed"), 400);
        }
    }
}

/// Heterogeneous guard variants sharing a host: a Full-State and a
/// Transactional guard interoperate on the same hot block.
#[test]
fn mixed_guard_variants_share_one_host() {
    use xg_harness::AccelSlot;
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        let cfg = SystemConfig {
            host,
            accels: vec![
                AccelSlot::from(AccelOrg::Xg {
                    variant: XgVariant::FullState,
                    two_level: false,
                }),
                AccelSlot::from(AccelOrg::Xg {
                    variant: XgVariant::Transactional,
                    two_level: true,
                }),
            ],
            accel_cores: 2,
            seed: 0x313A,
            ..SystemConfig::default()
        };
        let out = run_stress(
            &cfg,
            &StressOpts {
                ops: 400,
                ..StressOpts::default()
            },
        );
        assert!(!out.deadlocked, "{} deadlocked", cfg.name());
        assert_eq!(out.data_errors, 0, "{}: {:?}", cfg.name(), out.error_log);
        assert_eq!(out.report.get("os.errors_total"), 0);
    }
}

//! Differential regression fixtures for the single-accelerator path.
//!
//! The multi-accelerator generalization must be a strict superset: with
//! `num_accels = 1` every evaluated configuration has to produce a report
//! JSON *byte-identical* (minus the per-guard section, which is new) to
//! the report the single-accelerator code produced. The fixtures under
//! `tests/golden/` were blessed from that code; regenerate with
//! `XG_BLESS=1 cargo test -p xg-harness --test golden_single_accel`.

use std::fs;
use std::path::PathBuf;

use xg_harness::{run_stress, StressOpts, SystemConfig};
use xg_sim::JsonValue;

/// Fixed stress sizing for the fixtures: big enough to exercise every
/// organization's guard/cache paths, small enough to keep the suite quick.
fn opts() -> StressOpts {
    StressOpts {
        ops: 400,
        ..StressOpts::default()
    }
}

const GOLDEN_SEED: u64 = 0xD1FF;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn fixture_path(cfg: &SystemConfig) -> PathBuf {
    golden_dir().join(format!("{}.json", cfg.name().replace('/', "_")))
}

/// Drops the per-guard section (if any) from a serialized report, leaving
/// everything else untouched. On reports without the section this is the
/// identity (the serializer's key order is deterministic).
fn strip_guards(json: &str) -> String {
    let parsed = JsonValue::parse(json).expect("report JSON parses");
    let JsonValue::Obj(mut root) = parsed else {
        panic!("report JSON is an object");
    };
    root.remove("guards");
    JsonValue::Obj(root).to_string()
}

#[test]
fn num_accels_1_reports_are_byte_identical_to_single_accel_goldens() {
    let bless = std::env::var("XG_BLESS").is_ok_and(|v| v == "1");
    if bless {
        fs::create_dir_all(golden_dir()).unwrap();
    }
    let mut failures = Vec::new();
    for cfg in SystemConfig::matrix(GOLDEN_SEED) {
        let out = run_stress(&cfg, &opts());
        assert_eq!(
            out.data_errors,
            0,
            "{}: golden run must be clean",
            cfg.name()
        );
        assert!(!out.deadlocked, "{}: golden run deadlocked", cfg.name());
        let got = strip_guards(&out.report.to_json());
        let path = fixture_path(&cfg);
        if bless {
            fs::write(&path, &got).unwrap();
            continue;
        }
        let want = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing golden fixture {path:?}: {e}", cfg.name()));
        if got != want {
            failures.push(cfg.name());
        }
    }
    assert!(
        failures.is_empty(),
        "report JSON drifted from the single-accelerator goldens for {failures:?}; \
         if the change is intentional, regenerate with XG_BLESS=1"
    );
}

//! Sharded/parallel execution equivalence tests.
//!
//! The parallel executor's contract is *worker-count invariance*: for a
//! fixed partition (home banks × accelerator slots × CPU pairs), a run
//! with any `threads ≥ 1` must be byte-identical — same report JSON, same
//! cycle count, same completed operations — to the `threads = 1` oracle.
//! These tests pin that contract across the evaluation matrix, and check
//! that banked-home systems stay clean on the untouched serial path too.

use proptest::prelude::*;
use xg_core::XgVariant;
use xg_harness::{
    run_stress_with, AccelOrg, HostProtocol, Instrumentation, StressOpts, SystemConfig,
};

fn opts(ops: u64) -> StressOpts {
    StressOpts {
        ops,
        ..StressOpts::default()
    }
}

/// Runs the stress test and returns the comparable fingerprint of the run:
/// cycles, completed operations, data errors, and the full report JSON.
fn fingerprint(cfg: &SystemConfig, ops: u64) -> (u64, u64, u64, String) {
    let out = run_stress_with(cfg, &opts(ops), &Instrumentation::off());
    assert!(!out.deadlocked, "{}: deadlocked", cfg.exec_name());
    assert_eq!(
        out.data_errors,
        0,
        "{}: data errors: {:?}",
        cfg.exec_name(),
        out.error_log
    );
    (
        out.cycles,
        out.completed,
        out.data_errors,
        out.report.to_json(),
    )
}

#[test]
fn worker_count_never_changes_a_partitioned_run() {
    // Four corners of the matrix, each with banked homes, compared at
    // several worker counts against the single-worker oracle.
    let corners = [
        (HostProtocol::Hammer, AccelOrg::AccelSide, 2, 1),
        (
            HostProtocol::Hammer,
            AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: false,
            },
            3,
            2,
        ),
        (
            HostProtocol::Mesi,
            AccelOrg::Xg {
                variant: XgVariant::Transactional,
                two_level: true,
            },
            2,
            1,
        ),
        (HostProtocol::Mesi, AccelOrg::HostSide, 4, 2),
    ];
    for (host, accel, banks, num_accels) in corners {
        let two_level = matches!(
            accel,
            AccelOrg::Xg {
                two_level: true,
                ..
            }
        );
        let mk = |threads: usize| SystemConfig {
            host,
            accel: accel.clone(),
            num_accels,
            accel_cores: if two_level { 2 } else { 1 },
            home_banks: banks,
            threads,
            seed: 0xBEEF,
            ..SystemConfig::default()
        };
        let oracle = fingerprint(&mk(1), 300);
        for threads in [2, 4] {
            let got = fingerprint(&mk(threads), 300);
            assert_eq!(
                got,
                oracle,
                "{}: threads={threads} diverged from the single-worker oracle",
                mk(threads).exec_name()
            );
        }
    }
}

#[test]
fn banked_homes_stay_clean_on_the_serial_path() {
    // home_banks > 1 with threads = 0: the legacy event loop drives a
    // banked system. Nothing to compare against — just the §4.1 gates.
    for (host, banks) in [(HostProtocol::Hammer, 2), (HostProtocol::Mesi, 3)] {
        let cfg = SystemConfig {
            host,
            home_banks: banks,
            seed: 77,
            ..SystemConfig::default()
        };
        let out = run_stress_with(&cfg, &opts(400), &Instrumentation::off());
        assert!(!out.deadlocked, "{}", cfg.exec_name());
        assert_eq!(
            out.data_errors,
            0,
            "{}: {:?}",
            cfg.exec_name(),
            out.error_log
        );
        assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
        assert_eq!(out.report.get("os.errors_total"), 0);
    }
}

#[test]
fn parallel_profiled_report_carries_partition_counters() {
    let cfg = SystemConfig {
        home_banks: 2,
        threads: 2,
        seed: 3,
        ..SystemConfig::default()
    };
    let out = run_stress_with(&cfg, &opts(200), &Instrumentation::profiled());
    assert!(!out.deadlocked);
    // 2 banks + 1 accel slot + 2 CPU pairs = 5 shards.
    assert_eq!(out.report.profile_get("par.shards"), 5);
    assert!(out.report.profile_get("par.delta") >= 1);
    assert!(out.report.profile_get("par.windows") > 0);
    assert!(
        out.report.profile_get("par.xshard.sent") > 0,
        "a stress run must cross shards"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// The full (banks × threads × host × accel count) product, sampled:
    /// any partitioned run equals its single-worker oracle byte for byte.
    #[test]
    fn any_partition_is_worker_count_invariant(
        banks in 1usize..=4,
        threads in 2usize..=4,
        mesi in any::<bool>(),
        num_accels in 1usize..=2,
        seed in 0u64..1_000,
    ) {
        let mk = |threads: usize| SystemConfig {
            host: if mesi { HostProtocol::Mesi } else { HostProtocol::Hammer },
            num_accels,
            home_banks: banks,
            threads,
            seed,
            ..SystemConfig::default()
        };
        let oracle = fingerprint(&mk(1), 150);
        let got = fingerprint(&mk(threads), 150);
        prop_assert_eq!(got, oracle);
    }
}

//! Property-based system tests: random configurations and seeds through
//! the full stress tester. Each case is a complete simulated system, so
//! the case count is deliberately small; the space covered per case is
//! large (every message ordering is seed-dependent).

use proptest::prelude::*;
use xg_core::XgVariant;
use xg_harness::{run_stress, AccelOrg, HostProtocol, StressOpts, SystemConfig, TesterCfg};

fn host_strategy() -> impl Strategy<Value = HostProtocol> {
    prop_oneof![Just(HostProtocol::Hammer), Just(HostProtocol::Mesi)]
}

fn accel_strategy() -> impl Strategy<Value = AccelOrg> {
    prop_oneof![
        Just(AccelOrg::AccelSide),
        Just(AccelOrg::HostSide),
        (any::<bool>(), any::<bool>()).prop_map(|(tx, two_level)| AccelOrg::Xg {
            variant: if tx {
                XgVariant::Transactional
            } else {
                XgVariant::FullState
            },
            two_level,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Any configuration, any seed, any contention knobs: the stress test
    /// must complete with zero data errors and zero protocol violations.
    #[test]
    fn random_systems_stay_coherent(
        host in host_strategy(),
        accel in accel_strategy(),
        seed in 0u64..10_000,
        blocks in 2u64..6,
        in_flight in 1usize..4,
        store_percent in 20u32..80,
    ) {
        let two_level = matches!(accel, AccelOrg::Xg { two_level: true, .. });
        let cfg = SystemConfig {
            host,
            accel,
            accel_cores: if two_level { 2 } else { 1 },
            seed,
            ..SystemConfig::default()
        };
        let out = run_stress(
            &cfg,
            &StressOpts {
                ops: 400,
                blocks,
                tester: TesterCfg {
                    max_in_flight: in_flight,
                    store_percent,
                    ..TesterCfg::default()
                },
                ..StressOpts::default()
            },
        );
        prop_assert!(!out.deadlocked, "{} seed {seed} deadlocked", cfg.name());
        prop_assert_eq!(
            out.data_errors,
            0,
            "{} seed {}: {:?}",
            cfg.name(),
            seed,
            out.error_log
        );
        prop_assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
        prop_assert_eq!(out.report.get("os.errors_total"), 0);
    }
}

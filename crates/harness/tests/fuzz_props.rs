//! Property tests pinning `FuzzOpts` edge cases the campaign relies on:
//! `respond_percent` boundaries must be honored *exactly* (0 ⇒ the fuzzer
//! never answers an invalidation, 100 ⇒ it answers every one), and equal
//! `gap` bounds must produce a fixed injection cadence.
//!
//! Each case runs a full fuzz simulation, so case counts are small.

use proptest::prelude::*;
use xg_core::XgVariant;
use xg_harness::campaign::CPU_POOL_PAGE;
use xg_harness::{run_fuzz, AccelOrg, FuzzOpts, HostProtocol, SystemConfig};

fn host_strategy() -> impl Strategy<Value = HostProtocol> {
    prop_oneof![Just(HostProtocol::Hammer), Just(HostProtocol::Mesi)]
}

fn fuzz_cfg(host: HostProtocol, seed: u64) -> SystemConfig {
    SystemConfig {
        host,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        seed,
        ..SystemConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5 })]

    /// `respond_percent: 0` must mean *zero* invalidation responses and
    /// `respond_percent: 100` must mean *every* invalidation gets one —
    /// not "approximately none/all". The read-only window over the CPU
    /// testers' pool guarantees invalidations actually reach the fuzzer.
    #[test]
    fn respond_percent_boundaries_are_exact(
        host in host_strategy(),
        seed in 0u64..10_000,
    ) {
        let opts = |respond_percent| FuzzOpts {
            messages: 600,
            respond_percent,
            read_only_pages: vec![CPU_POOL_PAGE],
            ..FuzzOpts::default()
        };
        let never = run_fuzz(&fuzz_cfg(host, seed), &opts(0), 400).report;
        let always = run_fuzz(&fuzz_cfg(host, seed), &opts(100), 400).report;
        let invs = never.get("fuzz_accel.invs_seen") + always.get("fuzz_accel.invs_seen");
        prop_assert!(invs > 0, "{host:?} seed {seed}: no invalidations reached the fuzzer");
        prop_assert_eq!(never.get("fuzz_accel.inv_responses"), 0);
        prop_assert_eq!(
            always.get("fuzz_accel.inv_responses"),
            always.get("fuzz_accel.invs_seen")
        );
    }

    /// `gap.0 == gap.1 == g` pins the injection cadence completely: with a
    /// fixed per-step delay the k-th injection happens exactly `k * g`
    /// cycles after the first, so the whole burst spans `(messages-1) * g`.
    #[test]
    fn equal_gap_bounds_give_fixed_cadence(
        host in host_strategy(),
        seed in 0u64..10_000,
        g in 1u64..40,
    ) {
        let out = run_fuzz(
            &fuzz_cfg(host, seed),
            &FuzzOpts {
                messages: 50,
                gap: (g, g),
                ..FuzzOpts::default()
            },
            200,
        );
        let sent = out.report.get("fuzz_accel.sent");
        prop_assert_eq!(sent, 50, "{host:?} seed {seed}: injection burst cut short");
        let first = out.report.get("fuzz_accel.first_inject");
        let last = out.report.get("fuzz_accel.last_inject");
        prop_assert_eq!(last - first, (sent - 1) * g);
    }
}

//! Coverage-completeness checks in the spirit of §4.1: the random tester
//! must eventually visit every `(state, event)` pair the protocol tables
//! declare reachable, and must never visit a pair outside them.

use xg_accel::AccelL1;
use xg_core::XgVariant;
use xg_harness::{run_stress, AccelOrg, HostProtocol, StressOpts, SystemConfig, TesterCfg};
use xg_sim::CoverageSet;

fn stress_coverage(variant: XgVariant, seed: u64, ops: u64) -> CoverageSet {
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::Xg {
            variant,
            two_level: false,
        },
        seed,
        ..SystemConfig::default()
    };
    let out = run_stress(
        &cfg,
        &StressOpts {
            ops,
            blocks: 4,
            tester: TesterCfg {
                store_percent: 60,
                ..TesterCfg::default()
            },
            ..StressOpts::default()
        },
    );
    assert!(!out.deadlocked);
    assert_eq!(out.data_errors, 0, "{:?}", out.error_log);
    out.report
        .coverage("accel_l1/accel_l1")
        .expect("accelerator coverage collected")
        .clone()
}

#[test]
fn accel_l1_visits_exactly_the_table1_matrix() {
    // Merge coverage across both guard variants and several seeds: some
    // pairs (e.g. an Invalidate landing on an absent block) only occur
    // with the Transactional guard, which forwards demands it cannot
    // deduce away.
    let mut seen = CoverageSet::new();
    for (variant, seed) in [
        (XgVariant::FullState, 101),
        (XgVariant::FullState, 102),
        (XgVariant::Transactional, 103),
        (XgVariant::Transactional, 104),
    ] {
        seen.merge(&stress_coverage(variant, seed, 3_000));
    }

    let expected = AccelL1::table1_expected();
    // Soundness: nothing outside Table 1 was ever visited.
    for (state, event) in seen.iter() {
        assert!(
            expected.contains(state, event),
            "({state}, {event}) visited but not part of Table 1"
        );
    }
    // Completeness: everything Table 1 declares reachable was visited.
    let missing: Vec<_> = expected
        .iter()
        .filter(|&(s, e)| !seen.contains(s, e))
        .collect();
    assert!(
        missing.is_empty(),
        "Table 1 pairs never exercised: {missing:?} (visited {}/{})",
        seen.len(),
        expected.len()
    );
}

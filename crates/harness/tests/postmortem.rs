//! Post-mortem observability: failed runs must come back with a trace dump
//! that names the offending addresses (ISSUE: fuzz-failure post-mortem).

use xg_core::XgVariant;
use xg_harness::{
    run_fuzz, run_stress, AccelOrg, FuzzOpts, HostProtocol, StressOpts, SystemConfig,
};

/// Extracts the first `flagged addr 0x…` token from a post-mortem dump.
fn first_flagged_addr(pm: &str) -> &str {
    let start = pm
        .find("flagged addr ")
        .expect("post-mortem must name a flagged addr")
        + "flagged addr ".len();
    let rest = &pm[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    &rest[..end]
}

#[test]
fn fuzzed_unprotected_host_failure_names_corrupted_address() {
    // The control experiment from the matrix tests: garbage aimed directly
    // at a strict host pierces its correctness envelope. The outcome must
    // carry a post-mortem from the deterministic traced replay, and the
    // dump must name the address the failure was flagged at *and* retain
    // protocol events for it.
    let mut checked = false;
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        let cfg = SystemConfig {
            host,
            accel: AccelOrg::FuzzAccelSide,
            strict_host: true,
            seed: 6,
            ..SystemConfig::default()
        };
        let out = run_fuzz(
            &cfg,
            &FuzzOpts {
                messages: 400,
                ..FuzzOpts::default()
            },
            400,
        );
        let pierced = out.host_violations > 0 || out.deadlocked || out.cpu_data_errors > 0;
        if !pierced {
            continue;
        }
        checked = true;
        let name = cfg.name();
        let pm = out
            .post_mortem
            .as_deref()
            .unwrap_or_else(|| panic!("{name}: pierced run must attach a post-mortem"));
        assert!(pm.contains("=== post-mortem ==="), "{name}:\n{pm}");
        let addr = first_flagged_addr(pm);
        assert!(
            addr.starts_with("0x"),
            "{name}: flagged addr is hex: {addr}"
        );
        assert!(
            pm.contains(&format!("--- trace for addr {addr} ---")),
            "{name}: dump section for the flagged addr\n{pm}"
        );
        // The traced replay retained real protocol events, not empty rings.
        assert!(
            pm.lines().any(|l| l.starts_with("  [")),
            "{name}: post-mortem should retain replayed events\n{pm}"
        );
    }
    assert!(checked, "no host configuration was pierced at seed 6");
}

#[test]
fn guarded_fuzz_post_mortem_spans_guard_and_host() {
    // A guard under attack reports errors to the OS; the run is replayed
    // with tracing and the dump shows what the guard saw. Host-side
    // controllers trace into the same per-address rings, so the one dump
    // interleaves both sides of the crossing.
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        seed: 5,
        ..SystemConfig::default()
    };
    let out = run_fuzz(
        &cfg,
        &FuzzOpts {
            messages: 400,
            ..FuzzOpts::default()
        },
        800,
    );
    assert!(out.os_errors > 0, "attack must be detected");
    let pm = out
        .post_mortem
        .as_deref()
        .expect("guard errors must attach a post-mortem");
    assert!(pm.contains("=== post-mortem ==="), "{pm}");
    assert!(
        pm.contains("guard error"),
        "flag reason names the guard error\n{pm}"
    );
    assert!(pm.contains("[guard]"), "dump has guard events\n{pm}");
}

#[test]
fn clean_runs_attach_no_post_mortem() {
    let cfg = SystemConfig::default();
    let out = run_stress(
        &cfg,
        &StressOpts {
            ops: 400,
            ..StressOpts::default()
        },
    );
    assert_eq!(out.data_errors, 0, "{:?}", out.error_log);
    assert!(!out.deadlocked);
    assert_eq!(out.post_mortem, None, "{:?}", out.post_mortem);
}

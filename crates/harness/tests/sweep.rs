//! Property tests for the parallel sweep executor's determinism
//! guarantee: merging per-shard [`Report`]s in *any* permutation yields
//! the same JSON as the serial in-order merge, and a parallel sweep
//! produces shard outputs identical to the serial path.
//!
//! Each case runs real (small) simulations, so case counts are kept low —
//! the space covered per case is large.

use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use xg_harness::{
    run_stress, run_stress_with, sweep, HostProtocol, Instrumentation, StressOpts, SystemConfig,
};
use xg_sim::Report;

/// Runs one small stress shard and returns its report.
fn shard_report(host: HostProtocol, seed: u64, ops: u64) -> Report {
    let cfg = SystemConfig {
        host,
        seed,
        ..SystemConfig::default()
    };
    run_stress(
        &cfg,
        &StressOpts {
            ops,
            ..StressOpts::default()
        },
    )
    .report
}

/// Like [`shard_report`] but with kernel profiling enabled, so the report
/// carries a populated `profile` section (dispatch counters, `.hwm` keys,
/// the epoch series).
fn profiled_shard_report(host: HostProtocol, seed: u64, ops: u64) -> Report {
    let cfg = SystemConfig {
        host,
        seed,
        ..SystemConfig::default()
    };
    run_stress_with(
        &cfg,
        &StressOpts {
            ops,
            ..StressOpts::default()
        },
        &Instrumentation::profiled(),
    )
    .report
}

/// In-place Fisher-Yates driven by the vendored [`SmallRng`] (the
/// vendored proptest subset has no shuffle strategy).
fn shuffle<T>(items: &mut [T], rng_seed: u64) {
    let mut rng = SmallRng::seed_from_u64(rng_seed);
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4 })]

    /// Shard reports merged in a random permutation serialize to exactly
    /// the JSON of the serial in-order merge: scalars sum, coverage sets
    /// union, and histogram buckets add, all independent of order.
    #[test]
    fn report_merge_is_permutation_invariant(
        seed in 0u64..1_000,
        perm_seed in any::<u64>(),
    ) {
        let mut shards = Vec::new();
        for (i, host) in [HostProtocol::Hammer, HostProtocol::Mesi, HostProtocol::Hammer]
            .into_iter()
            .enumerate()
        {
            shards.push(shard_report(host, seed + i as u64, 120));
        }
        let serial = Report::merge_shards(&shards).to_json();
        shuffle(&mut shards, perm_seed);
        let permuted = Report::merge_shards(&shards).to_json();
        prop_assert_eq!(serial, permuted);
    }

    /// Machine transition coverage accumulated across parallel sweep
    /// shards equals the coverage a single thread accumulates over the
    /// same seeds: same machine set, same `(state, event)` universes,
    /// same fire counts. This is the invariant the coverage-guided fuzz
    /// campaign's feedback loop rests on — its frontier must not depend
    /// on how many workers ran the shards.
    #[test]
    fn shard_coverage_merge_equals_single_threaded(
        seed in 0u64..1_000,
        jobs in 2usize..5,
    ) {
        let items: Vec<(HostProtocol, u64)> = vec![
            (HostProtocol::Hammer, seed),
            (HostProtocol::Mesi, seed + 1),
            (HostProtocol::Mesi, seed + 2),
        ];
        // Single-threaded reference: fold each shard's machine coverage
        // into one table per machine, in order.
        let mut serial: std::collections::BTreeMap<String, xg_sim::TransitionCoverage> =
            std::collections::BTreeMap::new();
        for &(host, s) in &items {
            for (machine, cov) in shard_report(host, s, 120).fsms() {
                serial.entry(machine.to_owned()).or_default().merge(cov);
            }
        }
        // Parallel sweep over the same seeds, merged shard-wise.
        let shards = sweep(items, jobs, |(host, s), _| shard_report(host, s, 120));
        let merged = Report::merge_shards(&shards);
        let parallel: std::collections::BTreeMap<String, xg_sim::TransitionCoverage> = merged
            .fsms()
            .map(|(m, c)| (m.to_owned(), c.clone()))
            .collect();
        prop_assert!(!serial.is_empty(), "stress shards recorded no machine coverage");
        prop_assert_eq!(serial, parallel);
    }

    /// Profiled shard reports merged in a random permutation serialize to
    /// exactly the JSON of the serial in-order merge: dispatch counters
    /// and epoch series *sum* (commutative), `.hwm`-suffixed keys take
    /// the *max* (commutative and idempotent), so the profile section —
    /// like every other section — is permutation-invariant. The merged
    /// high-water marks also dominate every shard's own mark.
    #[test]
    fn profile_merge_is_permutation_invariant(
        seed in 0u64..1_000,
        perm_seed in any::<u64>(),
    ) {
        let mut shards = Vec::new();
        for (i, host) in [HostProtocol::Hammer, HostProtocol::Mesi, HostProtocol::Hammer]
            .into_iter()
            .enumerate()
        {
            shards.push(profiled_shard_report(host, seed + i as u64, 120));
        }
        for r in &shards {
            prop_assert!(
                r.profile_get("events.total") > 0,
                "profiled shard recorded no dispatches"
            );
        }
        let merged = Report::merge_shards(&shards);
        let serial = merged.to_json();
        for r in &shards {
            prop_assert!(merged.profile_get("queue.hwm") >= r.profile_get("queue.hwm"));
            prop_assert!(merged.profile_get("events.total") >= r.profile_get("events.total"));
        }
        prop_assert_eq!(
            merged.profile_get("events.total"),
            shards.iter().map(|r| r.profile_get("events.total")).sum::<u64>()
        );
        shuffle(&mut shards, perm_seed);
        let permuted = Report::merge_shards(&shards).to_json();
        prop_assert_eq!(serial, permuted);
    }

    /// A parallel sweep returns the same outcomes in the same order as
    /// the serial path, for any seed and any worker count.
    #[test]
    fn parallel_sweep_matches_serial(
        seed in 0u64..1_000,
        jobs in 2usize..5,
    ) {
        let items: Vec<(HostProtocol, u64)> = vec![
            (HostProtocol::Hammer, seed),
            (HostProtocol::Mesi, seed + 1),
            (HostProtocol::Hammer, seed + 2),
            (HostProtocol::Mesi, seed + 3),
        ];
        let serial = sweep(items.clone(), 1, |(host, s), _| {
            shard_report(host, s, 120).to_json()
        });
        let parallel = sweep(items, jobs, |(host, s), _| {
            shard_report(host, s, 120).to_json()
        });
        prop_assert_eq!(serial, parallel);
    }
}

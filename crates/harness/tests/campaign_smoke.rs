//! End-to-end smoke test for the coverage-guided campaign: a tiny
//! campaign against one guarded configuration must run clean, build a
//! corpus, and summarize itself in the report's `fuzz` section.

use xg_core::XgVariant;
use xg_harness::{run_campaign, AccelOrg, CampaignOpts, HostProtocol, SystemConfig};

#[test]
fn tiny_campaign_runs_clean_and_builds_a_corpus() {
    let base = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        ..SystemConfig::default()
    };
    let opts = CampaignOpts {
        generations: 3,
        batch: 3,
        run_len: 20,
        cpu_ops: 200,
        ..CampaignOpts::default()
    };
    let out = run_campaign(&base, &opts);

    assert_eq!(out.runs, 9);
    assert!(out.injected > 0, "schedules inject messages");
    assert!(
        out.failures.is_empty(),
        "guarded host must stay safe: {:?}",
        out.failures.iter().map(|f| &f.summary).collect::<Vec<_>>()
    );
    assert!(out.distinct_pairs() > 0, "coverage feedback is live");
    assert!(!out.corpus.is_empty(), "first generation always discovers");
    // The guard should be reporting plenty of OS errors for this garbage.
    assert!(out.report.get("os.errors_total") > 0);

    // The report's fuzz section carries the campaign summary.
    assert_eq!(out.report.fuzz_get("campaign_runs"), out.runs);
    assert_eq!(out.report.fuzz_get("campaign_injected"), out.injected);
    assert_eq!(
        out.report.fuzz_get("campaign_distinct_pairs"),
        out.distinct_pairs()
    );
    assert_eq!(out.report.fuzz_get("campaign_violations"), 0);
    assert_eq!(out.report.fuzz_get("campaign_deadlocks"), 0);

    // And it survives the JSON round trip (what CI artifacts store).
    let back = xg_sim::Report::from_json(&out.report.to_json()).unwrap();
    assert_eq!(back.fuzz_get("campaign_runs"), out.runs);
}

/// The multi-guard campaign path: with `num_accels = 2` every run carries
/// a correct guarded sibling. The campaign must still run clean, and the
/// merged per-guard section must pin every OS error on the attacked guard
/// while the sibling stays spotless and alive.
#[test]
fn two_guard_campaign_contains_the_blast() {
    let base = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        ..SystemConfig::default()
    };
    let opts = CampaignOpts {
        generations: 2,
        batch: 3,
        run_len: 15,
        cpu_ops: 150,
        num_accels: 2,
        ..CampaignOpts::default()
    };
    let out = run_campaign(&base, &opts);

    assert_eq!(out.runs, 6);
    assert!(
        out.failures.is_empty(),
        "two-guard campaign must stay safe: {:?}",
        out.failures.iter().map(|f| &f.summary).collect::<Vec<_>>()
    );
    // Attribution: the attacked guard rejected the garbage; the sibling
    // guard had nothing to reject and its tester saw clean data while
    // still making progress.
    assert!(
        out.report.guard_get("xg", "os_errors") > 0,
        "attack engaged"
    );
    assert_eq!(out.report.guard_get("a1_xg", "os_errors"), 0);
    assert_eq!(out.report.guard_get("a1_xg", "data_errors"), 0);
    assert!(out.report.guard_get("a1_xg", "ops_completed") > 0);
    // Totals still line up with the single-guard bookkeeping.
    assert_eq!(out.report.fuzz_get("campaign_runs"), out.runs);
    assert_eq!(out.report.fuzz_get("campaign_violations"), 0);
    assert_eq!(out.report.fuzz_get("campaign_deadlocks"), 0);
}

#[test]
fn campaign_is_deterministic_across_worker_counts() {
    let base = SystemConfig {
        host: HostProtocol::Mesi,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::Transactional,
        },
        ..SystemConfig::default()
    };
    let opts = |jobs| CampaignOpts {
        generations: 2,
        batch: 3,
        run_len: 15,
        cpu_ops: 150,
        jobs: Some(jobs),
        ..CampaignOpts::default()
    };
    let serial = run_campaign(&base, &opts(1));
    let parallel = run_campaign(&base, &opts(4));
    assert_eq!(serial.runs, parallel.runs);
    assert_eq!(serial.injected, parallel.injected);
    assert_eq!(serial.distinct_pairs(), parallel.distinct_pairs());
    assert_eq!(serial.corpus.len(), parallel.corpus.len());
    for (a, b) in serial.corpus.iter().zip(&parallel.corpus) {
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.energy, b.energy);
    }
}

//! Auto-generated minimal reproducer (deadlock); regenerate with
//! `xg-fuzz --minimize`. 1 injected message(s), sim seed 0x51ab.
//!
//! History: the fuzz campaign caught a planted `test_swallow_invs` guard
//! bug (forwarded invalidations silently dropped → the host requester
//! wedges) as a deadlock, and `minimize` shrank the failing schedule to
//! this single legal read of a CPU-pool block. Committed against the
//! fixed (default) build, the asserts below are the regression gate; see
//! `tests/shrinker_demo.rs` for the workflow that produced this file.

use xg_core::XgVariant;
use xg_harness::campaign::{run_schedule, CampaignOpts};
use xg_harness::fuzz::Schedule;
use xg_harness::{AccelOrg, HostProtocol, SystemConfig};
use xg_sim::FaultSpec;

#[test]
fn repro_swallowed_inv() {
    let schedule = Schedule::from_text("xg-schedule v1\ns 1 262145 0 1 0\n").unwrap();
    let base = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        strict_host: false,
        ..SystemConfig::default()
    };
    let opts = CampaignOpts {
        cpu_ops: 150,
        pool_blocks: 16,
        shrink_caches: true,
        faults: FaultSpec {
            drop_pct: 0,
            dup_pct: 0,
            delay_spike_pct: 25,
            reorder_pct: 10,
            spike_cycles: 800,
            burst_len: 3,
        },
        ..CampaignOpts::default()
    };
    let out = run_schedule(&base, &opts, &schedule, 0x51ab);
    assert_eq!(out.host_violations, 0, "host protocol violations");
    assert_eq!(out.cpu_data_errors, 0, "cpu data corruption");
    assert!(!out.deadlocked, "host deadlocked");
}

//! Full-matrix integration tests: the §4.1 stress test and §4.2-style
//! fuzzing across every evaluated configuration.

use xg_core::XgVariant;
use xg_harness::{
    run_fuzz, run_stress, run_workload, AccelOrg, FuzzOpts, HostProtocol, Pattern, StressOpts,
    SystemConfig,
};

fn stress_opts(ops: u64) -> StressOpts {
    StressOpts {
        ops,
        ..StressOpts::default()
    }
}

#[test]
fn stress_all_twelve_configurations() {
    // `XG_BANKS` / `XG_THREADS` let CI re-run this clean-stress gate on a
    // banked and/or partitioned execution shape; the assertions below are
    // behavioral (no byte-compare), so any shape must pass them.
    for cfg in SystemConfig::matrix(7) {
        let cfg = cfg.apply_env_overrides();
        let name = cfg.exec_name();
        let out = run_stress(&cfg, &stress_opts(600));
        assert!(
            !out.deadlocked,
            "{name}: deadlocked after {} ops",
            out.completed
        );
        assert_eq!(
            out.data_errors, 0,
            "{name}: data errors: {:?}",
            out.error_log
        );
        assert!(out.completed >= 600, "{name}: only {} ops", out.completed);
        // No controller saw an impossible event.
        assert_eq!(
            out.report.sum_suffix(".protocol_violation"),
            0,
            "{name}: protocol violations"
        );
        assert_eq!(
            out.report.get("os.errors_total"),
            0,
            "{name}: spurious guard errors"
        );
        assert!(out.transitions > 10, "{name}: no coverage collected");
    }
}

#[test]
fn stress_is_deterministic_per_seed() {
    let cfg = SystemConfig {
        seed: 42,
        ..SystemConfig::matrix(42)[2].clone() // hammer/xg_full_l1
    };
    let a = run_stress(&cfg, &stress_opts(400));
    let b = run_stress(&cfg, &stress_opts(400));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.completed, b.completed);
    let cfg2 = SystemConfig { seed: 43, ..cfg };
    let c = run_stress(&cfg2, &stress_opts(400));
    assert_ne!(
        (a.cycles, a.completed),
        (c.cycles, c.completed),
        "different seeds should diverge"
    );
}

#[test]
fn stress_many_seeds_on_guarded_configs() {
    // Extra seeds over the Crossing Guard configurations — the protocols
    // under test here are the paper's contribution.
    for seed in [11, 22, 33] {
        for (host, variant, two_level) in [
            (HostProtocol::Hammer, XgVariant::FullState, false),
            (HostProtocol::Hammer, XgVariant::Transactional, true),
            (HostProtocol::Mesi, XgVariant::FullState, true),
            (HostProtocol::Mesi, XgVariant::Transactional, false),
        ] {
            let cfg = SystemConfig {
                host,
                accel: AccelOrg::Xg { variant, two_level },
                accel_cores: if two_level { 2 } else { 1 },
                seed,
                ..SystemConfig::default()
            }
            .apply_env_overrides();
            let out = run_stress(&cfg, &stress_opts(500));
            assert!(!out.deadlocked, "{} seed {seed}", cfg.name());
            assert_eq!(
                out.data_errors,
                0,
                "{} seed {seed}: {:?}",
                cfg.name(),
                out.error_log
            );
        }
    }
}

#[test]
fn fuzzing_the_guard_never_breaks_the_host() {
    for (host, variant) in [
        (HostProtocol::Hammer, XgVariant::FullState),
        (HostProtocol::Hammer, XgVariant::Transactional),
        (HostProtocol::Mesi, XgVariant::FullState),
        (HostProtocol::Mesi, XgVariant::Transactional),
    ] {
        let cfg = SystemConfig {
            host,
            accel: AccelOrg::FuzzXg { variant },
            seed: 5,
            ..SystemConfig::default()
        };
        let fuzz = FuzzOpts {
            messages: 400,
            ..FuzzOpts::default()
        };
        let out = run_fuzz(&cfg, &fuzz, 800);
        let name = cfg.name();
        assert!(!out.deadlocked, "{name}: host deadlocked under fuzz");
        assert_eq!(
            out.host_violations, 0,
            "{name}: fuzz traffic reached host controllers"
        );
        assert_eq!(out.cpu_data_errors, 0, "{name}: CPU data corrupted");
        assert!(out.cpu_ops_completed >= 800, "{name}: host starved");
        assert!(
            out.os_errors > 0,
            "{name}: violations must be reported to the OS"
        );
        assert!(out.injected >= 400);
    }
}

#[test]
fn fuzzing_an_unprotected_host_shows_the_problem() {
    // The control experiment: the same garbage aimed directly at the host
    // protocol (a buggy accelerator-side cache). The *unmodified strict*
    // host observes impossible events — exactly what Crossing Guard
    // prevents. (We do not require a deadlock — only that the host's
    // correctness envelope is pierced.)
    let mut pierced = false;
    for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
        let cfg = SystemConfig {
            host,
            accel: AccelOrg::FuzzAccelSide,
            strict_host: true,
            seed: 6,
            ..SystemConfig::default()
        };
        let out = run_fuzz(
            &cfg,
            &FuzzOpts {
                messages: 400,
                ..FuzzOpts::default()
            },
            400,
        );
        pierced |= out.host_violations > 0 || out.deadlocked || out.cpu_data_errors > 0;
    }
    assert!(
        pierced,
        "raw fuzzing should disturb an unprotected strict host"
    );
}

#[test]
fn weak_sharing_accelerator_is_still_host_safe() {
    // The weak two-level accelerator may serve stale reads internally —
    // which the single-writer value checker tolerates (staleness is
    // monotone) — but must never corrupt values or disturb the host.
    for (host, seed) in [(HostProtocol::Hammer, 61), (HostProtocol::Mesi, 62)] {
        let cfg = SystemConfig {
            host,
            accel: AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: true,
            },
            accel_cores: 2,
            weak_accel_sharing: true,
            seed,
            ..SystemConfig::default()
        };
        let out = run_stress(&cfg, &stress_opts(800));
        assert!(!out.deadlocked, "{} weak", cfg.name());
        assert_eq!(
            out.data_errors,
            0,
            "{} weak: {:?}",
            cfg.name(),
            out.error_log
        );
        assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
        assert_eq!(out.report.get("os.errors_total"), 0);
    }
}

#[test]
fn workload_runs_complete_on_guarded_config() {
    let cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        },
        seed: 9,
        ..SystemConfig::default()
    };
    for pattern in [Pattern::Streaming, Pattern::GraphWalk] {
        let out = run_workload(&cfg, pattern, 2_000);
        assert!(!out.incomplete, "{}: incomplete", pattern.name());
        assert!(out.accel_runtime > 0);
        assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
        assert_eq!(out.report.get("os.errors_total"), 0);
    }
}

#[test]
fn performance_shape_host_side_is_slowest() {
    // The paper's headline performance claim: XG performs similarly to the
    // unsafe accelerator-side cache and better than the safe host-side
    // cache (§1). Check the ordering on a cache-friendly workload.
    let mk = |accel| SystemConfig {
        host: HostProtocol::Hammer,
        accel,
        seed: 10,
        ..SystemConfig::default()
    };
    let ops = 3_000;
    let accel_side = run_workload(&mk(AccelOrg::AccelSide), Pattern::Blocked, ops);
    let host_side = run_workload(&mk(AccelOrg::HostSide), Pattern::Blocked, ops);
    let xg = run_workload(
        &mk(AccelOrg::Xg {
            variant: XgVariant::FullState,
            two_level: false,
        }),
        Pattern::Blocked,
        ops,
    );
    assert!(!accel_side.incomplete && !host_side.incomplete && !xg.incomplete);
    assert!(
        host_side.accel_runtime > xg.accel_runtime,
        "host-side ({}) should be slower than XG ({})",
        host_side.accel_runtime,
        xg.accel_runtime
    );
    // XG within 2x of the unsafe baseline on this workload (the paper
    // reports "similar"; our latencies are configured, not calibrated).
    assert!(
        xg.accel_runtime < accel_side.accel_runtime * 2,
        "xg ({}) should be near accel-side ({})",
        xg.accel_runtime,
        accel_side.accel_runtime
    );
}

/// Long-running soak in the spirit of the paper's 22 compute-years —
/// ignored by default; run with `cargo test -- --ignored` (use release
/// mode) to scale coverage up.
#[test]
#[ignore = "long-running soak; run explicitly with --ignored in release mode"]
fn soak_all_configurations() {
    for seed in [1001u64, 2002, 3003, 4004, 5005] {
        for cfg in SystemConfig::matrix(seed) {
            let out = run_stress(&cfg, &stress_opts(25_000));
            assert!(!out.deadlocked, "{} seed {seed}", cfg.name());
            assert_eq!(
                out.data_errors,
                0,
                "{} seed {seed}: {:?}",
                cfg.name(),
                out.error_log
            );
            assert_eq!(out.report.sum_suffix(".protocol_violation"), 0);
            assert_eq!(out.report.get("os.errors_total"), 0);
        }
    }
}

/// Regression: `mesi/xg_tx_l1` seed 1 deadlocked around op 871 when host
/// demands accumulated while the guard was absorbing the trailing InvAck
/// of a Put-vs-Inv race; those late demands were dropped unanswered.
#[test]
fn regression_late_demands_after_race_absorption() {
    let cfg = SystemConfig {
        host: HostProtocol::Mesi,
        accel: AccelOrg::Xg {
            variant: XgVariant::Transactional,
            two_level: false,
        },
        seed: 1,
        ..SystemConfig::default()
    };
    let out = run_stress(&cfg, &stress_opts(2_000));
    assert!(!out.deadlocked);
    assert_eq!(out.data_errors, 0, "{:?}", out.error_log);
}

//! End-to-end shrinker demonstration against a *planted* guard bug.
//!
//! `XgConfig::test_swallow_invs` makes the guard silently drop demands it
//! should forward as invalidations — the host requester never hears back
//! and wedges. The campaign machinery must (a) catch the deadlock, (b)
//! ddmin the noisy failing schedule to a minimal reproducer of at most 10
//! injected messages (it is 1 in practice), and (c) emit a self-contained
//! regression test that *passes* on the fixed build. The committed output
//! of this workflow lives in `tests/repro_swallowed_inv.rs`.

use xg_core::XgVariant;
use xg_harness::campaign::{
    guarantee_probe, minimize, repro_json, repro_test_source, run_schedule, CampaignFailure,
    CampaignOpts, FailureKind, CPU_POOL_BLOCK,
};
use xg_harness::fuzz::{FuzzStep, Schedule};
use xg_harness::{AccelOrg, HostProtocol, SystemConfig};

const SEED: u64 = 0x51AB;

fn buggy_base() -> SystemConfig {
    let mut cfg = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        ..SystemConfig::default()
    };
    cfg.xg.test_swallow_invs = true;
    cfg
}

fn opts() -> CampaignOpts {
    CampaignOpts {
        cpu_ops: 150,
        ..CampaignOpts::default()
    }
}

#[test]
fn planted_bug_minimizes_to_a_tiny_reproducer() {
    let buggy = buggy_base();
    let opts = opts();

    // A deliberately noisy failing input: the full guarantee probe plus
    // chaff. The deadlock only needs the single legal GetS that makes the
    // accelerator a sharer of a CPU-pool block.
    let mut noisy = guarantee_probe();
    for i in 0..6 {
        noisy.steps.push(FuzzStep {
            delay: 3 + i,
            block: i,
            kind: (i % 5) as u8,
            payload_blocks: 1,
            fill: 0x33,
        });
    }
    let fails = |s: &Schedule| run_schedule(&buggy, &opts, s, SEED).deadlocked;
    assert!(
        fails(&noisy),
        "planted bug must deadlock the noisy schedule"
    );

    let min = minimize(&noisy, fails);
    assert!(
        min.steps.len() <= 10,
        "minimized reproducer has {} steps, want <= 10:\n{}",
        min.steps.len(),
        min.to_text()
    );
    // In practice a single legal read of the CPU pool suffices (any block
    // of the read-only window works; ddmin keeps whichever it tried last).
    assert_eq!(min.steps.len(), 1, "expected a 1-message reproducer");
    let window = CPU_POOL_BLOCK..CPU_POOL_BLOCK + 4;
    assert!(
        window.contains(&min.steps[0].block),
        "reproducer step outside the CPU-pool window: {}",
        min.to_text()
    );
    assert!(fails(&min), "minimized schedule still reproduces");

    // The emitted regression test asserts the safety claims, so against
    // the *fixed* build (default config) the same schedule must pass.
    let fixed = SystemConfig {
        host: HostProtocol::Hammer,
        accel: AccelOrg::FuzzXg {
            variant: XgVariant::FullState,
        },
        ..SystemConfig::default()
    };
    let out = run_schedule(&fixed, &opts, &min, SEED);
    assert_eq!(out.host_violations, 0);
    assert_eq!(out.cpu_data_errors, 0);
    assert!(!out.deadlocked, "fixed build must not deadlock");

    // Artifact emission round-trips the schedule.
    let failure = CampaignFailure {
        kind: FailureKind::Deadlock,
        seed: SEED,
        schedule: min.clone(),
        summary: "host deadlocked".into(),
    };
    let src = repro_test_source("repro_swallowed_inv", &fixed, &opts, &failure);
    assert!(src.contains("fn repro_swallowed_inv()"));
    assert!(src.contains(&min.to_text().replace('\n', "\\n")));
    let json = repro_json(&fixed, &opts, &failure);
    assert!(json.contains("\"kind\": \"deadlock\""));
    assert!(json.contains("\"steps\": 1"));
}

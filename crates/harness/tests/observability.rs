//! Integration tests for the observability subsystem (`xg-prof`): the
//! byte-identity guarantee of disabled instrumentation, strip-back of
//! profiled reports, and the Chrome trace-event schema of emitted
//! timelines.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use xg_harness::{run_stress, run_stress_with, Instrumentation, StressOpts, SystemConfig};
use xg_sim::{JsonValue, ProfileConfig, TimelineConfig};

/// Same sizing and seed as the golden fixtures in
/// `tests/golden_single_accel.rs`, so profiled runs can be compared
/// against the blessed JSON byte for byte.
const GOLDEN_SEED: u64 = 0xD1FF;

fn opts() -> StressOpts {
    StressOpts {
        ops: 400,
        ..StressOpts::default()
    }
}

fn fixture_path(cfg: &SystemConfig) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{}.json", cfg.name().replace('/', "_")))
}

/// Drops the per-guard section, exactly as the golden fixture test does.
fn strip_guards(json: &str) -> String {
    let parsed = JsonValue::parse(json).expect("report JSON parses");
    let JsonValue::Obj(mut root) = parsed else {
        panic!("report JSON is an object");
    };
    root.remove("guards");
    JsonValue::Obj(root).to_string()
}

/// With instrumentation at its default (everything off), the report of
/// every matrix configuration carries no `profile` section at all — the
/// serialized JSON is byte-identical to the pre-observability goldens.
/// And with profiling *on*, stripping the profile section back out
/// recovers those same bytes: instrumentation observes the run without
/// perturbing it.
#[test]
fn profiled_reports_strip_back_to_the_golden_bytes() {
    let mut failures = Vec::new();
    for cfg in SystemConfig::matrix(GOLDEN_SEED) {
        let instr = Instrumentation {
            profile: ProfileConfig::on(),
            timeline: Some(TimelineConfig::default()),
            ..Instrumentation::off()
        };
        let out = run_stress_with(&cfg, &opts(), &instr);
        assert_eq!(out.data_errors, 0, "{}: run must be clean", cfg.name());
        assert!(!out.deadlocked, "{}: run deadlocked", cfg.name());
        let json = out.report.to_json();
        assert!(
            json.contains("\"profile\""),
            "{}: profiled run recorded no profile section",
            cfg.name()
        );
        assert!(
            out.report.profile_get("events.total") > 0,
            "{}: no events attributed",
            cfg.name()
        );
        assert!(
            out.timeline.is_some(),
            "{}: timeline requested but not recorded",
            cfg.name()
        );
        let stripped = strip_guards(&out.report.without_profile().to_json());
        let want = fs::read_to_string(fixture_path(&cfg))
            .unwrap_or_else(|e| panic!("{}: missing golden fixture: {e}", cfg.name()));
        if stripped != want {
            failures.push(cfg.name());
        }
    }
    assert!(
        failures.is_empty(),
        "profiling perturbed the run (stripped report != golden) for {failures:?}"
    );
}

/// A default (uninstrumented) run serializes no `profile` key and attaches
/// no timeline, keeping disabled-mode reports byte-identical by
/// construction.
#[test]
fn disabled_instrumentation_leaves_no_trace_in_the_report() {
    let cfg = SystemConfig::matrix(GOLDEN_SEED)[2].clone();
    let out = run_stress(&cfg, &opts());
    assert_eq!(out.data_errors, 0);
    let json = out.report.to_json();
    assert!(
        !json.contains("\"profile\""),
        "default run serialized a profile section:\n{json}"
    );
    assert!(out.timeline.is_none());
}

/// Validates an emitted timeline against the Chrome trace-event format:
/// the document is `{"traceEvents": [...]}`, every event carries the
/// required `ph`/`ts`/`pid`/`tid`/`name` fields with known phase codes,
/// and `ts` is monotonically non-decreasing within every `(pid, tid)`
/// track (what Perfetto requires to render spans without warnings).
#[test]
fn emitted_timeline_conforms_to_the_chrome_trace_event_schema() {
    let cfg = SystemConfig {
        seed: GOLDEN_SEED,
        ..SystemConfig::default()
    };
    let instr = Instrumentation {
        timeline: Some(TimelineConfig::default()),
        ..Instrumentation::off()
    };
    let out = run_stress_with(&cfg, &opts(), &instr);
    let trace = out.timeline.expect("timeline was requested");

    let doc = JsonValue::parse(&trace).expect("timeline is valid JSON");
    let root = doc.as_obj().expect("timeline root is an object");
    let events = root
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("root has a traceEvents array");
    assert!(!events.is_empty(), "timeline recorded no events");

    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut phases: BTreeMap<String, usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_obj()
            .unwrap_or_else(|| panic!("event {i} is an object"));
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("event {i} has a ph field"));
        assert!(
            matches!(ph, "M" | "i" | "X"),
            "event {i}: unknown phase {ph:?}"
        );
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_num)
            .unwrap_or_else(|| panic!("event {i} has a numeric ts"));
        let pid = ev
            .get("pid")
            .and_then(JsonValue::as_num)
            .unwrap_or_else(|| panic!("event {i} has a numeric pid"));
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_num)
            .unwrap_or_else(|| panic!("event {i} has a numeric tid"));
        assert!(
            ev.get("name").and_then(JsonValue::as_str).is_some(),
            "event {i} has a string name"
        );
        if ph == "i" {
            assert_eq!(
                ev.get("s").and_then(JsonValue::as_str),
                Some("t"),
                "event {i}: instants carry a thread scope"
            );
        }
        if ph == "X" {
            assert!(
                ev.get("dur").and_then(JsonValue::as_num).is_some(),
                "event {i}: complete events carry a numeric dur"
            );
        }
        *phases.entry(ph.to_owned()).or_insert(0) += 1;
        if ph != "M" {
            let track = (pid, tid);
            if let Some(&prev) = last_ts.get(&track) {
                assert!(
                    ts >= prev,
                    "event {i}: ts {ts} < {prev} on track {track:?} — not monotonic"
                );
            }
            last_ts.insert(track, ts);
        }
    }
    // A guarded stress run must produce all three phases: track metadata,
    // per-component instants, and per-address lifecycle spans.
    for ph in ["M", "i", "X"] {
        assert!(
            phases.get(ph).copied().unwrap_or(0) > 0,
            "timeline has no {ph:?} events (got {phases:?})"
        );
    }
}

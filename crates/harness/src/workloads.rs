//! Synthetic workload generators — Rodinia proxies (see `DESIGN.md`).
//!
//! The paper's performance evaluation runs GPGPU kernels on gem5-gpu. The
//! performance-relevant property of those kernels is the *shape* of their
//! memory traffic — footprint, reuse, read/write mix, dependence, and how
//! much data crosses between host and accelerator. Each [`Pattern`] below
//! reproduces one such shape with a deterministic index-based generator so
//! runs are exactly repeatable:
//!
//! | pattern | Rodinia analogue | traffic shape |
//! |---------|------------------|---------------|
//! | `Streaming` | srad, streamcluster | long unit-stride scans, some writes |
//! | `Stencil` | hotspot | neighborhood reads, per-point write |
//! | `Blocked` | lud, video decode | high locality within tiles |
//! | `GraphWalk` | bfs | dependent, unpredictable reads |
//! | `Reduction` | kmeans | scans plus hot accumulator writes |
//! | `ProducerConsumer` | host-fed kernels | fine-grained host↔accel sharing |

use std::collections::HashMap;

use xg_mem::Addr;
use xg_proto::{CoreKind, CoreMsg, Ctx, Message};
use xg_sim::{Component, Cycle, NodeId, Report};

/// A deterministic memory access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Unit-stride scan over the footprint; every 4th access writes.
    Streaming,
    /// 3-point neighborhood reads followed by a write per point.
    Stencil,
    /// Tile-at-a-time: 16 sequential words per tile, half writes.
    Blocked,
    /// Data-dependent pointer chasing: one outstanding access, scrambled
    /// addresses, reads only.
    GraphWalk,
    /// Sequential reads with every 8th access writing one of 4 hot
    /// accumulator words.
    Reduction,
    /// Alternates between a private region and a region shared with other
    /// cores (fine-grained host↔accelerator sharing).
    ProducerConsumer,
    /// Two hot words in one block, alternating store/load: every hierarchy
    /// running this pattern fights for exclusive ownership of the same
    /// block, so it migrates back and forth across the crossing.
    PingPong,
    /// Logically independent words packed into a single block: each store
    /// invalidates every other hierarchy's copy even though no word is
    /// actually shared.
    FalseSharing,
}

impl Pattern {
    /// All patterns, for sweeps.
    pub const ALL: [Pattern; 6] = [
        Pattern::Streaming,
        Pattern::Stencil,
        Pattern::Blocked,
        Pattern::GraphWalk,
        Pattern::Reduction,
        Pattern::ProducerConsumer,
    ];

    /// Cross-hierarchy sharing patterns for multi-accelerator runs. Kept
    /// out of [`Pattern::ALL`] so single-accelerator sweeps are unchanged.
    pub const SHARING: [Pattern; 2] = [Pattern::PingPong, Pattern::FalseSharing];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Streaming => "streaming",
            Pattern::Stencil => "stencil",
            Pattern::Blocked => "blocked",
            Pattern::GraphWalk => "graph",
            Pattern::Reduction => "reduction",
            Pattern::ProducerConsumer => "prodcons",
            Pattern::PingPong => "pingpong",
            Pattern::FalseSharing => "fsharing",
        }
    }

    /// Maximum outstanding requests for this pattern (1 models true data
    /// dependence).
    pub fn max_in_flight(self) -> usize {
        match self {
            Pattern::GraphWalk | Pattern::PingPong => 1,
            _ => 4,
        }
    }

    /// The `n`-th access: `(word_offset, is_store)` within a footprint of
    /// `footprint_words` 8-byte words.
    pub fn access(self, n: u64, footprint_words: u64) -> (u64, bool) {
        let fp = footprint_words.max(8);
        match self {
            Pattern::Streaming => (n % fp, n % 4 == 3),
            Pattern::Stencil => {
                // Per point p: read p-1, p, p+1, then write p.
                let p = (n / 4) % fp;
                match n % 4 {
                    0 => (p.saturating_sub(1), false),
                    1 => (p, false),
                    2 => ((p + 1) % fp, false),
                    _ => (p, true),
                }
            }
            Pattern::Blocked => {
                let tile = (n / 16) % (fp / 16).max(1);
                let word = n % 16;
                (tile * 16 + word, word >= 8)
            }
            Pattern::GraphWalk => (scramble(n) % fp, false),
            Pattern::Reduction => {
                if n % 8 == 7 {
                    (scramble(n) % 4, true) // hot accumulators
                } else {
                    (8 + n % (fp - 8), false)
                }
            }
            Pattern::ProducerConsumer => {
                // Even accesses: private half; odd: shared half (offset so
                // all cores collide there), writes on every 3rd access.
                if n.is_multiple_of(2) {
                    (n % (fp / 2), n.is_multiple_of(3))
                } else {
                    (fp / 2 + scramble(n) % (fp / 2).min(32), n.is_multiple_of(3))
                }
            }
            // 8 words = one 64-byte block: both sharing patterns confine
            // all traffic to a single line so it has to migrate between
            // hierarchies.
            Pattern::PingPong => ((n / 2) % 2, n.is_multiple_of(2)),
            Pattern::FalseSharing => (scramble(n) % 8, n.is_multiple_of(2)),
        }
    }
}

/// SplitMix64-style scramble for data-dependent patterns.
fn scramble(n: u64) -> u64 {
    let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A core that executes a [`Pattern`] for a fixed number of accesses and
/// records when it finished.
pub struct WorkloadCore {
    name: String,
    cache: NodeId,
    pattern: Pattern,
    base: u64,
    footprint_words: u64,
    ops_target: u64,
    issued: u64,
    completed: u64,
    in_flight: HashMap<u64, ()>,
    next_id: u64,
    done_at: Option<Cycle>,
    latency_sum: u64,
    issue_times: HashMap<u64, u64>,
}

impl WorkloadCore {
    /// Creates a workload core over `[base, base + footprint_words * 8)`.
    pub fn new(
        name: impl Into<String>,
        cache: NodeId,
        pattern: Pattern,
        base: u64,
        footprint_words: u64,
        ops_target: u64,
    ) -> Self {
        WorkloadCore {
            name: name.into(),
            cache,
            pattern,
            base,
            footprint_words,
            ops_target,
            issued: 0,
            completed: 0,
            in_flight: HashMap::new(),
            next_id: 0,
            done_at: None,
            latency_sum: 0,
            issue_times: HashMap::new(),
        }
    }

    /// Accesses completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cycle at which the last access completed (None if unfinished).
    pub fn done_at(&self) -> Option<Cycle> {
        self.done_at
    }

    /// Average access latency in cycles (0 before any completion).
    pub fn avg_latency(&self) -> u64 {
        self.latency_sum.checked_div(self.completed).unwrap_or(0)
    }

    fn issue(&mut self, ctx: &mut Ctx<'_>) {
        while self.issued < self.ops_target && self.in_flight.len() < self.pattern.max_in_flight() {
            let (word, store) = self.pattern.access(self.issued, self.footprint_words);
            let addr = self.base + word * 8;
            let id = self.next_id;
            self.next_id += 1;
            self.issued += 1;
            self.in_flight.insert(id, ());
            self.issue_times.insert(id, ctx.now().as_u64());
            let kind = if store {
                CoreKind::Store { value: self.issued }
            } else {
                CoreKind::Load
            };
            ctx.send(
                self.cache,
                CoreMsg {
                    id,
                    addr: Addr::new(addr),
                    kind,
                }
                .into(),
            );
        }
    }
}

impl Component<Message> for WorkloadCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Core(c) = msg else { return };
        if self.in_flight.remove(&c.id).is_none() {
            return;
        }
        if let Some(t0) = self.issue_times.remove(&c.id) {
            self.latency_sum += ctx.now().as_u64() - t0;
        }
        self.completed += 1;
        ctx.note_progress();
        if self.completed >= self.ops_target {
            self.done_at = Some(ctx.now());
            return;
        }
        self.issue(ctx);
    }

    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        self.issue(ctx);
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.ops_completed"), self.completed);
        out.add(format!("{n}.latency_sum"), self.latency_sum);
        if let Some(done) = self.done_at {
            out.set(format!("{n}.done_at"), done.as_u64());
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_stay_in_footprint() {
        for p in Pattern::ALL.iter().chain(&Pattern::SHARING) {
            for n in 0..10_000u64 {
                let (word, _) = p.access(n, 256);
                assert!(word < 256, "{p:?} escaped at n={n}: {word}");
            }
        }
    }

    #[test]
    fn sharing_patterns_confine_traffic_to_one_block() {
        // 8 words of 8 bytes = one 64-byte block; both cross-hierarchy
        // sharing patterns must keep every access inside it so the block
        // bounces between hierarchies.
        for p in Pattern::SHARING {
            let mut stores = 0;
            for n in 0..1_000u64 {
                let (word, store) = p.access(n, 256);
                assert!(word < 8, "{p:?} left the shared block at n={n}: {word}");
                stores += u64::from(store);
            }
            assert!(stores > 0, "{p:?} never writes — nothing to ping-pong");
        }
        // Ping-pong is dependent (one outstanding); false sharing is not.
        assert_eq!(Pattern::PingPong.max_in_flight(), 1);
        assert!(Pattern::FalseSharing.max_in_flight() > 1);
        // ALL stays at six entries so existing sweeps are unperturbed.
        assert_eq!(Pattern::ALL.len(), 6);
    }

    #[test]
    fn patterns_are_deterministic() {
        for &p in Pattern::ALL.iter().chain(&Pattern::SHARING) {
            for n in [0u64, 7, 123, 9999] {
                assert_eq!(p.access(n, 128), p.access(n, 128));
            }
        }
    }

    #[test]
    fn streaming_is_unit_stride_and_graph_is_not() {
        let a: Vec<u64> = (0..8)
            .map(|n| Pattern::Streaming.access(n, 256).0)
            .collect();
        assert_eq!(a, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let g: Vec<u64> = (0..8)
            .map(|n| Pattern::GraphWalk.access(n, 256).0)
            .collect();
        let sorted = {
            let mut s = g.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(g, sorted, "graph walk should not be sequential");
    }

    #[test]
    fn writes_exist_but_are_minority_for_scans() {
        let stores = (0..1000)
            .filter(|&n| Pattern::Streaming.access(n, 256).1)
            .count();
        assert!(stores > 0 && stores < 500);
        assert!((0..1000).all(|n| !Pattern::GraphWalk.access(n, 256).1));
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = Pattern::ALL
            .iter()
            .chain(&Pattern::SHARING)
            .map(|p| p.name())
            .collect();
        assert_eq!(names.len(), Pattern::ALL.len() + Pattern::SHARING.len());
    }
}

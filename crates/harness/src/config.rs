//! System configuration: the paper's evaluation matrix.

use xg_accel::Prefetch;
use xg_core::{XgConfig, XgVariant};
use xg_mem::PermissionTable;
use xg_sim::FaultSpec;

/// Which host coherence protocol the system runs (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostProtocol {
    /// AMD-Hammer-like exclusive MOESI broadcast protocol.
    Hammer,
    /// Inclusive two-level MESI with exact sharer tracking.
    Mesi,
}

impl HostProtocol {
    /// Short tag for config names.
    pub fn tag(self) -> &'static str {
        match self {
            HostProtocol::Hammer => "hammer",
            HostProtocol::Mesi => "mesi",
        }
    }
}

/// How the accelerator connects to the host (paper Figure 2, plus the
/// fuzzing stand-ins used by the safety evaluation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelOrg {
    /// Figure 2(a): the accelerator implements a cache in the raw host
    /// protocol. Fast but *unsafe* and host-specific.
    AccelSide,
    /// Figure 2(b): no accelerator cache; loads/stores cross to a
    /// host-side cache. Safe but every access pays the crossing latency.
    HostSide,
    /// Figure 2(c)/(d): the accelerator's own cache(s) behind a Crossing
    /// Guard.
    Xg {
        /// Full State or Transactional.
        variant: XgVariant,
        /// Figure 2(d): private accel L1s under a shared accel L2.
        two_level: bool,
    },
    /// Safety evaluation: a fuzzer bombards the Crossing Guard interface.
    FuzzXg {
        /// Guard variant under attack.
        variant: XgVariant,
    },
    /// Safety baseline: a fuzzer speaks raw host protocol (what a buggy
    /// accelerator-side cache can do to an unprotected host).
    FuzzAccelSide,
}

impl AccelOrg {
    /// Short tag for config names.
    pub fn tag(&self) -> String {
        match self {
            AccelOrg::AccelSide => "accel_side".into(),
            AccelOrg::HostSide => "host_side".into(),
            AccelOrg::Xg { variant, two_level } => format!(
                "xg_{}_{}",
                match variant {
                    XgVariant::FullState => "full",
                    XgVariant::Transactional => "tx",
                },
                if *two_level { "l2" } else { "l1" }
            ),
            AccelOrg::FuzzXg { variant } => format!(
                "fuzz_xg_{}",
                match variant {
                    XgVariant::FullState => "full",
                    XgVariant::Transactional => "tx",
                }
            ),
            AccelOrg::FuzzAccelSide => "fuzz_accel_side".into(),
        }
    }
}

/// One accelerator hierarchy of a (possibly multi-accelerator) system:
/// its organization plus optional per-instance overrides. Each slot gets
/// its own guard instance (where guarded), its own cache hierarchy, and
/// its own host-protocol node identity.
#[derive(Debug, Clone)]
pub struct AccelSlot {
    /// How this hierarchy connects to the host.
    pub org: AccelOrg,
    /// Per-instance page permissions programmed into this slot's guard
    /// (`None` → the shared [`SystemConfig::xg`] table). Lets an OS map
    /// different pages to different accelerators, the setup the
    /// blast-radius experiment relies on.
    pub perms: Option<PermissionTable>,
}

impl From<AccelOrg> for AccelSlot {
    fn from(org: AccelOrg) -> Self {
        AccelSlot { org, perms: None }
    }
}

/// Full description of a simulated system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Host protocol.
    pub host: HostProtocol,
    /// Number of CPU cores (each with a private host cache).
    pub cpu_cores: usize,
    /// Accelerator organization (of every instance, unless `accels`
    /// overrides per slot).
    pub accel: AccelOrg,
    /// Number of independent accelerator hierarchies sharing this host.
    /// Ignored when `accels` is non-empty.
    pub num_accels: usize,
    /// Heterogeneous per-instance overrides; empty means `num_accels`
    /// copies of `accel`.
    pub accels: Vec<AccelSlot>,
    /// Accelerator cores (only >1 for the two-level organization).
    pub accel_cores: usize,
    /// Master seed.
    pub seed: u64,
    /// Host on-chip network latency range (unordered).
    pub host_link: (u64, u64),
    /// Host↔accelerator crossing latency range.
    pub crossing: (u64, u64),
    /// Memory latency in cycles.
    pub mem_latency: u64,
    /// CPU cache geometry (sets, ways).
    pub cpu_cache: (usize, usize),
    /// Accelerator L1 geometry (sets, ways).
    pub accel_cache: (usize, usize),
    /// Accelerator / host shared-L2 geometry (sets, ways).
    pub l2_cache: (usize, usize),
    /// Accelerator L1 prefetching policy.
    pub prefetch: Prefetch,
    /// Weak intra-accelerator sharing in the two-level organization
    /// (paper §2.1): sibling L1 reads may be stale until explicit flushes.
    pub weak_accel_sharing: bool,
    /// Crossing Guard configuration (variant is overridden by `accel`).
    pub xg: XgConfig,
    /// Run the *unmodified* host protocol (strict ack counting, no nack
    /// sinking, no ack/data interchange) — the §3.2 ablation.
    pub strict_host: bool,
    /// Fault-injection plan applied to the (unordered) guard ↔ home links.
    /// Zeroed by default; the fuzz campaign turns on delay spikes and
    /// reorder bursts here to attack the guard's timeout paths without
    /// breaking the host network's reliable-delivery assumption.
    pub host_faults: FaultSpec,
    /// Number of address-interleaved home banks (Hammer directories or
    /// MESI shared-L2 slices). `1` — the default — is the historical
    /// single-home system with byte-identical reports; `M > 1` splits the
    /// physical address space across `M` banks by the
    /// [`xg_mem::BlockAddr::bank`] hash, and every cache and guard routes
    /// each request to the owning bank.
    pub home_banks: usize,
    /// Worker threads for intra-run parallel execution. `0` — the default
    /// — runs the untouched single-threaded event loop. `W ≥ 1` partitions
    /// the system into shards (one per home bank, accelerator hierarchy,
    /// and CPU core/cache pair) driven by `W` workers under conservative
    /// time-window barriers; results are byte-identical at any `W` for a
    /// fixed partition, but differ from the `0` path (per-component RNG
    /// streams replace the single global stream).
    pub threads: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            host: HostProtocol::Hammer,
            cpu_cores: 2,
            accel: AccelOrg::Xg {
                variant: XgVariant::FullState,
                two_level: false,
            },
            num_accels: 1,
            accels: Vec::new(),
            accel_cores: 1,
            seed: 1,
            host_link: (2, 10),
            crossing: (40, 60),
            mem_latency: 100,
            cpu_cache: (64, 8),
            accel_cache: (64, 4),
            l2_cache: (256, 8),
            prefetch: Prefetch::Off,
            weak_accel_sharing: false,
            xg: XgConfig::default(),
            strict_host: false,
            host_faults: FaultSpec::NONE,
            home_banks: 1,
            threads: 0,
        }
    }
}

impl SystemConfig {
    /// The effective per-instance accelerator slots: `accels` verbatim if
    /// set, otherwise `num_accels` copies of `accel`. Never empty.
    pub fn accel_slots(&self) -> Vec<AccelSlot> {
        if !self.accels.is_empty() {
            return self.accels.clone();
        }
        vec![AccelSlot::from(self.accel.clone()); self.num_accels.max(1)]
    }

    /// A human-readable name: `hammer/xg_full_l1`, `mesi/host_side`, ...
    /// Multi-accelerator systems append the instance count
    /// (`hammer/xg_full_l1x2`) or join heterogeneous tags
    /// (`hammer/fuzz_xg_full+xg_full_l1`).
    pub fn name(&self) -> String {
        let slots = self.accel_slots();
        if slots.len() == 1 {
            return format!("{}/{}", self.host.tag(), slots[0].org.tag());
        }
        let tags: Vec<String> = slots.iter().map(|s| s.org.tag()).collect();
        if tags.windows(2).all(|w| w[0] == w[1]) {
            format!("{}/{}x{}", self.host.tag(), tags[0], tags.len())
        } else {
            format!("{}/{}", self.host.tag(), tags.join("+"))
        }
    }

    /// [`name`](SystemConfig::name) plus execution-shape qualifiers:
    /// `@b{M}` for `M > 1` home banks and `@t{W}` for `W ≥ 1` worker
    /// threads. Identical to `name()` at the defaults, so historical
    /// golden keys are untouched.
    pub fn exec_name(&self) -> String {
        let mut out = self.name();
        if self.home_banks > 1 {
            out.push_str(&format!("@b{}", self.home_banks));
        }
        if self.threads > 0 {
            out.push_str(&format!("@t{}", self.threads));
        }
        out
    }

    /// Applies the `XG_BANKS` / `XG_THREADS` environment overrides to this
    /// config (the CI tier-1 variant hook). Absent or unparsable variables
    /// leave the corresponding field untouched; `XG_BANKS=0` is clamped
    /// to 1.
    pub fn apply_env_overrides(mut self) -> Self {
        if let Some(banks) = std::env::var("XG_BANKS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            self.home_banks = banks.max(1);
        }
        if let Some(threads) = std::env::var("XG_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            self.threads = threads;
        }
        self
    }

    /// Shrinks every cache so replacements are frequent — the stress-test
    /// setup of §4.1.
    pub fn shrink_caches(mut self) -> Self {
        self.cpu_cache = (2, 1);
        self.accel_cache = (2, 1);
        self.l2_cache = (2, 2);
        self
    }

    /// The paper's twelve evaluated configurations (§3): for each host
    /// protocol, an accelerator-side cache, a host-side cache, and
    /// {Full State, Transactional} × {one-level, two-level} Crossing
    /// Guards.
    pub fn matrix(seed: u64) -> Vec<SystemConfig> {
        let mut out = Vec::new();
        for host in [HostProtocol::Hammer, HostProtocol::Mesi] {
            for accel in [
                AccelOrg::AccelSide,
                AccelOrg::HostSide,
                AccelOrg::Xg {
                    variant: XgVariant::FullState,
                    two_level: false,
                },
                AccelOrg::Xg {
                    variant: XgVariant::FullState,
                    two_level: true,
                },
                AccelOrg::Xg {
                    variant: XgVariant::Transactional,
                    two_level: false,
                },
                AccelOrg::Xg {
                    variant: XgVariant::Transactional,
                    two_level: true,
                },
            ] {
                let two_level = matches!(
                    accel,
                    AccelOrg::Xg {
                        two_level: true,
                        ..
                    }
                );
                out.push(SystemConfig {
                    host,
                    accel,
                    accel_cores: if two_level { 2 } else { 1 },
                    seed,
                    ..SystemConfig::default()
                });
            }
        }
        out
    }

    /// Fresh permission table accessor (all pages read-write by default).
    pub fn permissive() -> PermissionTable {
        PermissionTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_twelve_distinct_configs() {
        let m = SystemConfig::matrix(1);
        assert_eq!(m.len(), 12);
        let names: std::collections::HashSet<String> = m.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 12, "config names must be unique");
        assert!(names.contains("hammer/accel_side"));
        assert!(names.contains("mesi/xg_tx_l2"));
    }

    #[test]
    fn accel_slots_expand_num_accels_and_respect_overrides() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.accel_slots().len(), 1);
        assert_eq!(cfg.name(), "hammer/xg_full_l1");

        let homogeneous = SystemConfig {
            num_accels: 3,
            ..SystemConfig::default()
        };
        let slots = homogeneous.accel_slots();
        assert_eq!(slots.len(), 3);
        assert!(slots.iter().all(|s| s.org == homogeneous.accel));
        assert_eq!(homogeneous.name(), "hammer/xg_full_l1x3");

        let hetero = SystemConfig {
            accels: vec![
                AccelSlot::from(AccelOrg::FuzzXg {
                    variant: XgVariant::FullState,
                }),
                AccelSlot::from(AccelOrg::Xg {
                    variant: XgVariant::FullState,
                    two_level: false,
                }),
            ],
            num_accels: 9, // ignored: accels wins
            ..SystemConfig::default()
        };
        assert_eq!(hetero.accel_slots().len(), 2);
        assert_eq!(hetero.name(), "hammer/fuzz_xg_full+xg_full_l1");
    }

    #[test]
    fn shrink_caches_shrinks() {
        let c = SystemConfig::default().shrink_caches();
        assert_eq!(c.cpu_cache, (2, 1));
        assert_eq!(c.accel_cache, (2, 1));
    }
}

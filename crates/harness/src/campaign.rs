//! Coverage-guided adversarial fuzz campaign (paper §4.2, extended).
//!
//! The blind E2 fuzzer draws every message independently, so after the
//! first few hundred injections it mostly re-fires the same guard
//! transitions. This module closes the loop AFL-style: deterministic
//! injection [`Schedule`]s are the corpus unit, per-machine
//! [`TransitionCoverage`] deltas are the feedback signal, and schedules
//! that fire *new* `(state, event)` pairs earn energy proportional to the
//! discovery and are preferentially mutated in later generations.
//!
//! Three environmental levers widen the reachable frontier beyond what the
//! blind fuzzer can touch:
//!
//! * **Read-only permission windows** ([`CPU_POOL_PAGE`]): the attacker may
//!   legally take shared copies of the CPU testers' blocks, so host demand
//!   traffic has to cross the guard — the only road to the invalidation
//!   guarantees (2a/2c).
//! * **Forbidden addresses** ([`FORBIDDEN_BLOCK`]): pages with no mapping
//!   at all, the guarantee-0a probes.
//! * **Link fault injection** ([`CampaignOpts::faults`]): delay spikes and
//!   reorder bursts on the unordered guard↔home links stress the guard's
//!   timeout and nack paths while preserving the host network's
//!   reliable-delivery assumption (drops and duplicates stay opt-in).
//!
//! When a run breaks a safety claim (host protocol violation, CPU data
//! corruption, or deadlock), [`minimize`] delta-debugs the schedule down to
//! a 1-minimal reproducer and [`repro_test_source`] / [`repro_json`] emit a
//! self-contained regression test and a machine-readable artifact.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xg_core::XgVariant;
use xg_sim::{FaultSpec, Report, TransitionCoverage};

use crate::config::{AccelOrg, AccelSlot, HostProtocol, SystemConfig};
use crate::fuzz::{FuzzOpts, FuzzStep, InvPolicy, Schedule, FUZZ_KIND_CODES, INV_RESPONSE_CODES};
use crate::runner::{run_fuzz, FuzzOutcome};
use crate::sweep::{resolve_jobs, sweep};

/// First block of the CPU testers' working set (`word_pool(0x100_0000, ..)`
/// in [`crate::runner`]): the campaign aims reads here to drag host demand
/// traffic through the guard.
pub const CPU_POOL_BLOCK: u64 = 0x4_0000;

/// Page containing [`CPU_POOL_BLOCK`]; granted *read-only* to the attacker.
pub const CPU_POOL_PAGE: u64 = 0x1000;

/// A block on a page with no permissions at all — the guarantee-0a probe.
pub const FORBIDDEN_BLOCK: u64 = 0x8_0000;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignOpts {
    /// Master seed for schedule generation, mutation, and per-run sim seeds.
    pub seed: u64,
    /// Number of generations (the first is random seeding, the rest mutate
    /// the corpus).
    pub generations: usize,
    /// Schedules per generation.
    pub batch: usize,
    /// Steps per freshly generated schedule (mutation may grow or shrink).
    pub run_len: usize,
    /// Read-write attack pool size in blocks (mirrors [`FuzzOpts`]).
    pub pool_blocks: u64,
    /// CPU tester operations per run (the liveness probe).
    pub cpu_ops: u64,
    /// Worker threads (`None` = `XG_JOBS` or one per core).
    pub jobs: Option<usize>,
    /// Fault plan for the unordered guard↔home links.
    pub faults: FaultSpec,
    /// Shrink every cache (frequent replacements reach more states).
    pub shrink_caches: bool,
    /// Total accelerator hierarchies in the attacked system. Slot 0 is the
    /// fuzzed one; slots 1.. are *correct* guarded siblings (same variant,
    /// one-level) sharing the host, so every campaign run doubles as a
    /// blast-radius check: sibling corruption or starvation is a
    /// containment failure even when the host itself survives.
    pub num_accels: usize,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            seed: 0xC4A55,
            generations: 5,
            batch: 6,
            run_len: 40,
            pool_blocks: 16,
            cpu_ops: 300,
            jobs: None,
            faults: FaultSpec::delay_only(25, 10, 800, 3),
            shrink_caches: true,
            num_accels: 1,
        }
    }
}

/// Which safety claim a failing run broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A host controller saw an impossible event.
    HostViolation,
    /// A CPU tester read a value it never wrote.
    DataError,
    /// The host stopped making progress.
    Deadlock,
}

impl FailureKind {
    /// Short tag for artifact names.
    pub fn tag(self) -> &'static str {
        match self {
            FailureKind::HostViolation => "violation",
            FailureKind::DataError => "data_error",
            FailureKind::Deadlock => "deadlock",
        }
    }
}

/// One broken safety claim, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Broken claim.
    pub kind: FailureKind,
    /// Simulator seed the failing run used.
    pub seed: u64,
    /// The injection schedule that broke it.
    pub schedule: Schedule,
    /// Human-readable one-liner.
    pub summary: String,
}

/// A corpus member: a schedule that discovered new coverage, weighted by
/// how much it discovered.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The interesting schedule.
    pub schedule: Schedule,
    /// Sim seed it ran under.
    pub seed: u64,
    /// Newly fired `(state, event)` pairs it contributed (its mutation
    /// weight).
    pub energy: u64,
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Total runs executed.
    pub runs: u64,
    /// Total interface messages injected (the budget a blind comparison
    /// must match).
    pub injected: u64,
    /// Union coverage per state machine across every run.
    pub coverage: BTreeMap<String, TransitionCoverage>,
    /// Schedules that discovered new coverage, in discovery order.
    pub corpus: Vec<CorpusEntry>,
    /// Safety-claim breaks (empty for a correct guard).
    pub failures: Vec<CampaignFailure>,
    /// Merged statistics of every run, with a `fuzz` section summarizing
    /// the campaign.
    pub report: Report,
}

impl CampaignOutcome {
    /// Distinct `(state, event)` pairs fired across all machines — the
    /// number the guided-vs-blind comparison is about.
    pub fn distinct_pairs(&self) -> u64 {
        distinct_pairs(&self.coverage)
    }
}

/// Sums fired rows across a coverage map.
pub fn distinct_pairs(coverage: &BTreeMap<String, TransitionCoverage>) -> u64 {
    coverage.values().map(|c| c.fired_rows() as u64).sum()
}

/// Candidate block indices a schedule may target: the read-write attack
/// pool, a window into the CPU testers' (read-only) page, and one
/// unmapped block.
pub fn schedule_blocks(pool_blocks: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..pool_blocks.max(1)).collect();
    v.extend(CPU_POOL_BLOCK..CPU_POOL_BLOCK + 4);
    v.push(FORBIDDEN_BLOCK);
    v
}

/// A hand-crafted corpus seed that touches every guarantee class the
/// paper's Figure 1 enumerates — 0a/0b (permissions), 1a/1b (request
/// consistency/duplicates), 2a/2b/2c (response consistency / unsolicited /
/// timeout). Random schedules find most of these eventually; seeding the
/// corpus with the probe makes the frontier deterministic from generation
/// zero, and the guarantee-class tests replay it directly.
///
/// Kind codes follow [`crate::fuzz`]: 0 GetS, 1 GetM, 4 PutM, 5 InvAck.
pub fn guarantee_probe() -> Schedule {
    let step = |delay, block, kind| FuzzStep {
        delay,
        block,
        kind,
        payload_blocks: 1,
        fill: 0x11,
    };
    Schedule {
        steps: vec![
            // Legally take shared copies of two CPU-owned (read-only)
            // blocks: the CPUs' next writes must now cross the guard, and
            // the scripted responses below turn those invalidations into
            // the 2a (wrong response) and 2c (silence → timeout) probes.
            step(1, CPU_POOL_BLOCK, 0),
            step(5, CPU_POOL_BLOCK + 1, 0),
            // 0a: read a block on an unmapped page.
            step(5, FORBIDDEN_BLOCK, 0),
            // 0b: demand ownership of a read-only block.
            step(5, CPU_POOL_BLOCK + 2, 1),
            // 1a: PutM for a block the accelerator never acquired.
            step(5, 3, 4),
            // 1b: back-to-back requests for the same block.
            step(5, 5, 0),
            step(1, 5, 0),
            // 2b: a response with no corresponding host request.
            step(5, 7, 5),
        ],
        responses: vec![
            // First forwarded invalidation: a racing PutS chased by a
            // stale DirtyWb. The PutS wins the Put-vs-Inv race (resolved
            // as a safe downgrade), so the writeback that follows is no
            // longer a legal answer — guarantee 2a.
            InvPolicy {
                respond: true,
                kind: 4,
                payload_blocks: 1,
            },
            // Second: silence — guarantee 2c, the guard's timeout covers.
            InvPolicy {
                respond: false,
                kind: 0,
                payload_blocks: 1,
            },
        ],
    }
}

/// Builds the attacked configuration for one campaign run: slot 0 is the
/// fuzzed organization from `base`, and `opts.num_accels - 1` correct
/// guarded siblings (same variant, one-level) ride along. Sibling page
/// tables and tester cores are assigned by [`run_fuzz`].
fn attack_config(base: &SystemConfig, opts: &CampaignOpts, seed: u64) -> SystemConfig {
    let mut cfg = base.clone();
    if opts.shrink_caches {
        cfg = cfg.shrink_caches();
    }
    cfg.host_faults = opts.faults;
    cfg.seed = seed;
    if opts.num_accels > 1 && cfg.accels.is_empty() {
        let sibling_variant = match &cfg.accel {
            AccelOrg::FuzzXg { variant } => *variant,
            _ => XgVariant::FullState,
        };
        let mut slots = vec![AccelSlot::from(cfg.accel.clone())];
        slots.resize(
            opts.num_accels,
            AccelSlot::from(AccelOrg::Xg {
                variant: sibling_variant,
                two_level: false,
            }),
        );
        cfg.accels = slots;
    }
    cfg
}

/// Replays one schedule against `base` (plus the campaign environment:
/// shrunken caches, link faults, read-only CPU window) under sim seed
/// `seed`. This is also the reproduction entry point minimized repro tests
/// call.
pub fn run_schedule(
    base: &SystemConfig,
    opts: &CampaignOpts,
    schedule: &Schedule,
    seed: u64,
) -> FuzzOutcome {
    let cfg = attack_config(base, opts, seed);
    let fuzz = FuzzOpts {
        messages: schedule.steps.len() as u64,
        pool_blocks: opts.pool_blocks,
        schedule: Some(schedule.clone()),
        read_only_pages: vec![CPU_POOL_PAGE],
        ..FuzzOpts::default()
    };
    run_fuzz(&cfg, &fuzz, opts.cpu_ops)
}

/// Picks a corpus entry with probability proportional to its energy.
fn pick_weighted<'a>(rng: &mut SmallRng, corpus: &'a [CorpusEntry]) -> &'a CorpusEntry {
    let total: u64 = corpus.iter().map(|e| e.energy.max(1)).sum();
    let mut roll = rng.gen_range(0..total);
    for e in corpus {
        let w = e.energy.max(1);
        if roll < w {
            return e;
        }
        roll -= w;
    }
    corpus.last().expect("corpus is non-empty")
}

/// Structural mutation operators, in roll order.
const MUTATIONS: u32 = 7;

/// Derives a child schedule from `parent` (and `other`, for splices).
pub fn mutate(rng: &mut SmallRng, parent: &Schedule, other: &Schedule, blocks: &[u64]) -> Schedule {
    let mut child = parent.clone();
    // One to three stacked mutations per child keeps most offspring near
    // the parent while still allowing multi-edit jumps.
    for _ in 0..rng.gen_range(1..=3u32) {
        match rng.gen_range(0..MUTATIONS) {
            // Splice: parent prefix + other suffix.
            0 if !other.steps.is_empty() => {
                let cut_a = rng.gen_range(0..=child.steps.len());
                let cut_b = rng.gen_range(0..other.steps.len());
                child.steps.truncate(cut_a);
                child.steps.extend_from_slice(&other.steps[cut_b..]);
                if !other.responses.is_empty() && rng.gen_bool(0.5) {
                    child.responses = other.responses.clone();
                }
            }
            // Duplicate a step in place (back-to-back requests are the
            // guarantee-1b probes).
            1 if !child.steps.is_empty() => {
                let i = rng.gen_range(0..child.steps.len());
                let mut dup = child.steps[i];
                dup.delay = rng.gen_range(1..=3);
                child.steps.insert(i + 1, dup);
            }
            // Drop a step.
            2 if child.steps.len() > 1 => {
                let i = rng.gen_range(0..child.steps.len());
                child.steps.remove(i);
            }
            // Flip a step's interface kind.
            3 if !child.steps.is_empty() => {
                let i = rng.gen_range(0..child.steps.len());
                child.steps[i].kind = rng.gen_range(0..FUZZ_KIND_CODES);
            }
            // Address-collide: retarget a step at another step's block.
            4 if child.steps.len() > 1 => {
                let i = rng.gen_range(0..child.steps.len());
                let j = rng.gen_range(0..child.steps.len());
                child.steps[i].block = child.steps[j].block;
            }
            // Rewrite the invalidation-response script; biased towards
            // withholding (the guarantee-2c probe).
            5 => {
                let n = rng.gen_range(1..=3usize);
                child.responses = (0..n)
                    .map(|_| InvPolicy {
                        respond: rng.gen_bool(0.5),
                        kind: rng.gen_range(0..INV_RESPONSE_CODES),
                        payload_blocks: rng.gen_range(1..=3),
                    })
                    .collect();
            }
            // Jitter a delay (races against in-flight host transactions).
            _ if !child.steps.is_empty() => {
                let i = rng.gen_range(0..child.steps.len());
                child.steps[i].delay = rng.gen_range(1..=40);
            }
            _ => {}
        }
    }
    if child.steps.is_empty() {
        // Never breed an empty schedule: re-seed one random step.
        child.steps.push(FuzzStep {
            delay: 1,
            block: blocks[rng.gen_range(0..blocks.len())],
            kind: rng.gen_range(0..FUZZ_KIND_CODES),
            payload_blocks: 1,
            fill: rng.gen(),
        });
    }
    child
}

/// Classifies a run's outcome against the safety claims.
fn classify(out: &FuzzOutcome) -> Option<(FailureKind, String)> {
    if out.host_violations > 0 {
        return Some((
            FailureKind::HostViolation,
            format!("{} host protocol violations", out.host_violations),
        ));
    }
    if out.cpu_data_errors > 0 {
        return Some((
            FailureKind::DataError,
            format!("{} cpu data errors", out.cpu_data_errors),
        ));
    }
    if out.deadlocked {
        return Some((FailureKind::Deadlock, "host deadlocked".into()));
    }
    None
}

/// Runs a coverage-guided campaign against `base` (must be a fuzzing
/// organization; see [`crate::runner::run_fuzz`]).
///
/// Deterministic for a given `(base, opts)` at any worker count: parent
/// selection happens before a generation is fanned out, and feedback is
/// folded in batch order after the generation barrier.
pub fn run_campaign(base: &SystemConfig, opts: &CampaignOpts) -> CampaignOutcome {
    let blocks = schedule_blocks(opts.pool_blocks);
    let jobs = resolve_jobs(opts.jobs);
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut coverage: BTreeMap<String, TransitionCoverage> = BTreeMap::new();
    let mut report = Report::new();
    let mut failures = Vec::new();
    let (mut runs, mut injected) = (0u64, 0u64);
    let (mut violations, mut data_errors, mut deadlocks) = (0u64, 0u64, 0u64);

    for generation in 0..opts.generations {
        let batch: Vec<(Schedule, u64)> = (0..opts.batch)
            .map(|slot| {
                let seed = rng.gen();
                let schedule = if generation == 0 && slot == 0 {
                    // Deterministic corpus seed: every guarantee class.
                    guarantee_probe()
                } else if generation == 0 || corpus.is_empty() {
                    Schedule::random(&mut rng, opts.run_len, &blocks)
                } else {
                    let parent = pick_weighted(&mut rng, &corpus).schedule.clone();
                    let other = pick_weighted(&mut rng, &corpus).schedule.clone();
                    mutate(&mut rng, &parent, &other, &blocks)
                };
                (schedule, seed)
            })
            .collect();
        let outcomes = sweep(batch.clone(), jobs, |(schedule, seed), _| {
            run_schedule(base, opts, &schedule, seed)
        });
        for ((schedule, seed), out) in batch.into_iter().zip(outcomes) {
            runs += 1;
            injected += out.injected;
            if let Some((kind, summary)) = classify(&out) {
                match kind {
                    FailureKind::HostViolation => violations += 1,
                    FailureKind::DataError => data_errors += 1,
                    FailureKind::Deadlock => deadlocks += 1,
                }
                failures.push(CampaignFailure {
                    kind,
                    seed,
                    schedule: schedule.clone(),
                    summary,
                });
            }
            let mut new_pairs = 0u64;
            for (machine, cov) in out.report.fsms() {
                new_pairs += match coverage.get(machine) {
                    Some(seen) => cov.diff(seen).fired_rows() as u64,
                    None => cov.fired_rows() as u64,
                };
                coverage.entry(machine.to_string()).or_default().merge(cov);
            }
            if new_pairs > 0 {
                corpus.push(CorpusEntry {
                    schedule,
                    seed,
                    energy: new_pairs,
                });
            }
            report.merge(&out.report);
        }
    }

    report.fuzz_set("campaign_runs", runs);
    report.fuzz_set("campaign_injected", injected);
    report.fuzz_set("campaign_distinct_pairs", distinct_pairs(&coverage));
    report.fuzz_set("campaign_corpus", corpus.len() as u64);
    report.fuzz_set("campaign_violations", violations);
    report.fuzz_set("campaign_data_errors", data_errors);
    report.fuzz_set("campaign_deadlocks", deadlocks);
    CampaignOutcome {
        runs,
        injected,
        coverage,
        corpus,
        failures,
        report,
    }
}

/// Outcome of the blind (unguided) baseline.
#[derive(Debug)]
pub struct BlindOutcome {
    /// Messages actually injected (≥ the requested budget).
    pub injected: u64,
    /// Union coverage per machine.
    pub coverage: BTreeMap<String, TransitionCoverage>,
}

impl BlindOutcome {
    /// Distinct `(state, event)` pairs the blind fuzzer fired.
    pub fn distinct_pairs(&self) -> u64 {
        distinct_pairs(&self.coverage)
    }
}

/// Runs the blind E2 fuzzer — independent random draws, default caches, no
/// link faults, no read-only window — split over the same number of runs a
/// campaign would make, at a total message budget of *at least* `budget`
/// (rounded up, so the comparison never short-changes the baseline).
pub fn run_blind(base: &SystemConfig, opts: &CampaignOpts, budget: u64) -> BlindOutcome {
    let runs = (opts.generations * opts.batch).max(1) as u64;
    let per_run = budget.div_ceil(runs).max(1);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xB11D);
    let seeds: Vec<u64> = (0..runs).map(|_| rng.gen()).collect();
    let outcomes = sweep(seeds, resolve_jobs(opts.jobs), |seed, _| {
        let mut cfg = base.clone();
        cfg.seed = seed;
        let fuzz = FuzzOpts {
            messages: per_run,
            pool_blocks: opts.pool_blocks,
            ..FuzzOpts::default()
        };
        run_fuzz(&cfg, &fuzz, opts.cpu_ops)
    });
    let mut coverage: BTreeMap<String, TransitionCoverage> = BTreeMap::new();
    let mut injected = 0u64;
    for out in &outcomes {
        injected += out.injected;
        for (machine, cov) in out.report.fsms() {
            coverage.entry(machine.to_string()).or_default().merge(cov);
        }
    }
    BlindOutcome { injected, coverage }
}

/// Delta-debugging minimizer (ddmin): removes complement chunks of `items`
/// while `fails` keeps returning true, down to a 1-minimal subsequence.
fn ddmin_vec<T: Clone>(items: Vec<T>, fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    if fails(&[]) {
        return Vec::new();
    }
    let mut cur = items;
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let candidate: Vec<T> = cur[..start].iter().chain(&cur[end..]).cloned().collect();
            if fails(&candidate) {
                cur = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk <= 1 {
                break; // 1-minimal: no single element is removable.
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Minimizes a failing schedule: ddmin over the injection steps, then over
/// the response script, then per-field normalization (delay → 1, payload →
/// 1, fill → 0) wherever the failure survives. `fails(schedule)` must
/// return true when the candidate still reproduces the failure, and must
/// hold for `schedule` itself.
pub fn minimize(schedule: &Schedule, mut fails: impl FnMut(&Schedule) -> bool) -> Schedule {
    debug_assert!(fails(schedule), "minimize needs a failing starting point");
    let mut best = schedule.clone();

    let responses = best.responses.clone();
    best.steps = ddmin_vec(best.steps, &mut |steps| {
        fails(&Schedule {
            steps: steps.to_vec(),
            responses: responses.clone(),
        })
    });

    let steps = best.steps.clone();
    best.responses = ddmin_vec(best.responses, &mut |responses| {
        fails(&Schedule {
            steps: steps.clone(),
            responses: responses.to_vec(),
        })
    });

    let edits: [fn(&mut FuzzStep); 3] = [|s| s.delay = 1, |s| s.payload_blocks = 1, |s| s.fill = 0];
    for i in 0..best.steps.len() {
        for edit in edits {
            let mut cand = best.clone();
            edit(&mut cand.steps[i]);
            if cand != best && fails(&cand) {
                best = cand;
            }
        }
    }
    best
}

/// Escapes schedule text for embedding in a Rust string literal.
fn escape_literal(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Extracts the `(host, variant)` of a guarded fuzz configuration.
fn guarded_parts(cfg: &SystemConfig) -> (HostProtocol, XgVariant) {
    match &cfg.accel {
        AccelOrg::FuzzXg { variant } => (cfg.host, *variant),
        other => panic!("repro emission needs a FuzzXg configuration, got {other:?}"),
    }
}

/// Emits a self-contained `#[test]` reproducing `failure` against `base`
/// under the campaign environment in `opts`. The generated test *asserts
/// the claims hold*, so committed against a fixed build it is a passing
/// regression test; on a build with the bug it fails exactly like the
/// campaign run did.
pub fn repro_test_source(
    fn_name: &str,
    base: &SystemConfig,
    opts: &CampaignOpts,
    failure: &CampaignFailure,
) -> String {
    let (host, variant) = guarded_parts(base);
    let f = opts.faults;
    format!(
        "//! Auto-generated minimal reproducer ({kind}); regenerate with\n\
         //! `xg-fuzz --minimize`. {n} injected message(s), sim seed {seed:#x}.\n\
         \n\
         use xg_core::XgVariant;\n\
         use xg_harness::campaign::{{run_schedule, CampaignOpts}};\n\
         use xg_harness::fuzz::Schedule;\n\
         use xg_harness::{{AccelOrg, HostProtocol, SystemConfig}};\n\
         use xg_sim::FaultSpec;\n\
         \n\
         #[test]\n\
         fn {fn_name}() {{\n\
         \x20   let schedule = Schedule::from_text(\"{sched}\").unwrap();\n\
         \x20   let base = SystemConfig {{\n\
         \x20       host: HostProtocol::{host:?},\n\
         \x20       accel: AccelOrg::FuzzXg {{ variant: XgVariant::{variant:?} }},\n\
         \x20       strict_host: {strict},\n\
         \x20       ..SystemConfig::default()\n\
         \x20   }};\n\
         \x20   let opts = CampaignOpts {{\n\
         \x20       cpu_ops: {cpu_ops},\n\
         \x20       pool_blocks: {pool},\n\
         \x20       shrink_caches: {shrink},\n\
         \x20       num_accels: {accels},\n\
         \x20       faults: FaultSpec {{\n\
         \x20           drop_pct: {dp},\n\
         \x20           dup_pct: {up},\n\
         \x20           delay_spike_pct: {sp},\n\
         \x20           reorder_pct: {rp},\n\
         \x20           spike_cycles: {sc},\n\
         \x20           burst_len: {bl},\n\
         \x20       }},\n\
         \x20       ..CampaignOpts::default()\n\
         \x20   }};\n\
         \x20   let out = run_schedule(&base, &opts, &schedule, {seed:#x});\n\
         \x20   assert_eq!(out.host_violations, 0, \"host protocol violations\");\n\
         \x20   assert_eq!(out.cpu_data_errors, 0, \"cpu data corruption\");\n\
         \x20   assert!(!out.deadlocked, \"host deadlocked\");\n\
         }}\n",
        kind = failure.kind.tag(),
        n = failure.schedule.steps.len(),
        seed = failure.seed,
        sched = escape_literal(&failure.schedule.to_text()),
        strict = base.strict_host,
        cpu_ops = opts.cpu_ops,
        pool = opts.pool_blocks,
        shrink = opts.shrink_caches,
        accels = opts.num_accels.max(1),
        dp = f.drop_pct,
        up = f.dup_pct,
        sp = f.delay_spike_pct,
        rp = f.reorder_pct,
        sc = f.spike_cycles,
        bl = f.burst_len,
    )
}

/// Emits a machine-readable reproducer artifact (for CI uploads).
pub fn repro_json(base: &SystemConfig, opts: &CampaignOpts, failure: &CampaignFailure) -> String {
    let f = opts.faults;
    format!(
        "{{\n  \"config\": \"{config}\",\n  \"kind\": \"{kind}\",\n  \
         \"seed\": {seed},\n  \"summary\": \"{summary}\",\n  \
         \"steps\": {steps},\n  \"cpu_ops\": {cpu_ops},\n  \
         \"num_accels\": {accels},\n  \
         \"faults\": [{dp}, {up}, {sp}, {rp}, {sc}, {bl}],\n  \
         \"schedule\": \"{sched}\"\n}}\n",
        config = base.name(),
        kind = failure.kind.tag(),
        seed = failure.seed,
        summary = escape_literal(&failure.summary),
        steps = failure.schedule.steps.len(),
        cpu_ops = opts.cpu_ops,
        accels = opts.num_accels.max(1),
        dp = f.drop_pct,
        up = f.dup_pct,
        sp = f.delay_spike_pct,
        rp = f.reorder_pct,
        sc = f.spike_cycles,
        bl = f.burst_len,
        sched = escape_literal(&failure.schedule.to_text()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn ddmin_finds_the_single_trigger() {
        // Failure iff the schedule contains a (kind 4, block 7) step.
        let trigger = FuzzStep {
            delay: 9,
            block: 7,
            kind: 4,
            payload_blocks: 3,
            fill: 0xEE,
        };
        let mut r = rng(11);
        let blocks = schedule_blocks(8);
        let mut sched = Schedule::random(&mut r, 33, &blocks);
        // Scrub accidental triggers, then plant exactly one.
        for s in &mut sched.steps {
            if s.kind == 4 && s.block == 7 {
                s.kind = 0;
            }
        }
        sched.steps.insert(17, trigger);
        let fails = |s: &Schedule| s.steps.iter().any(|st| st.kind == 4 && st.block == 7);
        let min = minimize(&sched, fails);
        assert_eq!(min.steps.len(), 1, "1-minimal step list");
        assert_eq!(min.steps[0].kind, 4);
        assert_eq!(min.steps[0].block, 7);
        // Field normalization kicked in on the fields the predicate ignores.
        assert_eq!(min.steps[0].delay, 1);
        assert_eq!(min.steps[0].payload_blocks, 1);
        assert_eq!(min.steps[0].fill, 0);
        assert!(min.responses.is_empty(), "responses ddmin to nothing");
    }

    #[test]
    fn ddmin_keeps_interacting_pairs() {
        // Failure needs *both* a kind-1 and a kind-2 step (order-free).
        let mut r = rng(3);
        let sched = Schedule::random(&mut r, 40, &schedule_blocks(8));
        let fails = |s: &Schedule| {
            s.steps.iter().any(|st| st.kind == 1) && s.steps.iter().any(|st| st.kind == 2)
        };
        if !fails(&sched) {
            return; // extremely unlikely with 40 steps over 13 kinds
        }
        let min = minimize(&sched, fails);
        assert_eq!(min.steps.len(), 2, "both interacting steps survive");
        assert!(fails(&min));
    }

    #[test]
    fn mutation_never_produces_invalid_schedules() {
        let blocks = schedule_blocks(8);
        let mut r = rng(42);
        let a = Schedule::random(&mut r, 20, &blocks);
        let b = Schedule::random(&mut r, 5, &blocks);
        for _ in 0..500 {
            let child = mutate(&mut r, &a, &b, &blocks);
            assert!(!child.steps.is_empty());
            for s in &child.steps {
                assert!(s.kind < FUZZ_KIND_CODES);
            }
            for p in &child.responses {
                assert!(p.kind < INV_RESPONSE_CODES);
                assert!((1..=3).contains(&p.payload_blocks));
            }
            // Children stay serializable (the corpus on-disk contract).
            assert_eq!(Schedule::from_text(&child.to_text()).unwrap(), child);
        }
    }

    #[test]
    fn weighted_pick_respects_energy() {
        let entry = |energy| CorpusEntry {
            schedule: Schedule::default(),
            seed: energy,
            energy,
        };
        let corpus = vec![entry(0), entry(1000), entry(0)];
        let mut r = rng(7);
        // With weights (1, 1000, 1), the heavy entry dominates.
        let heavy = (0..200)
            .filter(|_| pick_weighted(&mut r, &corpus).seed == 1000)
            .count();
        assert!(heavy > 150, "heavy entry picked {heavy}/200 times");
    }

    #[test]
    fn schedule_blocks_span_all_three_permission_classes() {
        let blocks = schedule_blocks(16);
        assert!(blocks.contains(&0), "read-write attack pool");
        assert!(blocks.contains(&CPU_POOL_BLOCK), "read-only CPU window");
        assert!(blocks.contains(&FORBIDDEN_BLOCK), "unmapped page");
    }

    #[test]
    fn attack_config_grows_correct_guarded_siblings() {
        let base = SystemConfig {
            accel: AccelOrg::FuzzXg {
                variant: XgVariant::Transactional,
            },
            ..SystemConfig::default()
        };
        let multi = CampaignOpts {
            num_accels: 3,
            ..CampaignOpts::default()
        };
        let cfg = attack_config(&base, &multi, 7);
        let slots = cfg.accel_slots();
        assert_eq!(slots.len(), 3);
        assert!(matches!(
            slots[0].org,
            AccelOrg::FuzzXg {
                variant: XgVariant::Transactional
            }
        ));
        for s in &slots[1..] {
            assert!(
                matches!(
                    s.org,
                    AccelOrg::Xg {
                        variant: XgVariant::Transactional,
                        two_level: false
                    }
                ),
                "siblings are correct one-level guards of the same variant"
            );
        }
        // The single-accelerator path stays exactly as before.
        let one = attack_config(&base, &CampaignOpts::default(), 7);
        assert!(one.accels.is_empty());
        assert_eq!(one.accel_slots().len(), 1);
    }

    #[test]
    fn repro_sources_embed_the_schedule() {
        let base = SystemConfig {
            accel: AccelOrg::FuzzXg {
                variant: XgVariant::FullState,
            },
            ..SystemConfig::default()
        };
        let opts = CampaignOpts::default();
        let failure = CampaignFailure {
            kind: FailureKind::Deadlock,
            seed: 0xBEEF,
            schedule: Schedule::from_text("xg-schedule v1\ns 1 262144 0 1 0\n").unwrap(),
            summary: "host deadlocked".into(),
        };
        let test = repro_test_source("repro_deadlock", &base, &opts, &failure);
        assert!(test.contains("fn repro_deadlock()"));
        assert!(test.contains("xg-schedule v1\\ns 1 262144 0 1 0\\n"));
        assert!(test.contains("HostProtocol::Hammer"));
        assert!(test.contains("XgVariant::FullState"));
        assert!(test.contains("0xbeef"));
        let json = repro_json(&base, &opts, &failure);
        assert!(json.contains("\"kind\": \"deadlock\""));
        assert!(json.contains("\"steps\": 1"));
    }
}

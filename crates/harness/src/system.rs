//! System assembly: builds a simulator for any [`SystemConfig`].
//!
//! A system has one host protocol (Hammer directory or MESI shared L2),
//! `cpu_cores` host caches, one OS model, and *N independent accelerator
//! hierarchies* ([`SystemConfig::accel_slots`]): each hierarchy gets its
//! own guard instance (where guarded), its own cache organization, and its
//! own host-protocol node identity on the home's peer list. Instance 0
//! keeps the historical single-accelerator component names (`xg`,
//! `accel_l1`, ...); instance `k > 0` prefixes them with `a{k}_`.

use xg_accel::{AccelL1, AccelL1Config, AccelL2, AccelL2Config};
use xg_core::{CrossingGuard, Os, OsPolicy, XgConfig};
use xg_host_hammer::{HammerCache, HammerConfig, HammerDirectory};
use xg_host_mesi::{MesiL1, MesiL1Config, MesiL2, MesiL2Config};
use xg_proto::{HomeMap, Message, Sim, SimBuilder};
use xg_sim::{
    Component, Link, NodeId, ParSim, ProfileConfig, Report, RunOutcome, TimelineConfig, TraceConfig,
};

use crate::config::{AccelOrg, AccelSlot, HostProtocol, SystemConfig};
use crate::fuzz::{FuzzAccel, FuzzHostCache, FuzzOpts};

/// Where a core sits, passed to the core factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSlot {
    /// CPU core `i`; its global core index equals `i`.
    Cpu(usize),
    /// Accelerator core `i` (numbered across every hierarchy); its global
    /// core index is `cpu_cores + i`.
    Accel(usize),
}

/// Number of cores the topology builder attaches to a hierarchy with
/// organization `org` (fuzzers stand in for the cores; only the two-level
/// guard fans out to `accel_cores` private L1s).
pub fn accel_core_count(org: &AccelOrg, accel_cores: usize) -> usize {
    match org {
        AccelOrg::FuzzXg { .. } | AccelOrg::FuzzAccelSide => 0,
        AccelOrg::Xg {
            two_level: true, ..
        } => accel_cores,
        _ => 1,
    }
}

/// One accelerator hierarchy of a built system, for per-guard reporting
/// and blast-radius attribution.
#[derive(Debug, Clone)]
pub struct GuardInstance {
    /// The hierarchy's organization.
    pub org: AccelOrg,
    /// Report label: the guard's component name where guarded (`xg`,
    /// `a1_xg`, ...), the frontend/fuzzer name otherwise.
    pub label: String,
    /// The Crossing Guard node, if this hierarchy has one.
    pub xg: Option<NodeId>,
    /// The fuzzer node, if this hierarchy is a fuzzing stand-in.
    pub fuzzer: Option<NodeId>,
    /// The cache(s) this hierarchy's cores talk to.
    pub frontends: Vec<NodeId>,
    /// Core nodes (from the factory), in slot order.
    pub cores: Vec<NodeId>,
    /// Global core indices of `cores` (CPU cores first, then accelerator
    /// cores across all hierarchies).
    pub core_indices: Vec<usize>,
}

/// The executable simulation behind a [`BuiltSystem`]: the classic
/// single-threaded event loop ([`SystemConfig::threads`] `= 0`, the
/// default) or the sharded conservative-window executor (`threads ≥ 1`).
///
/// Both are fully deterministic, but they are **not** byte-compatible with
/// each other: the parallel path forces per-component RNG streams, so its
/// reports differ from serial ones. The parallel guarantee is instead
/// *worker-count invariance* — for a fixed partition (banks, slots,
/// cores), any `threads ≥ 1` produces the identical run.
// One ExecSim exists per built system and lives for the whole run, so the
// size spread between the two executors is irrelevant; boxing would only
// add an indirection on every delegated call.
#[allow(clippy::large_enum_variant)]
pub enum ExecSim {
    /// The historical single-threaded simulator (byte-identical goldens).
    Serial(Sim),
    /// The partitioned parallel executor.
    Par(ParSim<Message>),
}

impl ExecSim {
    /// Queues `msg` from `from` to `to` through the routed fabric.
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: Message) {
        match self {
            ExecSim::Serial(sim) => sim.post(from, to, msg),
            ExecSim::Par(par) => par.post(from, to, msg),
        }
    }

    /// Schedules a wake-up for `target` after `delay` cycles.
    pub fn post_wake(&mut self, target: NodeId, delay: u64, token: u64) {
        match self {
            ExecSim::Serial(sim) => sim.post_wake(target, delay, token),
            ExecSim::Par(par) => par.post_wake(target, delay, token),
        }
    }

    /// Runs until no events remain or `max_cycles` elapse.
    pub fn run_to_quiescence(&mut self, max_cycles: u64) -> RunOutcome {
        match self {
            ExecSim::Serial(sim) => sim.run_to_quiescence(max_cycles),
            ExecSim::Par(par) => par.run_to_quiescence(max_cycles),
        }
    }

    /// Runs with a progress watchdog (see [`Sim::run_with_watchdog`]).
    pub fn run_with_watchdog(&mut self, max_cycles: u64, stall_bound: u64) -> RunOutcome {
        match self {
            ExecSim::Serial(sim) => sim.run_with_watchdog(max_cycles, stall_bound),
            ExecSim::Par(par) => par.run_with_watchdog(max_cycles, stall_bound),
        }
    }

    /// Collects every component's statistics (parallel runs merge their
    /// shards in shard order; the key space is identical).
    pub fn report(&self) -> Report {
        match self {
            ExecSim::Serial(sim) => sim.report(),
            ExecSim::Par(par) => par.report(),
        }
    }

    /// The post-mortem dump of flagged addresses, if tracing flagged any.
    pub fn post_mortem(&self) -> Option<String> {
        match self {
            ExecSim::Serial(sim) => sim.post_mortem(),
            ExecSim::Par(par) => par.post_mortem(),
        }
    }

    /// The recorded transaction timeline. Parallel runs do not record
    /// timelines (per-shard timelines would interleave nondeterministically
    /// in wall-clock), so `Par` always returns `None`.
    pub fn timeline_json(&self) -> Option<String> {
        match self {
            ExecSim::Serial(sim) => sim.timeline_json(),
            ExecSim::Par(_) => None,
        }
    }

    /// Borrows the component at `id` as a concrete type.
    pub fn get<T: 'static>(&self, id: NodeId) -> Option<&T> {
        match self {
            ExecSim::Serial(sim) => sim.get(id),
            ExecSim::Par(par) => par.get(id),
        }
    }

    /// Mutably borrows the component at `id` as a concrete type.
    pub fn get_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        match self {
            ExecSim::Serial(sim) => sim.get_mut(id),
            ExecSim::Par(par) => par.get_mut(id),
        }
    }

    /// Applies a trace configuration (every shard, for parallel runs).
    pub fn set_trace_config(&mut self, config: TraceConfig) {
        match self {
            ExecSim::Serial(sim) => sim.tracer_mut().set_config(config),
            ExecSim::Par(par) => {
                for shard in par.shards_mut() {
                    shard.tracer_mut().set_config(config);
                }
            }
        }
    }

    /// Applies a profile configuration (every shard, for parallel runs).
    pub fn set_profile_config(&mut self, config: ProfileConfig) {
        match self {
            ExecSim::Serial(sim) => sim.profiler_mut().set_config(config),
            ExecSim::Par(par) => {
                for shard in par.shards_mut() {
                    shard.profiler_mut().set_config(config);
                }
            }
        }
    }

    /// Enables transaction-timeline recording. A no-op for parallel runs
    /// (see [`timeline_json`](ExecSim::timeline_json)).
    pub fn enable_timeline(&mut self, config: TimelineConfig) {
        match self {
            ExecSim::Serial(sim) => sim.enable_timeline(config),
            ExecSim::Par(_) => {}
        }
    }

    /// Flags `block` in the trace ring for the post-mortem dump (every
    /// shard, for parallel runs — the dump merges shard sections).
    pub fn flag_trace(&mut self, now: u64, block: u64, note: String) {
        match self {
            ExecSim::Serial(sim) => sim.tracer_mut().flag(now, block, note),
            ExecSim::Par(par) => {
                for shard in par.shards_mut() {
                    shard.tracer_mut().flag(now, block, note.clone());
                }
            }
        }
    }

    /// The parallel executor, when running partitioned.
    pub fn as_par_mut(&mut self) -> Option<&mut ParSim<Message>> {
        match self {
            ExecSim::Serial(_) => None,
            ExecSim::Par(par) => Some(par),
        }
    }
}

/// A fully wired system ready to run.
pub struct BuiltSystem {
    /// The simulator (serial or partitioned-parallel; see [`ExecSim`]).
    pub sim: ExecSim,
    /// CPU core nodes (from the factory).
    pub cpu_cores: Vec<NodeId>,
    /// CPU cache nodes.
    pub cpu_caches: Vec<NodeId>,
    /// Accelerator core nodes across every hierarchy (empty in fuzz
    /// configurations).
    pub accel_cores: Vec<NodeId>,
    /// The cache each accelerator core talks to, across every hierarchy.
    pub accel_frontends: Vec<NodeId>,
    /// The home bank nodes — directories (Hammer) or shared-L2 slices
    /// (MESI), in bank order. One entry unless
    /// [`SystemConfig::home_banks`] `> 1`.
    pub homes: Vec<NodeId>,
    /// The OS model.
    pub os: NodeId,
    /// The first Crossing Guard, if any configuration slot has one.
    pub xg: Option<NodeId>,
    /// The first fuzzer node, if any slot is a fuzzing configuration.
    pub fuzzer: Option<NodeId>,
    /// Per-hierarchy breakdown, in slot order.
    pub accels: Vec<GuardInstance>,
}

impl BuiltSystem {
    /// Kicks every core's issue loop (wake token 0 at staggered times).
    pub fn start_cores(&mut self) {
        let all: Vec<NodeId> = self
            .cpu_cores
            .iter()
            .chain(self.accel_cores.iter())
            .copied()
            .collect();
        for (i, core) in all.into_iter().enumerate() {
            self.sim.post_wake(core, 1 + i as u64, 0);
        }
        let fuzzers: Vec<NodeId> = self.accels.iter().filter_map(|a| a.fuzzer).collect();
        for (k, fuzzer) in fuzzers.into_iter().enumerate() {
            self.sim.post_wake(fuzzer, 1 + k as u64, 0);
        }
    }
}

/// Builds the system described by `cfg`. The `make_core` factory produces
/// each core component given its slot, the cache it should talk to, and
/// its global core index (CPU cores first, then accelerator cores across
/// every hierarchy in slot order).
///
/// Fuzzing slots (`FuzzXg`, `FuzzAccelSide`) need [`FuzzOpts`]; pass
/// `None` otherwise. Every fuzzing slot shares the same options.
///
/// # Panics
/// Panics if a fuzzing organization is selected without `fuzz` options.
pub fn build_system(
    cfg: &SystemConfig,
    os_policy: OsPolicy,
    fuzz: Option<FuzzOpts>,
    mut make_core: impl FnMut(CoreSlot, NodeId, usize) -> Box<dyn Component<Message>>,
) -> BuiltSystem {
    let mut b = SimBuilder::new(cfg.seed);
    // Label dispatched events by protocol-qualified message class so the
    // profiler can attribute hot paths (one function pointer; free when
    // profiling is off).
    b.event_label(Message::class);
    let n = cfg.cpu_cores;
    let slots = cfg.accel_slots();
    // Address-interleaved home banks: ids n..n+m, right after the CPU
    // caches. Every requester below routes per-block through this map.
    let m = cfg.home_banks.max(1);
    let homes: Vec<NodeId> = (0..m).map(|b| NodeId::from_index(n + b)).collect();
    let home_map = HomeMap::new(homes.clone());

    // ---- host caches (ids 0..n) ----
    let hammer_cfg = HammerConfig {
        sets: cfg.cpu_cache.0,
        ways: cfg.cpu_cache.1,
        strict_data: cfg.strict_host,
        sink_nacks: !cfg.strict_host,
        ..HammerConfig::default()
    };
    let mesi_l1_cfg = MesiL1Config {
        sets: cfg.cpu_cache.0,
        ways: cfg.cpu_cache.1,
        ..MesiL1Config::default()
    };
    let mut cpu_caches = Vec::new();
    for i in 0..n {
        let cache: Box<dyn Component<Message>> = match cfg.host {
            HostProtocol::Hammer => Box::new(HammerCache::new(
                format!("cpu_cache{i}"),
                home_map.clone(), // home banks, added next
                hammer_cfg.clone(),
            )),
            HostProtocol::Mesi => Box::new(MesiL1::new(
                format!("cpu_cache{i}"),
                home_map.clone(),
                mesi_l1_cfg.clone(),
            )),
        };
        cpu_caches.push(b.add(cache));
    }

    // ---- layout bookkeeping for nodes added after the home banks ----
    let os_id = NodeId::from_index(n + m);

    // Plan every hierarchy's node-id block up front so the home's peer
    // list (one host-protocol identity per hierarchy) is known before any
    // accelerator node exists.
    let mut next_free = n + m + 1;
    let mut plans: Vec<(NodeId, AccelInfra, usize)> = Vec::new();
    for slot in &slots {
        let start = next_free;
        let (host_peer, infra, size) = match &slot.org {
            AccelOrg::AccelSide => {
                let cache = NodeId::from_index(start);
                (cache, AccelInfra::AccelSide { cache }, 1)
            }
            AccelOrg::HostSide => {
                let cache = NodeId::from_index(start);
                (cache, AccelInfra::HostSide { cache }, 1)
            }
            AccelOrg::Xg { two_level, .. } => {
                let xg = NodeId::from_index(start);
                let top = NodeId::from_index(start + 1);
                let size = if *two_level { 2 + cfg.accel_cores } else { 2 };
                (
                    xg,
                    AccelInfra::Xg {
                        xg,
                        top,
                        two_level: *two_level,
                    },
                    size,
                )
            }
            AccelOrg::FuzzXg { .. } => {
                let xg = NodeId::from_index(start);
                let fz = NodeId::from_index(start + 1);
                (xg, AccelInfra::FuzzXg { xg, fuzzer: fz }, 2)
            }
            AccelOrg::FuzzAccelSide => {
                let fz = NodeId::from_index(start);
                (fz, AccelInfra::FuzzHost { fuzzer: fz }, 1)
            }
        };
        plans.push((host_peer, infra, size));
        next_free += size;
    }

    // ---- home bank nodes ----
    // Bank 0 keeps the historical name (`dir` / `host_l2`) when it is the
    // only bank, so single-bank reports stay byte-identical; banked
    // systems name every slice explicitly. Each bank only ever sees the
    // blocks that hash to it, so the controllers need no bank awareness —
    // every bank gets the full peer list.
    match cfg.host {
        HostProtocol::Hammer => {
            let mut peers = cpu_caches.clone();
            peers.extend(plans.iter().map(|(peer, _, _)| *peer));
            for (bank, &home) in homes.iter().enumerate() {
                let name = if m == 1 {
                    "dir".to_string()
                } else {
                    format!("dir{bank}")
                };
                let dir = b.add(Box::new(HammerDirectory::new(
                    name,
                    peers.clone(),
                    cfg.mem_latency,
                )));
                assert_eq!(dir, home);
            }
        }
        HostProtocol::Mesi => {
            for (bank, &home) in homes.iter().enumerate() {
                let name = if m == 1 {
                    "host_l2".to_string()
                } else {
                    format!("l2b{bank}")
                };
                let l2 = b.add(Box::new(MesiL2::new(
                    name,
                    MesiL2Config {
                        sets: cfg.l2_cache.0,
                        ways: cfg.l2_cache.1,
                        mem_latency: cfg.mem_latency,
                        ack_data_interchange: !cfg.strict_host,
                        ..MesiL2Config::default()
                    },
                )));
                assert_eq!(l2, home);
            }
        }
    }

    // ---- OS ----
    let os = b.add(Box::new(Os::new("os", os_policy)));
    assert_eq!(os, os_id);

    // ---- accelerator hierarchies, in slot order ----
    let accel_l1_cfg = AccelL1Config {
        sets: cfg.accel_cache.0,
        ways: cfg.accel_cache.1,
        block_blocks: cfg.xg.block_blocks,
        prefetch: cfg.prefetch,
        ..AccelL1Config::default()
    };
    let xg_config = |variant, slot: &AccelSlot| {
        let mut c = XgConfig {
            variant,
            ..cfg.xg.clone()
        };
        if let Some(perms) = &slot.perms {
            c.perms = perms.clone();
        }
        c
    };

    let mut instances: Vec<GuardInstance> = Vec::new();
    for (k, (slot, (host_peer, infra, _))) in slots.iter().zip(&plans).enumerate() {
        // Instance 0 keeps the historical names so single-accelerator
        // reports stay byte-identical; later instances get `a{k}_`.
        let prefix = if k == 0 {
            String::new()
        } else {
            format!("a{k}_")
        };
        let mut inst = GuardInstance {
            org: slot.org.clone(),
            label: String::new(),
            xg: None,
            fuzzer: None,
            frontends: Vec::new(),
            cores: Vec::new(),
            core_indices: Vec::new(),
        };
        match (&slot.org, infra) {
            (AccelOrg::AccelSide, AccelInfra::AccelSide { cache }) => {
                let name = format!("{prefix}accel_cache");
                let c: Box<dyn Component<Message>> = match cfg.host {
                    HostProtocol::Hammer => Box::new(HammerCache::new(
                        name.clone(),
                        home_map.clone(),
                        HammerConfig {
                            sets: cfg.accel_cache.0,
                            ways: cfg.accel_cache.1,
                            ..hammer_cfg.clone()
                        },
                    )),
                    HostProtocol::Mesi => Box::new(MesiL1::new(
                        name.clone(),
                        home_map.clone(),
                        MesiL1Config {
                            sets: cfg.accel_cache.0,
                            ways: cfg.accel_cache.1,
                            ..MesiL1Config::default()
                        },
                    )),
                };
                let id = b.add(c);
                assert_eq!(id, *cache);
                // The accelerator-side cache reaches the host over the chip
                // crossing (one link per home bank).
                for &home in &homes {
                    b.link_bidi(
                        *cache,
                        home,
                        Link::unordered(cfg.crossing.0, cfg.crossing.1),
                    );
                }
                inst.label = name;
                inst.frontends.push(*cache);
            }
            (AccelOrg::HostSide, AccelInfra::HostSide { cache }) => {
                let name = format!("{prefix}hostside_cache");
                let c: Box<dyn Component<Message>> = match cfg.host {
                    HostProtocol::Hammer => Box::new(HammerCache::new(
                        name.clone(),
                        home_map.clone(),
                        hammer_cfg.clone(),
                    )),
                    HostProtocol::Mesi => Box::new(MesiL1::new(
                        name.clone(),
                        home_map.clone(),
                        MesiL1Config::default(),
                    )),
                };
                let id = b.add(c);
                assert_eq!(id, *cache);
                inst.label = name;
                inst.frontends.push(*cache);
                // The *core↔cache* link carries the crossing latency here:
                // the accelerator has no cache of its own (Figure 2(b)).
            }
            (AccelOrg::Xg { variant, .. }, AccelInfra::Xg { xg, top, two_level }) => {
                let name = format!("{prefix}xg");
                let guard: Box<dyn Component<Message>> = match cfg.host {
                    HostProtocol::Hammer => Box::new(CrossingGuard::new_hammer(
                        name.clone(),
                        *top,
                        home_map.clone(),
                        os_id,
                        xg_config(*variant, slot),
                    )),
                    HostProtocol::Mesi => Box::new(CrossingGuard::new_mesi(
                        name.clone(),
                        *top,
                        home_map.clone(),
                        os_id,
                        xg_config(*variant, slot),
                    )),
                };
                let id = b.add(guard);
                assert_eq!(id, *xg);
                inst.label = name;
                inst.xg = Some(*xg);
                link_guard_to_home(&mut b, cfg, *xg, &homes);
                b.link_bidi(*xg, *top, Link::ordered(cfg.crossing.0, cfg.crossing.1));
                if *two_level {
                    let l2 = b.add(Box::new(AccelL2::new(
                        format!("{prefix}accel_l2"),
                        *xg,
                        AccelL2Config {
                            sets: cfg.l2_cache.0,
                            ways: cfg.l2_cache.1,
                            block_blocks: cfg.xg.block_blocks,
                            weak_sharing: cfg.weak_accel_sharing,
                            ..AccelL2Config::default()
                        },
                    )));
                    assert_eq!(l2, *top);
                    for i in 0..cfg.accel_cores {
                        let l1 = b.add(Box::new(AccelL1::new(
                            format!("{prefix}accel_l1_{i}"),
                            l2,
                            accel_l1_cfg.clone(),
                        )));
                        b.link_bidi(l1, l2, Link::ordered(1, 3));
                        inst.frontends.push(l1);
                    }
                } else {
                    let l1 = b.add(Box::new(AccelL1::new(
                        format!("{prefix}accel_l1"),
                        *xg,
                        accel_l1_cfg.clone(),
                    )));
                    assert_eq!(l1, *top);
                    inst.frontends.push(l1);
                }
            }
            (AccelOrg::FuzzXg { variant }, AccelInfra::FuzzXg { xg, fuzzer }) => {
                let name = format!("{prefix}xg");
                let guard: Box<dyn Component<Message>> = match cfg.host {
                    HostProtocol::Hammer => Box::new(CrossingGuard::new_hammer(
                        name.clone(),
                        *fuzzer,
                        home_map.clone(),
                        os_id,
                        xg_config(*variant, slot),
                    )),
                    HostProtocol::Mesi => Box::new(CrossingGuard::new_mesi(
                        name.clone(),
                        *fuzzer,
                        home_map.clone(),
                        os_id,
                        xg_config(*variant, slot),
                    )),
                };
                let id = b.add(guard);
                assert_eq!(id, *xg);
                inst.label = name;
                inst.xg = Some(*xg);
                link_guard_to_home(&mut b, cfg, *xg, &homes);
                let opts = fuzz.clone().expect("FuzzXg needs FuzzOpts");
                let fz = b.add(Box::new(FuzzAccel::new(
                    format!("{prefix}fuzz_accel"),
                    *xg,
                    opts,
                )));
                assert_eq!(fz, *fuzzer);
                inst.fuzzer = Some(fz);
                b.link_bidi(*xg, fz, Link::ordered(cfg.crossing.0, cfg.crossing.1));
            }
            (AccelOrg::FuzzAccelSide, AccelInfra::FuzzHost { fuzzer }) => {
                let opts = fuzz.clone().expect("FuzzAccelSide needs FuzzOpts");
                // This fuzzer speaks raw host protocol at the CPU caches and
                // every *other* hierarchy's host identity.
                let mut peers = cpu_caches.clone();
                peers.extend(
                    plans
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .map(|(_, (peer, _, _))| *peer),
                );
                let name = format!("{prefix}fuzz_host");
                let fz = b.add(Box::new(FuzzHostCache::new(
                    name.clone(),
                    cfg.host,
                    home_map.clone(),
                    peers,
                    opts,
                )));
                assert_eq!(fz, *fuzzer);
                inst.label = name;
                inst.fuzzer = Some(fz);
                for &home in &homes {
                    b.link_bidi(fz, home, Link::unordered(cfg.crossing.0, cfg.crossing.1));
                }
            }
            _ => unreachable!("accel org / infra mismatch"),
        }
        debug_assert!(
            inst.xg.is_none() || inst.xg == Some(*host_peer),
            "a guarded hierarchy's host identity is its guard"
        );
        instances.push(inst);
    }

    // ---- cores, added last so every frontend id is known ----
    let mut cpu_cores = Vec::new();
    for (i, &cache) in cpu_caches.iter().enumerate() {
        let core = b.add(make_core(CoreSlot::Cpu(i), cache, i));
        b.link_bidi(core, cache, Link::ordered(1, 1));
        cpu_cores.push(core);
    }
    let mut accel_cores = Vec::new();
    let mut ai = 0usize; // accelerator core index across hierarchies
    for inst in &mut instances {
        for i in 0..accel_core_count(&inst.org, cfg.accel_cores) {
            let frontend = inst.frontends[i.min(inst.frontends.len() - 1)];
            let core = b.add(make_core(CoreSlot::Accel(ai), frontend, n + ai));
            let link = if matches!(inst.org, AccelOrg::HostSide) {
                // Figure 2(b): every access crosses the chip boundary.
                Link::ordered(cfg.crossing.0, cfg.crossing.1)
            } else {
                Link::ordered(1, 1)
            };
            b.link_bidi(core, frontend, link);
            inst.cores.push(core);
            inst.core_indices.push(n + ai);
            accel_cores.push(core);
            ai += 1;
        }
    }

    b.default_link(Link::unordered(cfg.host_link.0, cfg.host_link.1));

    // ---- shard plan, mirroring the id layout above ----
    // Bank b → shard b; the OS rides with bank 0; accelerator slot k's
    // whole node block (guard, caches, fuzzer, cores) → shard m+k; CPU
    // core/cache pair i → shard m+num_slots+i. Every 1-cycle core↔cache
    // and intra-hierarchy link stays shard-local, so the conservative
    // window δ is set by the (slower) cross-fabric links.
    let num_slots = slots.len();
    let cpu_shard = |i: usize| (m + num_slots + i) as u32;
    let mut shard_plan: Vec<u32> = Vec::new();
    shard_plan.extend((0..n).map(cpu_shard)); // CPU caches
    shard_plan.extend((0..m).map(|bank| bank as u32)); // home banks
    shard_plan.push(0); // OS
    for (k, (_, _, size)) in plans.iter().enumerate() {
        shard_plan.extend(std::iter::repeat_n((m + k) as u32, *size));
    }
    shard_plan.extend((0..n).map(cpu_shard)); // CPU cores
    for (k, inst) in instances.iter().enumerate() {
        shard_plan.extend(std::iter::repeat_n((m + k) as u32, inst.cores.len()));
    }

    let sim = if cfg.threads == 0 {
        ExecSim::Serial(b.build())
    } else {
        ExecSim::Par(ParSim::new(b, shard_plan, cfg.threads))
    };

    BuiltSystem {
        sim,
        cpu_cores,
        cpu_caches,
        accel_cores,
        accel_frontends: instances
            .iter()
            .flat_map(|inst| inst.frontends.iter().copied())
            .collect(),
        homes,
        os,
        xg: instances.iter().find_map(|inst| inst.xg),
        fuzzer: instances.iter().find_map(|inst| inst.fuzzer),
        accels: instances,
    }
}

/// Wires the guard ↔ home-bank pairs. Without faults the pairs simply ride
/// the default (unordered host-network) link, exactly as before; with a
/// fault plan configured, both directions of every pair get an explicit
/// unordered link carrying the plan. The guard ↔ accelerator side stays
/// ordered and fault-free either way (§2.1).
fn link_guard_to_home(b: &mut SimBuilder, cfg: &SystemConfig, xg: NodeId, homes: &[NodeId]) {
    if cfg.host_faults.is_none() {
        return;
    }
    let link = Link::unordered(cfg.host_link.0, cfg.host_link.1).with_faults(cfg.host_faults);
    for &home in homes {
        b.link_bidi(xg, home, link);
    }
}

/// Internal: node layout per accelerator organization.
enum AccelInfra {
    AccelSide {
        cache: NodeId,
    },
    HostSide {
        cache: NodeId,
    },
    Xg {
        xg: NodeId,
        top: NodeId,
        two_level: bool,
    },
    FuzzXg {
        xg: NodeId,
        fuzzer: NodeId,
    },
    FuzzHost {
        fuzzer: NodeId,
    },
}

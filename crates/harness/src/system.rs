//! System assembly: builds a simulator for any [`SystemConfig`].

use xg_accel::{AccelL1, AccelL1Config, AccelL2, AccelL2Config};
use xg_core::{CrossingGuard, Os, OsPolicy, XgConfig};
use xg_host_hammer::{HammerCache, HammerConfig, HammerDirectory};
use xg_host_mesi::{MesiL1, MesiL1Config, MesiL2, MesiL2Config};
use xg_proto::{Message, Sim, SimBuilder};
use xg_sim::{Component, Link, NodeId};

use crate::config::{AccelOrg, HostProtocol, SystemConfig};
use crate::fuzz::{FuzzAccel, FuzzHostCache, FuzzOpts};

/// Where a core sits, passed to the core factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSlot {
    /// CPU core `i`; its global core index equals `i`.
    Cpu(usize),
    /// Accelerator core `i`; its global core index is `cpu_cores + i`.
    Accel(usize),
}

/// A fully wired system ready to run.
pub struct BuiltSystem {
    /// The simulator.
    pub sim: Sim,
    /// CPU core nodes (from the factory).
    pub cpu_cores: Vec<NodeId>,
    /// CPU cache nodes.
    pub cpu_caches: Vec<NodeId>,
    /// Accelerator core nodes (empty in fuzz configurations).
    pub accel_cores: Vec<NodeId>,
    /// The cache each accelerator core talks to.
    pub accel_frontends: Vec<NodeId>,
    /// Directory (Hammer) or shared L2 (MESI).
    pub home: NodeId,
    /// The OS model.
    pub os: NodeId,
    /// The Crossing Guard, if this configuration has one.
    pub xg: Option<NodeId>,
    /// The fuzzer node, if this is a fuzzing configuration.
    pub fuzzer: Option<NodeId>,
}

impl BuiltSystem {
    /// Kicks every core's issue loop (wake token 0 at staggered times).
    pub fn start_cores(&mut self) {
        let all: Vec<NodeId> = self
            .cpu_cores
            .iter()
            .chain(self.accel_cores.iter())
            .copied()
            .collect();
        for (i, core) in all.into_iter().enumerate() {
            self.sim.post_wake(core, 1 + i as u64, 0);
        }
        if let Some(fuzzer) = self.fuzzer {
            self.sim.post_wake(fuzzer, 1, 0);
        }
    }
}

/// Builds the system described by `cfg`. The `make_core` factory produces
/// each core component given its slot, the cache it should talk to, and
/// its global core index (CPU cores first, then accelerator cores).
///
/// Fuzzing configurations (`FuzzXg`, `FuzzAccelSide`) need [`FuzzOpts`];
/// pass `None` otherwise.
///
/// # Panics
/// Panics if a fuzzing organization is selected without `fuzz` options.
pub fn build_system(
    cfg: &SystemConfig,
    os_policy: OsPolicy,
    fuzz: Option<FuzzOpts>,
    mut make_core: impl FnMut(CoreSlot, NodeId, usize) -> Box<dyn Component<Message>>,
) -> BuiltSystem {
    let mut b = SimBuilder::new(cfg.seed);
    let n = cfg.cpu_cores;

    // ---- host caches (ids 0..n) ----
    let hammer_cfg = HammerConfig {
        sets: cfg.cpu_cache.0,
        ways: cfg.cpu_cache.1,
        strict_data: cfg.strict_host,
        sink_nacks: !cfg.strict_host,
        ..HammerConfig::default()
    };
    let mesi_l1_cfg = MesiL1Config {
        sets: cfg.cpu_cache.0,
        ways: cfg.cpu_cache.1,
        ..MesiL1Config::default()
    };
    let mut cpu_caches = Vec::new();
    for i in 0..n {
        let cache: Box<dyn Component<Message>> = match cfg.host {
            HostProtocol::Hammer => Box::new(HammerCache::new(
                format!("cpu_cache{i}"),
                NodeId::from_index(n), // home, added next
                hammer_cfg.clone(),
            )),
            HostProtocol::Mesi => Box::new(MesiL1::new(
                format!("cpu_cache{i}"),
                NodeId::from_index(n),
                mesi_l1_cfg.clone(),
            )),
        };
        cpu_caches.push(b.add(cache));
    }

    // ---- layout bookkeeping for nodes added after the home ----
    let home = NodeId::from_index(n);
    let os_id = NodeId::from_index(n + 1);
    let next_free = n + 2;

    // Which node speaks the host protocol on the accelerator's behalf
    // (peer list for the Hammer broadcast).
    let (accel_host_peer, accel_infra): (Option<NodeId>, AccelInfra) = match &cfg.accel {
        AccelOrg::AccelSide => (
            Some(NodeId::from_index(next_free)),
            AccelInfra::AccelSide {
                cache: NodeId::from_index(next_free),
            },
        ),
        AccelOrg::HostSide => (
            Some(NodeId::from_index(next_free)),
            AccelInfra::HostSide {
                cache: NodeId::from_index(next_free),
            },
        ),
        AccelOrg::Xg { two_level, .. } => {
            let xg = NodeId::from_index(next_free);
            let top = NodeId::from_index(next_free + 1);
            (
                Some(xg),
                AccelInfra::Xg {
                    xg,
                    top,
                    two_level: *two_level,
                },
            )
        }
        AccelOrg::FuzzXg { .. } => {
            let xg = NodeId::from_index(next_free);
            let fz = NodeId::from_index(next_free + 1);
            (Some(xg), AccelInfra::FuzzXg { xg, fuzzer: fz })
        }
        AccelOrg::FuzzAccelSide => (
            Some(NodeId::from_index(next_free)),
            AccelInfra::FuzzHost {
                fuzzer: NodeId::from_index(next_free),
            },
        ),
    };

    // ---- home node ----
    match cfg.host {
        HostProtocol::Hammer => {
            let mut peers = cpu_caches.clone();
            if let Some(p) = accel_host_peer {
                peers.push(p);
            }
            let dir = b.add(Box::new(HammerDirectory::new(
                "dir",
                peers,
                cfg.mem_latency,
            )));
            assert_eq!(dir, home);
        }
        HostProtocol::Mesi => {
            let l2 = b.add(Box::new(MesiL2::new(
                "host_l2",
                MesiL2Config {
                    sets: cfg.l2_cache.0,
                    ways: cfg.l2_cache.1,
                    mem_latency: cfg.mem_latency,
                    ack_data_interchange: !cfg.strict_host,
                    ..MesiL2Config::default()
                },
            )));
            assert_eq!(l2, home);
        }
    }

    // ---- OS ----
    let os = b.add(Box::new(Os::new("os", os_policy)));
    assert_eq!(os, os_id);

    // ---- accelerator infrastructure ----
    let accel_l1_cfg = AccelL1Config {
        sets: cfg.accel_cache.0,
        ways: cfg.accel_cache.1,
        block_blocks: cfg.xg.block_blocks,
        prefetch: cfg.prefetch,
        ..AccelL1Config::default()
    };
    let xg_config = |variant| XgConfig {
        variant,
        ..cfg.xg.clone()
    };

    let mut xg_node = None;
    let mut fuzzer_node = None;
    let mut accel_frontends: Vec<NodeId> = Vec::new();
    // Per-frontend crossing link handled below; collect (node, is_ordered).
    match (&cfg.accel, accel_infra) {
        (AccelOrg::AccelSide, AccelInfra::AccelSide { cache }) => {
            let c: Box<dyn Component<Message>> = match cfg.host {
                HostProtocol::Hammer => Box::new(HammerCache::new(
                    "accel_cache",
                    home,
                    HammerConfig {
                        sets: cfg.accel_cache.0,
                        ways: cfg.accel_cache.1,
                        ..hammer_cfg.clone()
                    },
                )),
                HostProtocol::Mesi => Box::new(MesiL1::new(
                    "accel_cache",
                    home,
                    MesiL1Config {
                        sets: cfg.accel_cache.0,
                        ways: cfg.accel_cache.1,
                        ..MesiL1Config::default()
                    },
                )),
            };
            let id = b.add(c);
            assert_eq!(id, cache);
            // The accelerator-side cache reaches the host over the chip
            // crossing.
            b.link_bidi(cache, home, Link::unordered(cfg.crossing.0, cfg.crossing.1));
            accel_frontends.push(cache);
        }
        (AccelOrg::HostSide, AccelInfra::HostSide { cache }) => {
            let c: Box<dyn Component<Message>> = match cfg.host {
                HostProtocol::Hammer => {
                    Box::new(HammerCache::new("hostside_cache", home, hammer_cfg.clone()))
                }
                HostProtocol::Mesi => {
                    Box::new(MesiL1::new("hostside_cache", home, MesiL1Config::default()))
                }
            };
            let id = b.add(c);
            assert_eq!(id, cache);
            accel_frontends.push(cache);
            // The *core↔cache* link carries the crossing latency here: the
            // accelerator has no cache of its own (Figure 2(b)).
        }
        (AccelOrg::Xg { variant, .. }, AccelInfra::Xg { xg, top, two_level }) => {
            let guard: Box<dyn Component<Message>> = match cfg.host {
                HostProtocol::Hammer => Box::new(CrossingGuard::new_hammer(
                    "xg",
                    top,
                    home,
                    os_id,
                    xg_config(*variant),
                )),
                HostProtocol::Mesi => Box::new(CrossingGuard::new_mesi(
                    "xg",
                    top,
                    home,
                    os_id,
                    xg_config(*variant),
                )),
            };
            let id = b.add(guard);
            assert_eq!(id, xg);
            xg_node = Some(xg);
            link_guard_to_home(&mut b, cfg, xg, home);
            b.link_bidi(xg, top, Link::ordered(cfg.crossing.0, cfg.crossing.1));
            if two_level {
                let l2 = b.add(Box::new(AccelL2::new(
                    "accel_l2",
                    xg,
                    AccelL2Config {
                        sets: cfg.l2_cache.0,
                        ways: cfg.l2_cache.1,
                        block_blocks: cfg.xg.block_blocks,
                        weak_sharing: cfg.weak_accel_sharing,
                        ..AccelL2Config::default()
                    },
                )));
                assert_eq!(l2, top);
                for i in 0..cfg.accel_cores {
                    let l1 = b.add(Box::new(AccelL1::new(
                        format!("accel_l1_{i}"),
                        l2,
                        accel_l1_cfg.clone(),
                    )));
                    b.link_bidi(l1, l2, Link::ordered(1, 3));
                    accel_frontends.push(l1);
                }
            } else {
                let l1 = b.add(Box::new(AccelL1::new("accel_l1", xg, accel_l1_cfg.clone())));
                assert_eq!(l1, top);
                accel_frontends.push(l1);
            }
        }
        (AccelOrg::FuzzXg { variant }, AccelInfra::FuzzXg { xg, fuzzer }) => {
            let guard: Box<dyn Component<Message>> = match cfg.host {
                HostProtocol::Hammer => Box::new(CrossingGuard::new_hammer(
                    "xg",
                    fuzzer,
                    home,
                    os_id,
                    xg_config(*variant),
                )),
                HostProtocol::Mesi => Box::new(CrossingGuard::new_mesi(
                    "xg",
                    fuzzer,
                    home,
                    os_id,
                    xg_config(*variant),
                )),
            };
            let id = b.add(guard);
            assert_eq!(id, xg);
            xg_node = Some(xg);
            link_guard_to_home(&mut b, cfg, xg, home);
            let opts = fuzz.clone().expect("FuzzXg needs FuzzOpts");
            let fz = b.add(Box::new(FuzzAccel::new("fuzz_accel", xg, opts)));
            assert_eq!(fz, fuzzer);
            fuzzer_node = Some(fz);
            b.link_bidi(xg, fz, Link::ordered(cfg.crossing.0, cfg.crossing.1));
        }
        (AccelOrg::FuzzAccelSide, AccelInfra::FuzzHost { fuzzer }) => {
            let opts = fuzz.clone().expect("FuzzAccelSide needs FuzzOpts");
            let fz = b.add(Box::new(FuzzHostCache::new(
                "fuzz_host",
                cfg.host,
                home,
                cpu_caches.clone(),
                opts,
            )));
            assert_eq!(fz, fuzzer);
            fuzzer_node = Some(fz);
            b.link_bidi(fz, home, Link::unordered(cfg.crossing.0, cfg.crossing.1));
        }
        _ => unreachable!("accel org / infra mismatch"),
    }

    // ---- cores, added last so every frontend id is known ----
    let mut cpu_cores = Vec::new();
    for (i, &cache) in cpu_caches.iter().enumerate() {
        let core = b.add(make_core(CoreSlot::Cpu(i), cache, i));
        b.link_bidi(core, cache, Link::ordered(1, 1));
        cpu_cores.push(core);
    }
    let mut accel_cores = Vec::new();
    let accel_core_count = match &cfg.accel {
        AccelOrg::FuzzXg { .. } | AccelOrg::FuzzAccelSide => 0,
        AccelOrg::Xg {
            two_level: true, ..
        } => cfg.accel_cores,
        _ => 1,
    };
    for i in 0..accel_core_count {
        let frontend = accel_frontends[i.min(accel_frontends.len() - 1)];
        let core = b.add(make_core(CoreSlot::Accel(i), frontend, n + i));
        let link = if matches!(cfg.accel, AccelOrg::HostSide) {
            // Figure 2(b): every access crosses the chip boundary.
            Link::ordered(cfg.crossing.0, cfg.crossing.1)
        } else {
            Link::ordered(1, 1)
        };
        b.link_bidi(core, frontend, link);
        accel_cores.push(core);
    }

    b.default_link(Link::unordered(cfg.host_link.0, cfg.host_link.1));

    BuiltSystem {
        sim: b.build(),
        cpu_cores,
        cpu_caches,
        accel_cores,
        accel_frontends,
        home,
        os,
        xg: xg_node,
        fuzzer: fuzzer_node,
    }
}

/// Wires the guard ↔ home pair. Without faults the pair simply rides the
/// default (unordered host-network) link, exactly as before; with a fault
/// plan configured, both directions get an explicit unordered link carrying
/// the plan. The guard ↔ accelerator side stays ordered and fault-free
/// either way (§2.1).
fn link_guard_to_home(b: &mut SimBuilder, cfg: &SystemConfig, xg: NodeId, home: NodeId) {
    if cfg.host_faults.is_none() {
        return;
    }
    let link = Link::unordered(cfg.host_link.0, cfg.host_link.1).with_faults(cfg.host_faults);
    b.link_bidi(xg, home, link);
}

/// Internal: node layout per accelerator organization.
enum AccelInfra {
    AccelSide {
        cache: NodeId,
    },
    HostSide {
        cache: NodeId,
    },
    Xg {
        xg: NodeId,
        top: NodeId,
        two_level: bool,
    },
    FuzzXg {
        xg: NodeId,
        fuzzer: NodeId,
    },
    FuzzHost {
        fuzzer: NodeId,
    },
}

//! One-call experiment drivers.
//!
//! Each function assembles a system, attaches the right traffic
//! generators, runs it under a progress watchdog (so protocol deadlock is
//! *detected*, never hung on), and returns a structured outcome.

use xg_core::{Os, OsPolicy};
use xg_sim::{ProfileConfig, Report, TimelineConfig, TraceConfig};

use crate::config::{AccelOrg, SystemConfig};
use crate::fuzz::FuzzOpts;
use crate::system::{accel_core_count, build_system, BuiltSystem, CoreSlot};
use crate::tester::{word_pool, SharedTester, TesterCfg, TesterCore, TesterShared};
use crate::workloads::{Pattern, WorkloadCore};

/// Instrumentation attached to a run: post-mortem ring tracing, kernel
/// profiling, and transaction timelines. The default is everything off —
/// zero per-event overhead beyond one branch, and reports byte-identical
/// to uninstrumented runs.
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    /// Per-address ring tracing for post-mortem dumps.
    pub trace: TraceConfig,
    /// Kernel profiling: dispatch counters, host-time attribution, queue
    /// high-water marks, and the epoch time-series (lands in the report's
    /// `profile` section).
    pub profile: ProfileConfig,
    /// Transaction timeline recording (Chrome trace-event JSON).
    pub timeline: Option<TimelineConfig>,
}

impl Instrumentation {
    /// Everything off (the default).
    pub fn off() -> Self {
        Instrumentation::default()
    }

    /// Kernel profiling on, tracing and timelines off.
    pub fn profiled() -> Self {
        Instrumentation {
            profile: ProfileConfig::on(),
            ..Instrumentation::default()
        }
    }

    /// What a failure replay records: ring tracing for the post-mortem
    /// dump plus a transaction timeline of the failing run.
    pub fn replay() -> Self {
        Instrumentation {
            trace: TraceConfig::ring(),
            timeline: Some(TimelineConfig::default()),
            ..Instrumentation::default()
        }
    }

    fn apply(&self, system: &mut BuiltSystem) {
        system.sim.set_trace_config(self.trace);
        system.sim.set_profile_config(self.profile);
        if let Some(tl) = self.timeline {
            system.sim.enable_timeline(tl);
        }
    }
}

/// Hooks a tester hub into a partitioned run: the done flag switches to
/// deferred mode and is republished at every window barrier, so every
/// shard observes "target reached" at the same deterministic window
/// boundary regardless of worker count. A no-op for serial runs.
fn attach_tester_barrier(system: &mut BuiltSystem, shared: &SharedTester) {
    if let Some(par) = system.sim.as_par_mut() {
        shared.set_deferred(true);
        let hub = shared.clone();
        par.add_barrier_hook(Box::new(move || hub.refresh_done()));
    }
}

/// Options for a stress run (paper §4.1 methodology).
#[derive(Debug, Clone)]
pub struct StressOpts {
    /// Total operations across all cores.
    pub ops: u64,
    /// Number of contended blocks in the address pool.
    pub blocks: u64,
    /// Words used per block.
    pub words_per_block: u64,
    /// Tester knobs.
    pub tester: TesterCfg,
    /// Watchdog: max cycles with no completed operation before declaring
    /// deadlock.
    pub stall_bound: u64,
    /// Absolute simulation budget.
    pub max_cycles: u64,
}

impl Default for StressOpts {
    fn default() -> Self {
        StressOpts {
            ops: 2_000,
            blocks: 4,
            words_per_block: 2,
            tester: TesterCfg::default(),
            stall_bound: 100_000,
            max_cycles: 50_000_000,
        }
    }
}

/// Outcome of a stress run.
#[derive(Debug)]
pub struct StressOutcome {
    /// Cycles simulated.
    pub cycles: u64,
    /// Operations completed.
    pub completed: u64,
    /// Value-check failures (0 for a correct protocol).
    pub data_errors: u64,
    /// First few failure descriptions.
    pub error_log: Vec<String>,
    /// True if the watchdog fired or operations were left hanging.
    pub deadlocked: bool,
    /// Distinct (state, event) pairs visited across all controllers.
    pub transitions: usize,
    /// Post-mortem trace dump from a deterministic replay of a failed run
    /// (None when the run passed).
    pub post_mortem: Option<String>,
    /// Chrome trace-event JSON of the run, when a timeline was requested
    /// (or from the failure replay, for a failed run).
    pub timeline: Option<String>,
    /// Full statistics.
    pub report: Report,
}

/// Flags every operation still outstanding at a watchdog stop, so the
/// post-mortem dump of a deadlocked run names the stuck addresses.
fn flag_outstanding(system: &mut crate::system::BuiltSystem, cores: &[xg_sim::NodeId], now: u64) {
    let mut stuck = Vec::new();
    for &core in cores {
        let Some(t) = system.sim.get::<TesterCore>(core) else {
            continue;
        };
        let name = xg_sim::Component::name(t).to_owned();
        for (word_addr, is_store) in t.outstanding_ops() {
            stuck.push((name.clone(), word_addr, is_store));
        }
    }
    for (name, word_addr, is_store) in stuck {
        let op = if is_store { "store" } else { "load" };
        system.sim.flag_trace(
            now,
            xg_mem::Addr::new(word_addr).block().as_u64(),
            format!("{name}: {op} at word {word_addr:#x} outstanding at deadlock"),
        );
    }
}

/// Runs the §4.1 random coherence stress test on `cfg`.
///
/// On failure (data errors or deadlock), the identical seed is replayed with
/// ring tracing enabled and the resulting per-address post-mortem dump is
/// attached to the outcome — the fast run costs nothing, the slow run only
/// happens when there is something to explain.
pub fn run_stress(cfg: &SystemConfig, opts: &StressOpts) -> StressOutcome {
    let mut out = run_stress_with(cfg, opts, &Instrumentation::off());
    if out.data_errors > 0 || out.deadlocked {
        let replay = run_stress_with(cfg, opts, &Instrumentation::replay());
        out.post_mortem = replay.post_mortem;
        out.timeline = replay.timeline;
    } else {
        out.post_mortem = None;
    }
    out
}

/// Fills the report's per-guard section from a finished run: OS error
/// attribution per guard instance (total, per kind, and whether the OS
/// disabled it) plus per-hierarchy tester results (value-check failures,
/// completed operations, operations left hanging). All new data lives in
/// this section — never in `scalars` — so single-accelerator reports stay
/// byte-identical to their historical form once the section is stripped.
fn fill_guard_section(report: &mut Report, system: &BuiltSystem, shared: &SharedTester) {
    let os = system.sim.get::<Os>(system.os);
    let shared = shared.lock().unwrap();
    for inst in &system.accels {
        let label = inst.label.as_str();
        if let Some(xg) = inst.xg {
            let Some(os) = os else { continue };
            report.guard_set(label, "os_errors", os.errors_from(xg));
            for (kind, count) in os.kinds_from(xg) {
                report.guard_set(label, format!("os.{kind}"), count);
            }
            report.guard_set(
                label,
                "disabled",
                u64::from(os.disabled_guards().contains(&xg)),
            );
        }
        if !inst.cores.is_empty() {
            let data_errors: u64 = inst
                .core_indices
                .iter()
                .map(|&i| shared.data_errors_of(i))
                .sum();
            report.guard_set(label, "data_errors", data_errors);
            let (mut completed, mut outstanding) = (0u64, 0u64);
            for &core in &inst.cores {
                if let Some(t) = system.sim.get::<TesterCore>(core) {
                    completed += t.completed();
                    outstanding += t.outstanding() as u64;
                }
            }
            report.guard_set(label, "ops_completed", completed);
            report.guard_set(label, "outstanding", outstanding);
        }
    }
}

/// Runs the stress test once with explicit [`Instrumentation`] — no
/// automatic failure replay. This is the entry point for profiled runs
/// (`xg-report --profile`) and timeline captures (`--timeline`).
pub fn run_stress_with(
    cfg: &SystemConfig,
    opts: &StressOpts,
    instr: &Instrumentation,
) -> StressOutcome {
    let cfg = cfg.clone().shrink_caches();
    let accel_cores: usize = cfg
        .accel_slots()
        .iter()
        .map(|slot| accel_core_count(&slot.org, cfg.accel_cores))
        .sum();
    let total_cores = cfg.cpu_cores + accel_cores;
    let shared = TesterShared::new(total_cores, opts.ops);
    let pool = word_pool(0x4000, opts.blocks, opts.words_per_block);
    let mut system = build_system(&cfg, OsPolicy::ReportOnly, None, |slot, cache, index| {
        let name = match slot {
            CoreSlot::Cpu(i) => format!("tester_cpu{i}"),
            CoreSlot::Accel(i) => format!("tester_acc{i}"),
        };
        Box::new(TesterCore::new(
            name,
            cache,
            index,
            shared.clone(),
            pool.clone(),
            opts.tester.clone(),
        ))
    });
    instr.apply(&mut system);
    attach_tester_barrier(&mut system, &shared);
    system.start_cores();
    let out = system
        .sim
        .run_with_watchdog(opts.max_cycles, opts.stall_bound);
    if out.stalled {
        let cores: Vec<_> = system
            .cpu_cores
            .iter()
            .chain(&system.accel_cores)
            .copied()
            .collect();
        flag_outstanding(&mut system, &cores, out.now.as_u64());
    }
    let mut report = system.sim.report();
    fill_guard_section(&mut report, &system, &shared);
    let post_mortem = system.sim.post_mortem();
    let timeline = system.sim.timeline_json();
    let shared = shared.lock().unwrap();
    let hung_ops = report.sum_suffix(".outstanding") > 0;
    let transitions: usize = report.coverages().map(|(_, c)| c.len()).sum();
    StressOutcome {
        cycles: out.now.as_u64(),
        completed: shared.completed(),
        data_errors: shared.data_errors(),
        error_log: shared.error_log().to_vec(),
        deadlocked: out.stalled || (!shared.done() && !out.quiescent) || hung_ops,
        transitions,
        post_mortem,
        timeline,
        report,
    }
}

/// Outcome of a fuzzing run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Cycles simulated.
    pub cycles: u64,
    /// Fuzz messages injected.
    pub injected: u64,
    /// Host-side protocol violations (impossible events at host
    /// controllers). Zero when a Crossing Guard protects the host.
    pub host_violations: u64,
    /// Errors the guard reported to the OS, total.
    pub os_errors: u64,
    /// True if the host stopped making progress (CPU testers starved) or
    /// ops were left permanently outstanding.
    pub deadlocked: bool,
    /// CPU tester operations that completed *while being bombarded* —
    /// evidence the host stayed alive.
    pub cpu_ops_completed: u64,
    /// CPU-side value-check failures.
    pub cpu_data_errors: u64,
    /// Post-mortem trace dump from a deterministic replay of a run that
    /// flagged anything (corruption, host violations, guard errors, or
    /// deadlock): the last events touching each offending address, across
    /// the guard and every host controller. None when nothing was flagged.
    pub post_mortem: Option<String>,
    /// Chrome trace-event JSON of the run, when a timeline was requested
    /// (or from the failure replay, for a flagged run).
    pub timeline: Option<String>,
    /// Full statistics.
    pub report: Report,
}

/// Runs a fuzz attack (`FuzzXg` or `FuzzAccelSide` organization) while CPU
/// testers measure whether the host stays correct and alive.
///
/// If the attack corrupts host data or wedges the host, the identical seed
/// is replayed with ring tracing enabled and the post-mortem dump naming the
/// offending addresses is attached to the outcome.
pub fn run_fuzz(cfg: &SystemConfig, fuzz: &FuzzOpts, cpu_ops: u64) -> FuzzOutcome {
    let mut out = run_fuzz_with(cfg, fuzz, cpu_ops, &Instrumentation::off());
    if out.cpu_data_errors > 0 || out.host_violations > 0 || out.os_errors > 0 || out.deadlocked {
        let replay = run_fuzz_with(cfg, fuzz, cpu_ops, &Instrumentation::replay());
        out.post_mortem = replay.post_mortem;
        out.timeline = replay.timeline;
    } else {
        out.post_mortem = None;
    }
    out
}

/// Runs a fuzz attack once with explicit [`Instrumentation`] — no
/// automatic failure replay.
pub fn run_fuzz_with(
    cfg: &SystemConfig,
    fuzz: &FuzzOpts,
    cpu_ops: u64,
    instr: &Instrumentation,
) -> FuzzOutcome {
    assert!(
        cfg.accel_slots()
            .iter()
            .any(|s| matches!(s.org, AccelOrg::FuzzXg { .. } | AccelOrg::FuzzAccelSide)),
        "run_fuzz needs at least one fuzzing accelerator slot"
    );
    // Guarantee 0 is grounded in page permissions: give the accelerator
    // read-write access to its own attack range and *nothing else*. What
    // the accelerator may legally write is outside the protection claim
    // (paper §2.2.1); everything else must be untouchable.
    let mut cfg = cfg.clone();
    let mut perms = xg_mem::PermissionTable::with_default(xg_mem::PagePerm::None);
    let last_page = xg_mem::BlockAddr::new(fuzz.pool_blocks).page().as_u64();
    for page in 0..=last_page {
        perms.set(xg_mem::PageAddr::new(page), xg_mem::PagePerm::ReadWrite);
    }
    // Campaign mode can additionally take *read-only* views of pages it must
    // never modify (typically the CPU testers' working set): shared copies
    // are legal there, writes are guarantee-0b rejections, and the host's
    // demand traffic for those blocks now has to cross the guard.
    for &page in &fuzz.read_only_pages {
        perms.set(xg_mem::PageAddr::new(page), xg_mem::PagePerm::Read);
    }
    cfg.xg.perms = perms;
    // Sibling hierarchies — correct guarded accelerators running alongside
    // the fuzzed one (the blast-radius setup) — get their own page table:
    // read-write on the CPU testers' pool, which their tester cores share
    // with the host cores. The attacker never holds write permission
    // there, so sibling/CPU corruption can only be a containment failure,
    // never legal traffic.
    let slots = cfg.accel_slots();
    if slots.iter().any(|s| matches!(s.org, AccelOrg::Xg { .. })) {
        let cpu_pool_base = 0x100_0000 / xg_mem::BLOCK_BYTES;
        let mut sibling_perms = xg_mem::PermissionTable::with_default(xg_mem::PagePerm::None);
        for blk in 0..fuzz.pool_blocks.max(4) {
            sibling_perms.set(
                xg_mem::BlockAddr::new(cpu_pool_base + blk).page(),
                xg_mem::PagePerm::ReadWrite,
            );
        }
        cfg.accels = slots
            .into_iter()
            .map(|mut slot| {
                if matches!(slot.org, AccelOrg::Xg { .. }) && slot.perms.is_none() {
                    slot.perms = Some(sibling_perms.clone());
                }
                slot
            })
            .collect();
    }
    let cfg = &cfg;
    let sibling_cores: usize = cfg
        .accel_slots()
        .iter()
        .map(|slot| accel_core_count(&slot.org, cfg.accel_cores))
        .sum();
    let shared = TesterShared::new(cfg.cpu_cores + sibling_cores, cpu_ops);
    // CPU testers use a pool *disjoint* from the fuzzer's attack range:
    // the fuzzer has read-write permission on its own pages, so corrupting
    // those is explicitly outside Crossing Guard's threat model (paper
    // §2.2.1). What must hold is that pages the accelerator cannot write
    // — including everything the CPUs work on here — stay intact, and
    // that the host keeps making progress.
    let pool = word_pool(0x100_0000, fuzz.pool_blocks.max(4), 2);
    let mut system = build_system(
        cfg,
        OsPolicy::ReportOnly,
        Some(fuzz.clone()),
        |slot, cache, index| {
            let name = match slot {
                CoreSlot::Cpu(i) => format!("tester_cpu{i}"),
                CoreSlot::Accel(i) => format!("tester_acc{i}"),
            };
            Box::new(TesterCore::new(
                name,
                cache,
                index,
                shared.clone(),
                pool.clone(),
                TesterCfg::default(),
            ))
        },
    );
    instr.apply(&mut system);
    attach_tester_barrier(&mut system, &shared);
    system.start_cores();
    let out = system.sim.run_with_watchdog(50_000_000, 200_000);
    if out.stalled {
        let cores: Vec<_> = system
            .cpu_cores
            .iter()
            .chain(&system.accel_cores)
            .copied()
            .collect();
        flag_outstanding(&mut system, &cores, out.now.as_u64());
    }
    let mut report = system.sim.report();
    fill_guard_section(&mut report, &system, &shared);
    let post_mortem = system.sim.post_mortem();
    let timeline = system.sim.timeline_json();
    let shared = shared.lock().unwrap();
    let hung_ops = report.sum_suffix(".outstanding") > 0;
    FuzzOutcome {
        cycles: out.now.as_u64(),
        injected: report.sum_suffix("fuzz_accel.sent") + report.sum_suffix("fuzz_host.sent"),
        host_violations: report.sum_suffix(".protocol_violation"),
        os_errors: report.get("os.errors_total"),
        deadlocked: out.stalled || !shared.done() || hung_ops,
        cpu_ops_completed: shared.completed(),
        cpu_data_errors: shared.data_errors(),
        post_mortem,
        timeline,
        report,
    }
}

/// Outcome of a performance run.
#[derive(Debug)]
pub struct PerfOutcome {
    /// Cycle at which the accelerator workload finished (the runtime the
    /// performance figure plots).
    pub accel_runtime: u64,
    /// Average accelerator access latency.
    pub accel_avg_latency: u64,
    /// Total cycles simulated (includes CPU wind-down).
    pub cycles: u64,
    /// True if anything failed to finish.
    pub incomplete: bool,
    /// Full statistics.
    pub report: Report,
}

/// Runs a performance experiment: the accelerator core(s) execute
/// `pattern` for `accel_ops` accesses while the CPUs run a light streaming
/// workload that shares the `ProducerConsumer` region.
pub fn run_workload(cfg: &SystemConfig, pattern: Pattern, accel_ops: u64) -> PerfOutcome {
    // Accel footprint: 256 words (16 KiB of blocks, bigger than the accel
    // L1 in the default config → real miss traffic). Shared base for
    // producer-consumer overlap with CPU cores.
    const BASE: u64 = 0x10_0000;
    const FOOTPRINT: u64 = 2048;
    let mut system = build_system(
        cfg,
        OsPolicy::ReportOnly,
        None,
        |slot, cache, _index| match slot {
            CoreSlot::Cpu(i) => Box::new(WorkloadCore::new(
                format!("wl_cpu{i}"),
                cache,
                Pattern::ProducerConsumer,
                BASE,
                FOOTPRINT,
                accel_ops / 4,
            )),
            CoreSlot::Accel(i) => Box::new(WorkloadCore::new(
                format!("wl_acc{i}"),
                cache,
                pattern,
                BASE,
                FOOTPRINT,
                accel_ops,
            )),
        },
    );
    system.start_cores();
    let out = system.sim.run_with_watchdog(200_000_000, 1_000_000);
    let mut accel_runtime = 0u64;
    let mut accel_lat = (0u64, 0u64);
    let mut incomplete = out.stalled;
    for &core in &system.accel_cores {
        let wl = system
            .sim
            .get::<WorkloadCore>(core)
            .expect("accel cores are workload cores");
        match wl.done_at() {
            Some(done) => accel_runtime = accel_runtime.max(done.as_u64()),
            None => incomplete = true,
        }
        accel_lat.0 += wl.avg_latency();
        accel_lat.1 += 1;
    }
    let report = system.sim.report();
    PerfOutcome {
        accel_runtime,
        accel_avg_latency: accel_lat.0 / accel_lat.1.max(1),
        cycles: out.now.as_u64(),
        incomplete,
        report,
    }
}

//! Parallel seed-sweep executor.
//!
//! The paper's evaluation is embarrassingly parallel: 12 configurations ×
//! many stress/fuzz seeds, each an independent deterministic simulation
//! whose statistics merge afterwards. This module fans those shards across
//! cores with a *work-stealing* scheme built from std primitives only:
//! every shard lives in one shared injector queue, and each worker thread
//! (std scoped threads, so borrowed inputs work) steals the next unclaimed
//! shard whenever it goes idle. Long shards therefore never convoy behind
//! short ones, and no worker owns a partition that could go stale.
//!
//! **Determinism guarantee.** Each shard is a self-contained seeded
//! simulation, and results are written into a slot chosen by the shard's
//! *submission index*, never by completion order. Folding the returned
//! `Vec` therefore observes exactly the order a serial loop would have
//! produced, so merged reports and rendered tables are byte-identical
//! regardless of `jobs` or thread interleaving. `jobs = 1` short-circuits
//! to a plain in-order loop on the calling thread — the exact legacy path,
//! with no queue, no threads, and no panic trampoline.
//!
//! **Failure propagation.** A panicking shard (e.g. an `assert!` on an
//! incomplete run) does not abort sibling shards mid-flight: every worker
//! catches unwinds, remaining shards still run, and after the sweep the
//! panic of the *lowest-indexed* failed shard is re-raised on the caller —
//! again matching what a serial loop would have reported first. Because
//! failure replays (post-mortem trace dumps) ride inside ordinary outcome
//! values, not panics, they are never lost to parallelism.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Parses a jobs knob value: `0` (or unparsable) means "auto" — one worker
/// per available core.
pub fn parse_jobs(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => available_jobs(),
        Ok(n) => n,
    }
}

/// One worker per core the OS will give us (the `jobs = auto` default).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the effective worker count: an explicit request (CLI `--jobs`)
/// wins, then the `XG_JOBS` environment variable, then one per core.
/// `Some(0)` and `XG_JOBS=0` both mean "auto".
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    match requested {
        Some(0) => available_jobs(),
        Some(n) => n,
        None => match std::env::var("XG_JOBS") {
            Ok(v) => parse_jobs(&v),
            Err(_) => available_jobs(),
        },
    }
}

/// Runs `run` over every item of `items` on up to `jobs` workers and
/// returns the outputs **in submission order**.
///
/// `run` receives the item and its submission index. It must be a pure
/// shard: take ownership of its input, build its own simulation, return an
/// owned outcome. Sharing between shards (beyond the read-only captures of
/// `run`) would break the determinism guarantee.
///
/// With `jobs <= 1` this is exactly `items.into_iter().enumerate().map(..)`
/// on the calling thread.
///
/// # Panics
/// Re-raises the panic of the lowest-indexed panicking shard, after every
/// other shard has finished.
pub fn sweep<I, O, F>(items: Vec<I>, jobs: usize, run: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I, usize) -> O + Sync,
{
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run(item, i))
            .collect();
    }
    let total = items.len();
    let workers = jobs.min(total.max(1));
    let injector: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<O>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Steal the next unclaimed shard; holding the injector lock
                // only for the pop keeps workers out of each other's way.
                let Some((index, item)) = injector.lock().unwrap().pop_front() else {
                    return;
                };
                match catch_unwind(AssertUnwindSafe(|| run(item, index))) {
                    Ok(out) => *slots[index].lock().unwrap() = Some(out),
                    Err(payload) => panics.lock().unwrap().push((index, payload)),
                }
            });
        }
    });

    let mut panics = panics.into_inner().unwrap();
    if !panics.is_empty() {
        // Canonical choice: the shard a serial loop would have hit first.
        panics.sort_by_key(|&(index, _)| index);
        resume_unwind(panics.remove(0).1);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every non-panicking shard fills its slot")
        })
        .collect()
}

/// Compile-time proof that everything a sweep moves between threads is
/// [`Send`]: the work descriptions, the built simulator itself, and every
/// structured outcome. A non-`Send` field sneaking into any of these breaks
/// the build here rather than at a distant `sweep` call site.
#[allow(dead_code)]
fn assert_sweep_types_are_send() {
    fn is_send<T: Send>() {}
    is_send::<crate::SystemConfig>();
    is_send::<crate::StressOpts>();
    is_send::<crate::FuzzOpts>();
    is_send::<crate::StressOutcome>();
    is_send::<crate::FuzzOutcome>();
    is_send::<crate::PerfOutcome>();
    is_send::<crate::BuiltSystem>();
    is_send::<crate::ExecSim>();
    is_send::<xg_sim::Report>();
    is_send::<xg_sim::RunOutcome>();
    is_send::<xg_sim::Simulator<xg_proto::Message>>();
    is_send::<xg_sim::ParSim<xg_proto::Message>>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_arrive_in_submission_order() {
        // Reverse the natural completion order: early shards sleep longest.
        let items: Vec<u64> = (0..32).collect();
        for jobs in [1, 2, 8] {
            let out = sweep(items.clone(), jobs, |item, index| {
                std::thread::sleep(std::time::Duration::from_millis((32 - item).min(5)));
                assert_eq!(item as usize, index);
                item * 10
            });
            assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |item: u64, _: usize| item.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let items: Vec<u64> = (0..100).collect();
        let serial = sweep(items.clone(), 1, work);
        let parallel = sweep(items, 6, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = sweep((0..57).collect(), 4, |item: usize, _| {
            count.fetch_add(1, Ordering::Relaxed);
            item
        });
        assert_eq!(out.len(), 57);
        assert_eq!(count.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        assert_eq!(sweep(vec![7u64], 16, |x, _| x + 1), vec![8]);
        assert_eq!(
            sweep(Vec::<u64>::new(), 16, |x, _| x + 1),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn first_panic_by_index_wins_and_others_still_run() {
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sweep((0..16).collect::<Vec<usize>>(), 4, |item, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if item == 3 || item == 11 {
                    panic!("shard {item} failed");
                }
                item
            })
        }));
        let payload = result.expect_err("sweep must propagate the panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "shard 3 failed", "lowest-indexed panic is canonical");
        assert_eq!(ran.load(Ordering::Relaxed), 16, "siblings were not aborted");
    }

    #[test]
    fn jobs_parsing() {
        assert_eq!(parse_jobs("3"), 3);
        assert_eq!(parse_jobs(" 12 "), 12);
        assert_eq!(parse_jobs("0"), available_jobs());
        assert_eq!(parse_jobs("auto"), available_jobs());
        assert_eq!(resolve_jobs(Some(5)), 5);
        assert_eq!(resolve_jobs(Some(0)), available_jobs());
        assert!(available_jobs() >= 1);
    }
}

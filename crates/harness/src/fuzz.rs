//! Fuzzers: pathological accelerators (paper §1, §4).
//!
//! [`FuzzAccel`] "bombards the Crossing Guard with a stream of random
//! coherence messages to random addresses" — every interface kind
//! (including host-to-accelerator kinds an accelerator should never send),
//! random payload sizes, random addresses, and random or absent responses
//! to invalidations. A safe guard never crashes, never deadlocks the host,
//! and reports errors to the OS.
//!
//! [`FuzzHostCache`] is the control experiment: the same garbage aimed
//! directly at an *unprotected* host protocol, as a buggy accelerator-side
//! cache (Figure 2(a)) could do. The strict (unmodified) host counts
//! protocol violations and can wedge — which is the point.

use rand::Rng;
use xg_mem::{BlockAddr, DataBlock};
use xg_proto::{Ctx, HammerKind, HammerMsg, MesiKind, MesiMsg, Message, XgData, XgiKind, XgiMsg};
use xg_sim::{Component, NodeId, Report};

use crate::config::HostProtocol;

/// Fuzzing parameters.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Total messages to inject.
    pub messages: u64,
    /// Address pool size in blocks (addresses are `0..blocks * 64`).
    pub pool_blocks: u64,
    /// Cycles between injections (min, max).
    pub gap: (u64, u64),
    /// Percent of invalidations that get *some* response (the rest are
    /// dropped to exercise the 2c timeout).
    pub respond_percent: u32,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            messages: 500,
            pool_blocks: 16,
            gap: (1, 30),
            respond_percent: 70,
        }
    }
}

fn random_payload(ctx: &mut Ctx<'_>) -> XgData {
    // Deliberately sometimes the wrong size.
    let n = ctx.rng().gen_range(1..=3);
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(DataBlock::splat(ctx.rng().gen()));
    }
    XgData::from_blocks(blocks)
}

fn random_xgi_kind(ctx: &mut Ctx<'_>) -> XgiKind {
    match ctx.rng().gen_range(0..13) {
        0 => XgiKind::GetS,
        1 => XgiKind::GetM,
        2 => XgiKind::PutS,
        3 => XgiKind::PutE {
            data: random_payload(ctx),
        },
        4 => XgiKind::PutM {
            data: random_payload(ctx),
        },
        5 => XgiKind::InvAck,
        6 => XgiKind::CleanWb {
            data: random_payload(ctx),
        },
        7 => XgiKind::DirtyWb {
            data: random_payload(ctx),
        },
        // Kinds only the guard may legally send — pure garbage from us.
        8 => XgiKind::DataS {
            data: random_payload(ctx),
        },
        9 => XgiKind::DataE {
            data: random_payload(ctx),
        },
        10 => XgiKind::DataM {
            data: random_payload(ctx),
        },
        11 => XgiKind::WbAck,
        _ => XgiKind::Inv,
    }
}

/// A pathologically buggy accelerator attached to a Crossing Guard.
pub struct FuzzAccel {
    name: String,
    xg: NodeId,
    opts: FuzzOpts,
    sent: u64,
    invs_seen: u64,
    grants_seen: u64,
}

impl FuzzAccel {
    /// Creates a fuzzer aimed at `xg`.
    pub fn new(name: impl Into<String>, xg: NodeId, opts: FuzzOpts) -> Self {
        FuzzAccel {
            name: name.into(),
            xg,
            opts,
            sent: 0,
            invs_seen: 0,
            grants_seen: 0,
        }
    }

    /// Messages injected so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Component<Message> for FuzzAccel {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Xgi(m) = msg else { return };
        match m.kind {
            XgiKind::Inv => {
                self.invs_seen += 1;
                if ctx.rng().gen_range(0u32..100) < self.opts.respond_percent {
                    // Respond with a random (often wrong) response kind.
                    let kind = match ctx.rng().gen_range(0..4) {
                        0 => XgiKind::InvAck,
                        1 => XgiKind::CleanWb {
                            data: random_payload(ctx),
                        },
                        2 => XgiKind::DirtyWb {
                            data: random_payload(ctx),
                        },
                        // Or answer with something that is not a response
                        // at all.
                        _ => XgiKind::GetM,
                    };
                    ctx.send(self.xg, XgiMsg::new(m.addr, kind).into());
                }
                // Otherwise: silence → the guard's 2c timeout must cover.
            }
            XgiKind::DataS { .. } | XgiKind::DataE { .. } | XgiKind::DataM { .. } => {
                self.grants_seen += 1;
            }
            _ => {}
        }
    }

    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.sent >= self.opts.messages {
            return;
        }
        let block = ctx.rng().gen_range(0..self.opts.pool_blocks);
        let kind = random_xgi_kind(ctx);
        ctx.send(self.xg, XgiMsg::new(BlockAddr::new(block), kind).into());
        self.sent += 1;
        let delay = ctx.rng().gen_range(self.opts.gap.0..=self.opts.gap.1);
        ctx.wake_in(delay, 0);
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.sent"), self.sent);
        out.add(format!("{n}.invs_seen"), self.invs_seen);
        out.add(format!("{n}.grants_seen"), self.grants_seen);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A fuzzer that speaks the raw host protocol — what a buggy
/// accelerator-side cache can do to an unprotected host (Figure 2(a)).
pub struct FuzzHostCache {
    name: String,
    host: HostProtocol,
    home: NodeId,
    peers: Vec<NodeId>,
    opts: FuzzOpts,
    sent: u64,
}

impl FuzzHostCache {
    /// Creates a host-protocol fuzzer: requests go to `home`, responses to
    /// random `peers`.
    pub fn new(
        name: impl Into<String>,
        host: HostProtocol,
        home: NodeId,
        peers: Vec<NodeId>,
        opts: FuzzOpts,
    ) -> Self {
        FuzzHostCache {
            name: name.into(),
            host,
            home,
            peers,
            opts,
            sent: 0,
        }
    }

    fn random_hammer(&self, ctx: &mut Ctx<'_>) -> (HammerKind, bool) {
        // (kind, aimed_at_home)
        let data = DataBlock::splat(ctx.rng().gen());
        match ctx.rng().gen_range(0..8) {
            0 => (HammerKind::GetS, true),
            1 => (HammerKind::GetM, true),
            2 => (HammerKind::Put, true),
            3 => (HammerKind::WbData { data, dirty: true }, true),
            4 => (
                HammerKind::Unblock {
                    new_owner: ctx.rng().gen(),
                },
                true,
            ),
            5 => (
                HammerKind::RespData {
                    data,
                    dirty: ctx.rng().gen(),
                    owner_keeps_copy: ctx.rng().gen(),
                },
                false,
            ),
            6 => (
                HammerKind::RespAck {
                    had_copy: ctx.rng().gen(),
                },
                false,
            ),
            _ => (HammerKind::WbAck, false),
        }
    }

    fn random_mesi(&self, ctx: &mut Ctx<'_>) -> (MesiKind, bool) {
        let data = DataBlock::splat(ctx.rng().gen());
        match ctx.rng().gen_range(0..8) {
            0 => (MesiKind::GetS, true),
            1 => (MesiKind::GetM, true),
            2 => (MesiKind::PutS, true),
            3 => (MesiKind::PutM { data }, true),
            4 => (
                MesiKind::OwnerWb {
                    data,
                    dirty: ctx.rng().gen(),
                },
                true,
            ),
            5 => (
                MesiKind::RecallData {
                    data,
                    dirty: ctx.rng().gen(),
                },
                true,
            ),
            6 => (MesiKind::InvAck, false),
            _ => (
                MesiKind::FwdData {
                    data,
                    dirty: ctx.rng().gen(),
                    exclusive: ctx.rng().gen(),
                },
                false,
            ),
        }
    }
}

impl Component<Message> for FuzzHostCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, _from: NodeId, _msg: Message, _ctx: &mut Ctx<'_>) {
        // Discard everything — including requests the host is waiting on.
    }

    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.sent >= self.opts.messages {
            return;
        }
        let block = BlockAddr::new(ctx.rng().gen_range(0..self.opts.pool_blocks));
        let msg: Message;
        let to: NodeId;
        match self.host {
            HostProtocol::Hammer => {
                let (kind, at_home) = self.random_hammer(ctx);
                to = if at_home || self.peers.is_empty() {
                    self.home
                } else {
                    let i = ctx.rng().gen_range(0..self.peers.len());
                    self.peers[i]
                };
                msg = HammerMsg::new(block, kind).into();
            }
            HostProtocol::Mesi => {
                let (kind, at_home) = self.random_mesi(ctx);
                to = if at_home || self.peers.is_empty() {
                    self.home
                } else {
                    let i = ctx.rng().gen_range(0..self.peers.len());
                    self.peers[i]
                };
                msg = MesiMsg::new(block, kind).into();
            }
        }
        ctx.send(to, msg);
        self.sent += 1;
        let delay = ctx.rng().gen_range(self.opts.gap.0..=self.opts.gap.1);
        ctx.wake_in(delay, 0);
    }

    fn report(&self, out: &mut Report) {
        out.add(format!("{}.sent", self.name), self.sent);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

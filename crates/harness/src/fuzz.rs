//! Fuzzers: pathological accelerators (paper §1, §4).
//!
//! [`FuzzAccel`] "bombards the Crossing Guard with a stream of random
//! coherence messages to random addresses" — every interface kind
//! (including host-to-accelerator kinds an accelerator should never send),
//! random payload sizes, random addresses, and random or absent responses
//! to invalidations. A safe guard never crashes, never deadlocks the host,
//! and reports errors to the OS.
//!
//! [`FuzzHostCache`] is the control experiment: the same garbage aimed
//! directly at an *unprotected* host protocol, as a buggy accelerator-side
//! cache (Figure 2(a)) could do. The strict (unmodified) host counts
//! protocol violations and can wedge — which is the point.

use rand::rngs::SmallRng;
use rand::Rng;
use xg_mem::{BlockAddr, DataBlock};
use xg_proto::{
    Ctx, HammerKind, HammerMsg, HomeMap, MesiKind, MesiMsg, Message, XgData, XgiKind, XgiMsg,
};
use xg_sim::{Component, NodeId, Report};

use crate::config::HostProtocol;

/// Number of distinct interface-kind codes a fuzz step can carry (the eight
/// accelerator-legal kinds plus the five guard-only kinds, mirrored from
/// [`XgiKind`]).
pub const FUZZ_KIND_CODES: u8 = 13;

/// Number of distinct invalidation-response codes: `InvAck`, `CleanWb`,
/// `DirtyWb`, a non-response `GetM`, and a `PutS` race immediately chased
/// by a stale `DirtyWb` (the Put-vs-Inv race of paper §2.1, answered with
/// the one response that is inconsistent afterwards — the deterministic
/// guarantee-2a probe).
pub const INV_RESPONSE_CODES: u8 = 5;

/// One scripted injection: wait `delay` cycles after the previous step,
/// then send interface kind `kind` at `block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzStep {
    /// Cycles after the previous injection (clamped to ≥ 1).
    pub delay: u64,
    /// Absolute block index (address is `block * 64`).
    pub block: u64,
    /// Interface kind code, `0..FUZZ_KIND_CODES` (same decoding as the
    /// random fuzzer).
    pub kind: u8,
    /// Payload size in blocks for data-carrying kinds (`1..=3`; sizes other
    /// than the guard's block size are deliberate `Malformed` probes).
    pub payload_blocks: u8,
    /// Byte splatted across the payload (identifies the step in traces).
    pub fill: u8,
}

/// One scripted reaction to a forwarded invalidation. Policies are consumed
/// in order, cycling, so a schedule fixes the *entire* response behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvPolicy {
    /// Respond at all? `false` is the guarantee-2c silence probe.
    pub respond: bool,
    /// Response code, `0..INV_RESPONSE_CODES`.
    pub kind: u8,
    /// Payload blocks for writeback responses (`1..=3`).
    pub payload_blocks: u8,
}

/// A fully deterministic injection schedule: what the fuzz accelerator
/// sends, when, and how it answers invalidations. Schedules are the unit
/// the coverage-guided campaign stores, mutates, and minimizes — replaying
/// the same schedule against the same [`crate::SystemConfig`] byte-for-byte
/// reproduces the run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Scripted injections, in order.
    pub steps: Vec<FuzzStep>,
    /// Scripted invalidation responses, consumed cyclically (empty =
    /// permanent silence).
    pub responses: Vec<InvPolicy>,
}

impl Schedule {
    /// Generates a random schedule of `len` steps over `blocks` candidate
    /// block indices — the blind seed the campaign starts from.
    pub fn random(rng: &mut SmallRng, len: usize, blocks: &[u64]) -> Schedule {
        assert!(!blocks.is_empty(), "schedule needs a non-empty block pool");
        let steps = (0..len)
            .map(|_| FuzzStep {
                delay: rng.gen_range(1..=30),
                block: blocks[rng.gen_range(0..blocks.len())],
                kind: rng.gen_range(0..FUZZ_KIND_CODES),
                payload_blocks: rng.gen_range(1..=3),
                fill: rng.gen(),
            })
            .collect();
        let responses = (0..rng.gen_range(1..=4usize))
            .map(|_| InvPolicy {
                respond: rng.gen_range(0u32..100) < 70,
                kind: rng.gen_range(0..INV_RESPONSE_CODES),
                payload_blocks: rng.gen_range(1..=3),
            })
            .collect();
        Schedule { steps, responses }
    }

    /// Serializes to a line-oriented text form (the corpus on-disk format).
    pub fn to_text(&self) -> String {
        let mut out = String::from("xg-schedule v1\n");
        for s in &self.steps {
            out.push_str(&format!(
                "s {} {} {} {} {}\n",
                s.delay, s.block, s.kind, s.payload_blocks, s.fill
            ));
        }
        for r in &self.responses {
            out.push_str(&format!(
                "r {} {} {}\n",
                u8::from(r.respond),
                r.kind,
                r.payload_blocks
            ));
        }
        out
    }

    /// Parses the [`to_text`](Schedule::to_text) form.
    pub fn from_text(input: &str) -> Result<Schedule, String> {
        let mut lines = input.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty schedule")?;
        if header.trim() != "xg-schedule v1" {
            return Err(format!("unknown schedule header: {header:?}"));
        }
        let mut sched = Schedule::default();
        for line in lines {
            let mut f = line.split_whitespace();
            let tag = f.next().ok_or("blank record")?;
            let mut num = |what: &str| -> Result<u64, String> {
                f.next()
                    .ok_or_else(|| format!("{what}: missing field in {line:?}"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{what}: {e} in {line:?}"))
            };
            match tag {
                "s" => sched.steps.push(FuzzStep {
                    delay: num("delay")?,
                    block: num("block")?,
                    kind: num("kind")? as u8 % FUZZ_KIND_CODES,
                    payload_blocks: (num("payload")? as u8).clamp(1, 3),
                    fill: num("fill")? as u8,
                }),
                "r" => sched.responses.push(InvPolicy {
                    respond: num("respond")? != 0,
                    kind: num("kind")? as u8 % INV_RESPONSE_CODES,
                    payload_blocks: (num("payload")? as u8).clamp(1, 3),
                }),
                other => return Err(format!("unknown record tag {other:?}")),
            }
        }
        Ok(sched)
    }
}

/// Fuzzing parameters.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Total messages to inject (random mode; scripted mode sends exactly
    /// the schedule's steps).
    pub messages: u64,
    /// Address pool size in blocks (addresses are `0..blocks * 64`).
    pub pool_blocks: u64,
    /// Cycles between injections (min, max).
    pub gap: (u64, u64),
    /// Percent of invalidations that get *some* response (the rest are
    /// dropped to exercise the 2c timeout).
    pub respond_percent: u32,
    /// When set, the fuzz accelerator replays this exact schedule instead
    /// of drawing randomly — the campaign/minimizer mode.
    pub schedule: Option<Schedule>,
    /// Extra pages granted *read-only* permission (on top of the read-write
    /// attack pool). Lets a campaign legally take shared copies of
    /// CPU-owned blocks, which is what draws host demands (and hence the
    /// 2a/2c invalidation guarantees) through the guard.
    pub read_only_pages: Vec<u64>,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            messages: 500,
            pool_blocks: 16,
            gap: (1, 30),
            respond_percent: 70,
            schedule: None,
            read_only_pages: Vec::new(),
        }
    }
}

fn random_payload(ctx: &mut Ctx<'_>) -> XgData {
    // Deliberately sometimes the wrong size.
    let n = ctx.rng().gen_range(1..=3);
    let mut blocks = Vec::with_capacity(n);
    for _ in 0..n {
        blocks.push(DataBlock::splat(ctx.rng().gen()));
    }
    XgData::from_blocks(blocks)
}

fn random_xgi_kind(ctx: &mut Ctx<'_>) -> XgiKind {
    match ctx.rng().gen_range(0..13) {
        0 => XgiKind::GetS,
        1 => XgiKind::GetM,
        2 => XgiKind::PutS,
        3 => XgiKind::PutE {
            data: random_payload(ctx),
        },
        4 => XgiKind::PutM {
            data: random_payload(ctx),
        },
        5 => XgiKind::InvAck,
        6 => XgiKind::CleanWb {
            data: random_payload(ctx),
        },
        7 => XgiKind::DirtyWb {
            data: random_payload(ctx),
        },
        // Kinds only the guard may legally send — pure garbage from us.
        8 => XgiKind::DataS {
            data: random_payload(ctx),
        },
        9 => XgiKind::DataE {
            data: random_payload(ctx),
        },
        10 => XgiKind::DataM {
            data: random_payload(ctx),
        },
        11 => XgiKind::WbAck,
        _ => XgiKind::Inv,
    }
}

/// Deterministic payload for scripted steps: `blocks` copies of `fill`.
fn scripted_payload(blocks: u8, fill: u8) -> XgData {
    XgData::from_blocks(vec![DataBlock::splat(fill); blocks.clamp(1, 3) as usize])
}

/// Decodes a scripted step's kind code (same code space as
/// [`random_xgi_kind`], but with a deterministic payload).
fn scripted_kind(step: FuzzStep) -> XgiKind {
    let data = || scripted_payload(step.payload_blocks, step.fill);
    match step.kind % FUZZ_KIND_CODES {
        0 => XgiKind::GetS,
        1 => XgiKind::GetM,
        2 => XgiKind::PutS,
        3 => XgiKind::PutE { data: data() },
        4 => XgiKind::PutM { data: data() },
        5 => XgiKind::InvAck,
        6 => XgiKind::CleanWb { data: data() },
        7 => XgiKind::DirtyWb { data: data() },
        8 => XgiKind::DataS { data: data() },
        9 => XgiKind::DataE { data: data() },
        10 => XgiKind::DataM { data: data() },
        11 => XgiKind::WbAck,
        _ => XgiKind::Inv,
    }
}

/// Decodes a scripted invalidation-response policy into the message
/// sequence to send (the guard↔accelerator link is ordered, so multi-step
/// sequences arrive in script order).
fn scripted_response(policy: InvPolicy) -> Vec<XgiKind> {
    let data = || scripted_payload(policy.payload_blocks, 0xA5);
    match policy.kind % INV_RESPONSE_CODES {
        0 => vec![XgiKind::InvAck],
        1 => vec![XgiKind::CleanWb { data: data() }],
        2 => vec![XgiKind::DirtyWb { data: data() }],
        3 => vec![XgiKind::GetM],
        // The Put-vs-Inv race, then a writeback where only the trailing
        // InvAck is legal.
        _ => vec![XgiKind::PutS, XgiKind::DirtyWb { data: data() }],
    }
}

/// A pathologically buggy accelerator attached to a Crossing Guard.
pub struct FuzzAccel {
    name: String,
    xg: NodeId,
    opts: FuzzOpts,
    sent: u64,
    invs_seen: u64,
    inv_responses: u64,
    grants_seen: u64,
    first_inject: Option<u64>,
    last_inject: u64,
    next_step: usize,
    resp_idx: usize,
}

impl FuzzAccel {
    /// Creates a fuzzer aimed at `xg`.
    pub fn new(name: impl Into<String>, xg: NodeId, opts: FuzzOpts) -> Self {
        FuzzAccel {
            name: name.into(),
            xg,
            opts,
            sent: 0,
            invs_seen: 0,
            inv_responses: 0,
            grants_seen: 0,
            first_inject: None,
            last_inject: 0,
            next_step: 0,
            resp_idx: 0,
        }
    }

    /// Messages injected so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Component<Message> for FuzzAccel {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Xgi(m) = msg else { return };
        match m.kind {
            XgiKind::Inv => {
                self.invs_seen += 1;
                if let Some(schedule) = &self.opts.schedule {
                    // Scripted mode: consult the response script, cycling.
                    let responses = &schedule.responses;
                    let policy = if responses.is_empty() {
                        None
                    } else {
                        Some(responses[self.resp_idx % responses.len()])
                    };
                    self.resp_idx += 1;
                    if let Some(p) = policy {
                        if p.respond {
                            self.inv_responses += 1;
                            for kind in scripted_response(p) {
                                ctx.send(self.xg, XgiMsg::new(m.addr, kind).into());
                            }
                        }
                    }
                    return;
                }
                if ctx.rng().gen_range(0u32..100) < self.opts.respond_percent {
                    self.inv_responses += 1;
                    // Respond with a random (often wrong) response kind.
                    let kind = match ctx.rng().gen_range(0..4) {
                        0 => XgiKind::InvAck,
                        1 => XgiKind::CleanWb {
                            data: random_payload(ctx),
                        },
                        2 => XgiKind::DirtyWb {
                            data: random_payload(ctx),
                        },
                        // Or answer with something that is not a response
                        // at all.
                        _ => XgiKind::GetM,
                    };
                    ctx.send(self.xg, XgiMsg::new(m.addr, kind).into());
                }
                // Otherwise: silence → the guard's 2c timeout must cover.
            }
            XgiKind::DataS { .. } | XgiKind::DataE { .. } | XgiKind::DataM { .. } => {
                self.grants_seen += 1;
            }
            _ => {}
        }
    }

    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if let Some(schedule) = &self.opts.schedule {
            // Scripted mode: replay the schedule step by step.
            let steps = &schedule.steps;
            let (step, next_delay) = match steps.get(self.next_step) {
                None => return,
                Some(&s) => (s, steps.get(self.next_step + 1).map(|n| n.delay.max(1))),
            };
            self.next_step += 1;
            self.sent += 1;
            let now = ctx.now().as_u64();
            self.first_inject.get_or_insert(now);
            self.last_inject = now;
            ctx.send(
                self.xg,
                XgiMsg::new(BlockAddr::new(step.block), scripted_kind(step)).into(),
            );
            if let Some(delay) = next_delay {
                ctx.wake_in(delay, 0);
            }
            return;
        }
        if self.sent >= self.opts.messages {
            return;
        }
        let block = if !self.opts.read_only_pages.is_empty() && ctx.rng().gen_range(0..4u32) == 0 {
            // Spend a quarter of the budget on the read-only windows:
            // legally taking shared copies of CPU-owned blocks is what
            // draws host demand (invalidation) traffic through the guard.
            let pages = &self.opts.read_only_pages;
            let page = pages[ctx.rng().gen_range(0..pages.len())];
            page * (xg_mem::PAGE_BYTES / xg_mem::BLOCK_BYTES) + ctx.rng().gen_range(0..4u64)
        } else {
            ctx.rng().gen_range(0..self.opts.pool_blocks)
        };
        let kind = random_xgi_kind(ctx);
        ctx.send(self.xg, XgiMsg::new(BlockAddr::new(block), kind).into());
        self.sent += 1;
        let now = ctx.now().as_u64();
        self.first_inject.get_or_insert(now);
        self.last_inject = now;
        let delay = ctx.rng().gen_range(self.opts.gap.0..=self.opts.gap.1);
        ctx.wake_in(delay, 0);
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.sent"), self.sent);
        out.add(format!("{n}.invs_seen"), self.invs_seen);
        out.add(format!("{n}.inv_responses"), self.inv_responses);
        out.add(format!("{n}.grants_seen"), self.grants_seen);
        out.add(format!("{n}.first_inject"), self.first_inject.unwrap_or(0));
        out.add(format!("{n}.last_inject"), self.last_inject);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A fuzzer that speaks the raw host protocol — what a buggy
/// accelerator-side cache can do to an unprotected host (Figure 2(a)).
pub struct FuzzHostCache {
    name: String,
    host: HostProtocol,
    home: HomeMap,
    peers: Vec<NodeId>,
    opts: FuzzOpts,
    sent: u64,
}

impl FuzzHostCache {
    /// Creates a host-protocol fuzzer: requests go to the owning home
    /// bank of `home`, responses to random `peers`.
    pub fn new(
        name: impl Into<String>,
        host: HostProtocol,
        home: impl Into<HomeMap>,
        peers: Vec<NodeId>,
        opts: FuzzOpts,
    ) -> Self {
        FuzzHostCache {
            name: name.into(),
            host,
            home: home.into(),
            peers,
            opts,
            sent: 0,
        }
    }

    fn random_hammer(&self, ctx: &mut Ctx<'_>) -> (HammerKind, bool) {
        // (kind, aimed_at_home)
        let data = DataBlock::splat(ctx.rng().gen());
        match ctx.rng().gen_range(0..8) {
            0 => (HammerKind::GetS, true),
            1 => (HammerKind::GetM, true),
            2 => (HammerKind::Put, true),
            3 => (HammerKind::WbData { data, dirty: true }, true),
            4 => (
                HammerKind::Unblock {
                    new_owner: ctx.rng().gen(),
                },
                true,
            ),
            5 => (
                HammerKind::RespData {
                    data,
                    dirty: ctx.rng().gen(),
                    owner_keeps_copy: ctx.rng().gen(),
                },
                false,
            ),
            6 => (
                HammerKind::RespAck {
                    had_copy: ctx.rng().gen(),
                },
                false,
            ),
            _ => (HammerKind::WbAck, false),
        }
    }

    fn random_mesi(&self, ctx: &mut Ctx<'_>) -> (MesiKind, bool) {
        let data = DataBlock::splat(ctx.rng().gen());
        match ctx.rng().gen_range(0..8) {
            0 => (MesiKind::GetS, true),
            1 => (MesiKind::GetM, true),
            2 => (MesiKind::PutS, true),
            3 => (MesiKind::PutM { data }, true),
            4 => (
                MesiKind::OwnerWb {
                    data,
                    dirty: ctx.rng().gen(),
                },
                true,
            ),
            5 => (
                MesiKind::RecallData {
                    data,
                    dirty: ctx.rng().gen(),
                },
                true,
            ),
            6 => (MesiKind::InvAck, false),
            _ => (
                MesiKind::FwdData {
                    data,
                    dirty: ctx.rng().gen(),
                    exclusive: ctx.rng().gen(),
                },
                false,
            ),
        }
    }
}

impl Component<Message> for FuzzHostCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, _from: NodeId, _msg: Message, _ctx: &mut Ctx<'_>) {
        // Discard everything — including requests the host is waiting on.
    }

    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.sent >= self.opts.messages {
            return;
        }
        let block = BlockAddr::new(ctx.rng().gen_range(0..self.opts.pool_blocks));
        let msg: Message;
        let to: NodeId;
        match self.host {
            HostProtocol::Hammer => {
                let (kind, at_home) = self.random_hammer(ctx);
                to = if at_home || self.peers.is_empty() {
                    self.home.for_block(block)
                } else {
                    let i = ctx.rng().gen_range(0..self.peers.len());
                    self.peers[i]
                };
                msg = HammerMsg::new(block, kind).into();
            }
            HostProtocol::Mesi => {
                let (kind, at_home) = self.random_mesi(ctx);
                to = if at_home || self.peers.is_empty() {
                    self.home.for_block(block)
                } else {
                    let i = ctx.rng().gen_range(0..self.peers.len());
                    self.peers[i]
                };
                msg = MesiMsg::new(block, kind).into();
            }
        }
        ctx.send(to, msg);
        self.sent += 1;
        let delay = ctx.rng().gen_range(self.opts.gap.0..=self.opts.gap.1);
        ctx.wake_in(delay, 0);
    }

    fn report(&self, out: &mut Report) {
        out.add(format!("{}.sent", self.name), self.sent);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_text_round_trips() {
        let mut rng = SmallRng::seed_from_u64(7);
        for len in [0usize, 1, 17] {
            let s = Schedule::random(&mut rng, len, &[0, 5, 0x40000]);
            let back = Schedule::from_text(&s.to_text()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn schedule_parse_rejects_garbage() {
        assert!(Schedule::from_text("").is_err());
        assert!(Schedule::from_text("not-a-schedule\n").is_err());
        assert!(Schedule::from_text("xg-schedule v1\nq 1 2 3\n").is_err());
        assert!(Schedule::from_text("xg-schedule v1\ns 1 2\n").is_err());
        assert!(Schedule::from_text("xg-schedule v1\ns a b c d e\n").is_err());
    }

    #[test]
    fn schedule_parse_normalizes_codes() {
        let s = Schedule::from_text("xg-schedule v1\ns 0 3 200 9 1\nr 1 250 0\n").unwrap();
        assert!(s.steps[0].kind < FUZZ_KIND_CODES);
        assert!((1..=3).contains(&s.steps[0].payload_blocks));
        assert!(s.responses[0].kind < INV_RESPONSE_CODES);
        assert!((1..=3).contains(&s.responses[0].payload_blocks));
    }

    #[test]
    fn scripted_kind_covers_every_code() {
        let kinds: Vec<XgiKind> = (0..FUZZ_KIND_CODES)
            .map(|k| {
                scripted_kind(FuzzStep {
                    delay: 1,
                    block: 0,
                    kind: k,
                    payload_blocks: 1,
                    fill: 0,
                })
            })
            .collect();
        assert!(matches!(kinds[0], XgiKind::GetS));
        assert!(matches!(kinds[12], XgiKind::Inv));
        // All thirteen codes decode to distinct kinds.
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                assert_ne!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "codes decode to duplicate kinds"
                );
            }
        }
    }
}

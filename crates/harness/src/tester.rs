//! The random value-checking coherence tester (paper §4.1).
//!
//! Each [`TesterCore`] fires rapid loads and stores at a small pool of word
//! addresses. Values are checkable because exactly one core is the *writer*
//! of each word (chosen by hashing the address) and writes strictly
//! increasing values. Every reader then checks two properties that together
//! witness per-location coherence:
//!
//! 1. **Bounded**: a read never returns a value larger than the writer has
//!    issued (no values from the future, no corrupted data).
//! 2. **Monotone per reader**: successive reads by one core never go
//!    backwards (single-writer / multiple-reader order is respected).
//!
//! Combined with the shrunken caches and randomized message latencies of
//! the stress configuration, this is the same methodology the paper used
//! for 22 compute-years (scaled down to CI budgets; crank
//! [`TesterShared::target_ops`] to scale up).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use rand::Rng;
use xg_mem::Addr;
use xg_proto::{CoreKind, CoreMsg, Ctx, Message};
use xg_sim::{Component, NodeId, Report};

/// Handle to the state shared by every tester core in one run.
///
/// A `Mutex` (not `RefCell`) so tester cores — and the systems containing
/// them — are [`Send`] and whole simulations can be fanned across worker
/// threads by [`crate::sweep`]. Within one simulation the lock is always
/// uncontended (the simulator is single-threaded), so it costs a few
/// nanoseconds per operation — but the polling wake loop runs hundreds of
/// times per completed operation, so its done-check reads a lock-free
/// mirror ([`TesterHub::done_fast`]) instead of taking even an uncontended
/// lock.
pub type SharedTester = Arc<TesterHub>;

/// [`TesterShared`] behind its lock, plus hot-path mirrors of the fields
/// the per-wake polling loop reads.
///
/// Derefs to the inner `Mutex`, so `shared.lock().unwrap()` keeps working
/// for everything off the hot path.
#[derive(Debug)]
pub struct TesterHub {
    inner: Mutex<TesterShared>,
    /// Mirror of [`TesterShared::done`], refreshed by the single code path
    /// that bumps `completed` (and therefore exact, not approximate —
    /// `target_ops` is fixed at construction).
    done: AtomicBool,
    /// Deferred-publication mode for partitioned ([`xg_sim::ParSim`]) runs:
    /// when set, reaching the operation target latches `pending_done`
    /// instead of flipping `done` immediately, and the mirror only advances
    /// at [`refresh_done`](TesterHub::refresh_done) — which the parallel
    /// executor calls from a window-barrier hook. Cores on every shard then
    /// observe the flip at the same deterministic window boundary, so which
    /// operations are issued never depends on worker scheduling.
    deferred: AtomicBool,
    /// Latched completion, waiting for the next barrier (deferred mode).
    pending_done: AtomicBool,
}

impl TesterHub {
    /// Lock-free equivalent of `lock().unwrap().done()`.
    #[inline]
    pub fn done_fast(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Switches the done mirror to deferred (barrier-published) mode; see
    /// the field docs. Call before the run starts.
    pub fn set_deferred(&self, on: bool) {
        self.deferred.store(on, Ordering::Relaxed);
    }

    /// Publishes a latched completion to the fast mirror. In deferred mode
    /// the parallel executor calls this from its window-barrier hook; a
    /// no-op until the operation target has been reached.
    pub fn refresh_done(&self) {
        if self.pending_done.load(Ordering::Relaxed) {
            self.done.store(true, Ordering::Relaxed);
        }
    }

    /// Refreshes the lock-free done mirror; call after bumping `completed`.
    fn publish_done(&self, done: bool) {
        if done {
            if self.deferred.load(Ordering::Relaxed) {
                self.pending_done.store(true, Ordering::Relaxed);
            } else {
                self.done.store(true, Ordering::Relaxed);
            }
        }
    }
}

impl std::ops::Deref for TesterHub {
    type Target = Mutex<TesterShared>;
    fn deref(&self) -> &Mutex<TesterShared> {
        &self.inner
    }
}

/// State shared by every tester core in one run.
#[derive(Debug)]
pub struct TesterShared {
    total_cores: usize,
    /// Stop issuing once this many operations completed system-wide.
    pub target_ops: u64,
    completed: u64,
    data_errors: u64,
    /// Value-check failures per observing core index, for multi-accelerator
    /// blast-radius attribution (which hierarchy saw corrupted data).
    errors_by_core: HashMap<usize, u64>,
    error_log: Vec<String>,
    /// Word addresses whose value checks failed, in detection order.
    corrupted: Vec<u64>,
    issued: HashMap<u64, u64>,
    last_seen: HashMap<(usize, u64), u64>,
}

impl TesterShared {
    /// Creates shared state for `total_cores` testers aiming for
    /// `target_ops` completed operations.
    #[allow(clippy::new_ret_no_self)] // returns the hub wrapper, by design
    pub fn new(total_cores: usize, target_ops: u64) -> SharedTester {
        Arc::new(TesterHub {
            inner: Mutex::new(TesterShared {
                total_cores,
                target_ops,
                completed: 0,
                data_errors: 0,
                errors_by_core: HashMap::new(),
                error_log: Vec::new(),
                corrupted: Vec::new(),
                issued: HashMap::new(),
                last_seen: HashMap::new(),
            }),
            done: AtomicBool::new(target_ops == 0),
            deferred: AtomicBool::new(false),
            pending_done: AtomicBool::new(false),
        })
    }

    /// The unique writer core for a word address.
    pub fn writer_of(&self, word_addr: u64) -> usize {
        // SplitMix-style scramble so neighboring words get different writers.
        let mut x = word_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        (x % self.total_cores as u64) as usize
    }

    /// Whether the run completed its operation budget.
    pub fn done(&self) -> bool {
        self.completed >= self.target_ops
    }

    /// Operations completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Value-check failures observed (must be zero for a correct protocol).
    pub fn data_errors(&self) -> u64 {
        self.data_errors
    }

    /// Value-check failures observed by one core (by global core index).
    pub fn data_errors_of(&self, core: usize) -> u64 {
        self.errors_by_core.get(&core).copied().unwrap_or(0)
    }

    /// Human-readable description of the first few failures.
    pub fn error_log(&self) -> &[String] {
        &self.error_log
    }

    /// Word addresses whose value checks failed, in detection order.
    pub fn corrupted_addrs(&self) -> &[u64] {
        &self.corrupted
    }

    fn record_error(&mut self, core: usize, word_addr: u64, msg: String) {
        self.data_errors += 1;
        *self.errors_by_core.entry(core).or_insert(0) += 1;
        if self.error_log.len() < 16 {
            self.error_log.push(msg);
        }
        if self.corrupted.len() < 16 {
            self.corrupted.push(word_addr);
        }
    }

    fn check_load(&mut self, core: usize, word_addr: u64, value: u64) {
        let issued = self.issued.get(&word_addr).copied().unwrap_or(0);
        if value > issued {
            self.record_error(
                core,
                word_addr,
                format!(
                    "core {core} read {value} at {word_addr:#x} but only {issued} were written"
                ),
            );
        }
        let key = (core, word_addr);
        let prev = self.last_seen.get(&key).copied().unwrap_or(0);
        if value < prev {
            self.record_error(
                core,
                word_addr,
                format!(
                    "core {core} read {value} at {word_addr:#x} after having read {prev} (went backwards)"
                ),
            );
        }
        self.last_seen.insert(key, value.max(prev));
    }
}

/// Tester configuration knobs.
#[derive(Debug, Clone)]
pub struct TesterCfg {
    /// Maximum outstanding operations per core.
    pub max_in_flight: usize,
    /// Random delay between issues (cycles).
    pub think: (u64, u64),
    /// Probability (percent) that a writer writes instead of reading.
    pub store_percent: u32,
}

impl Default for TesterCfg {
    fn default() -> Self {
        TesterCfg {
            max_in_flight: 2,
            think: (1, 20),
            store_percent: 50,
        }
    }
}

/// One random-testing core, attached to one cache frontend.
pub struct TesterCore {
    name: String,
    cache: NodeId,
    core_index: usize,
    shared: SharedTester,
    pool: Vec<u64>,
    cfg: TesterCfg,
    in_flight: HashMap<u64, (u64, bool)>, // id -> (word addr, was_store)
    next_id: u64,
    issued_ops: u64,
    completed_ops: u64,
    latency_sum: u64,
    issue_times: HashMap<u64, u64>,
}

impl TesterCore {
    /// Creates a tester core issuing to `cache`, drawing word addresses
    /// from `pool`.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn new(
        name: impl Into<String>,
        cache: NodeId,
        core_index: usize,
        shared: SharedTester,
        pool: Vec<u64>,
        cfg: TesterCfg,
    ) -> Self {
        assert!(!pool.is_empty(), "tester needs a nonempty address pool");
        TesterCore {
            name: name.into(),
            cache,
            core_index,
            shared,
            pool,
            cfg,
            in_flight: HashMap::new(),
            next_id: 0,
            issued_ops: 0,
            completed_ops: 0,
            latency_sum: 0,
            issue_times: HashMap::new(),
        }
    }

    /// Operations completed by this core.
    pub fn completed(&self) -> u64 {
        self.completed_ops
    }

    /// Operations still outstanding (nonzero at the end of a run means a
    /// request was never answered — a liveness failure).
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// Addresses (and store-ness) of outstanding operations, for debugging
    /// liveness failures. Sorted by issue id so post-mortem flags are
    /// deterministic despite the `HashMap` underneath.
    pub fn outstanding_ops(&self) -> Vec<(u64, bool)> {
        let mut ops: Vec<_> = self.in_flight.iter().map(|(&id, &op)| (id, op)).collect();
        ops.sort_unstable_by_key(|&(id, _)| id);
        ops.into_iter().map(|(_, op)| op).collect()
    }

    fn issue_one(&mut self, ctx: &mut Ctx<'_>) {
        let pick = ctx.rng().gen_range(0..self.pool.len());
        let word_addr = self.pool[pick];
        let mut shared = self.shared.lock().unwrap();
        let is_writer = shared.writer_of(word_addr) == self.core_index;
        let store = is_writer && ctx.rng().gen_range(0u32..100) < self.cfg.store_percent;
        let id = self.next_id;
        self.next_id += 1;
        let kind = if store {
            let next = shared.issued.get(&word_addr).copied().unwrap_or(0) + 1;
            shared.issued.insert(word_addr, next);
            CoreKind::Store { value: next }
        } else {
            CoreKind::Load
        };
        drop(shared);
        self.in_flight.insert(id, (word_addr, store));
        self.issue_times.insert(id, ctx.now().as_u64());
        self.issued_ops += 1;
        ctx.send(
            self.cache,
            CoreMsg {
                id,
                addr: Addr::new(word_addr),
                kind,
            }
            .into(),
        );
    }
}

impl Component<Message> for TesterCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, _from: NodeId, msg: Message, ctx: &mut Ctx<'_>) {
        let Message::Core(c) = msg else { return };
        let Some((word_addr, was_store)) = self.in_flight.remove(&c.id) else {
            return;
        };
        if let Some(t0) = self.issue_times.remove(&c.id) {
            self.latency_sum += ctx.now().as_u64() - t0;
        }
        match c.kind {
            CoreKind::LoadResp { value } => {
                debug_assert!(!was_store);
                let mut shared = self.shared.lock().unwrap();
                let before = shared.data_errors();
                shared.check_load(self.core_index, word_addr, value);
                let corrupted = shared.data_errors() > before;
                drop(shared);
                if corrupted {
                    ctx.flag_post_mortem(
                        Addr::new(word_addr).block().as_u64(),
                        format!(
                            "{}: value check failed at word {word_addr:#x} (read {value})",
                            self.name
                        ),
                    );
                }
            }
            CoreKind::StoreResp => {
                debug_assert!(was_store);
            }
            _ => return,
        }
        self.completed_ops += 1;
        {
            let mut shared = self.shared.lock().unwrap();
            shared.completed += 1;
            let done = shared.done();
            drop(shared);
            self.shared.publish_done(done);
        }
        ctx.note_progress();
        // Immediately consider issuing again (the wake loop also runs).
        if !self.shared.done_fast() && self.in_flight.len() < self.cfg.max_in_flight {
            let delay = ctx.rng().gen_range(self.cfg.think.0..=self.cfg.think.1);
            ctx.wake_in(delay, 0);
        }
    }

    fn wake(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        if self.shared.done_fast() {
            return;
        }
        if self.in_flight.len() < self.cfg.max_in_flight {
            self.issue_one(ctx);
        }
        let delay = ctx.rng().gen_range(self.cfg.think.0..=self.cfg.think.1);
        ctx.wake_in(delay, 0);
    }

    fn report(&self, out: &mut Report) {
        let n = &self.name;
        out.add(format!("{n}.ops_completed"), self.completed_ops);
        out.add(format!("{n}.ops_issued"), self.issued_ops);
        out.add(format!("{n}.latency_sum"), self.latency_sum);
        out.add(format!("{n}.outstanding"), self.in_flight.len() as u64);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Builds a word-address pool of `blocks` cache blocks × `words_per_block`
/// words starting at `base`.
pub fn word_pool(base: u64, blocks: u64, words_per_block: u64) -> Vec<u64> {
    let mut pool = Vec::new();
    for b in 0..blocks {
        for w in 0..words_per_block.min(8) {
            pool.push(base + b * 64 + w * 8);
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_assignment_is_stable_and_spread() {
        let shared = TesterShared::new(4, 100);
        let s = shared.lock().unwrap();
        let mut seen = std::collections::HashSet::new();
        for w in 0..64u64 {
            let writer = s.writer_of(w * 8);
            assert_eq!(writer, s.writer_of(w * 8), "stable");
            seen.insert(writer);
        }
        assert_eq!(seen.len(), 4, "all cores get to write something");
    }

    #[test]
    fn check_load_flags_future_and_backwards_values() {
        let shared = TesterShared::new(2, 100);
        let mut s = shared.lock().unwrap();
        s.issued.insert(0x100, 5);
        s.check_load(0, 0x100, 3);
        assert_eq!(s.data_errors(), 0);
        s.check_load(0, 0x100, 6); // beyond issued
        assert_eq!(s.data_errors(), 1);
        s.check_load(0, 0x100, 2); // went backwards (saw 3 before)
        assert_eq!(s.data_errors(), 2);
        assert_eq!(s.data_errors_of(0), 2, "both failures blame core 0");
        assert_eq!(s.data_errors_of(1), 0, "core 1 saw nothing");
        assert!(
            s.error_log()[1].contains("went backwards") || s.error_log()[0].contains("written")
        );
    }

    #[test]
    fn word_pool_layout() {
        let pool = word_pool(0x1000, 2, 3);
        assert_eq!(pool, vec![0x1000, 0x1008, 0x1010, 0x1040, 0x1048, 0x1050]);
    }
}

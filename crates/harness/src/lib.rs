//! # xg-harness — system assembly, stress testing, fuzzing, workloads
//!
//! Everything needed to *evaluate* Crossing Guard, mirroring the paper's
//! methodology (§3–§4):
//!
//! * [`SystemConfig`] / [`build_system`] — wire up any of the paper's
//!   twelve configurations (2 host protocols × {accelerator-side cache,
//!   host-side cache, 2 Crossing Guard variants × 2 accelerator
//!   organizations}), plus the fuzzing configurations.
//! * [`TesterCore`] — the random value-checking coherence tester of §4.1:
//!   rapid loads and stores to a small address pool with random message
//!   latencies, single-writer-per-word value discipline, per-reader
//!   monotonicity checks, and state/event coverage counting.
//! * [`FuzzAccel`] — the §4.2-style fuzzer: bombards the Crossing Guard
//!   interface with random (including malformed) messages and responds to
//!   invalidations randomly or not at all.
//! * [`FuzzHostCache`] — the same bombardment aimed directly at the host
//!   protocol, for the unsafe accelerator-side baseline.
//! * [`campaign`] — the coverage-guided adversarial campaign: evolves
//!   deterministic injection [`Schedule`]s using transition-coverage deltas
//!   as feedback, injects link faults, and delta-debugs any failure down
//!   to a minimal committed reproducer.
//! * [`WorkloadCore`] / [`Pattern`] — synthetic traffic generators standing
//!   in for the paper's Rodinia workloads on gem5-gpu (see `DESIGN.md` for
//!   the substitution rationale): streaming, stencil, blocked,
//!   data-dependent graph walks, reductions, and host↔accelerator
//!   producer-consumer sharing.
//! * [`runner`] — one-call experiment drivers returning structured
//!   outcomes (cycles, errors, coverage, violations).
//! * [`sweep`] — a work-stealing executor fanning independent
//!   `(SystemConfig, seed)` shards across cores, with results returned in
//!   submission order so parallel sweeps are byte-identical to serial ones.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod config;
pub mod fuzz;
pub mod runner;
pub mod sweep;
pub mod system;
pub mod tester;
pub mod workloads;

pub use campaign::{
    guarantee_probe, minimize, run_blind, run_campaign, run_schedule, BlindOutcome,
    CampaignFailure, CampaignOpts, CampaignOutcome, CorpusEntry, FailureKind,
};
pub use config::{AccelOrg, AccelSlot, HostProtocol, SystemConfig};
pub use fuzz::{FuzzAccel, FuzzHostCache, FuzzOpts, Schedule};
pub use runner::{
    run_fuzz, run_fuzz_with, run_stress, run_stress_with, run_workload, FuzzOutcome,
    Instrumentation, PerfOutcome, StressOpts, StressOutcome,
};
pub use sweep::{available_jobs, resolve_jobs, sweep};
pub use system::{accel_core_count, build_system, BuiltSystem, ExecSim, GuardInstance};
pub use tester::{SharedTester, TesterCfg, TesterCore, TesterShared};
pub use workloads::{Pattern, WorkloadCore};
